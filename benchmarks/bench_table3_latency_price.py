"""EXP-T3 (extension): the response-time price of energy saving.

DVS legitimately trades latency margin for energy — jobs finish later,
never late.  Shape criteria: the no-DVS row is the 1.0 reference, every
DVS policy stretches response times, deeper savings cost more latency,
and no stretch factor is unbounded (deadline ratios cap it).
"""

from repro.experiments.tables import latency_price_table


def test_table3_latency_price(run_experiment):
    table = run_experiment(latency_price_table)
    rows = {row["policy"]: row for row in table.rows}

    base = rows["none"]
    assert base["energy"] == 1.0
    assert base["mean_resp_x"] == 1.0

    for policy, row in rows.items():
        if policy == "none":
            continue
        # Saving energy means running slower: responses stretch.
        assert row["mean_resp_x"] >= 1.0
        assert row["max_resp_x"] >= row["mean_resp_x"] - 1e-9
        assert row["mean_speed"] <= 1.0

    # The statically scaled run stretches responses by roughly the
    # inverse speed factor on average.
    assert 1.2 <= rows["static"]["mean_resp_x"] <= 2.5

    # Deep reclaiming costs more latency than static scaling.
    assert rows["lpSTA"]["mean_resp_x"] > rows["static"]["mean_resp_x"]
