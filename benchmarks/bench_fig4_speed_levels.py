"""EXP-F4: effect of discrete speed levels.

Paper analogue: the discrete-vs-continuous figure.  Shape criteria:
fewer levels cost energy (round-up quantization), eight or more levels
approach the continuous ideal, and deadlines hold at every granularity
(quantization rounds up, never down).
"""

from repro.experiments.figures import energy_vs_levels


def test_fig4_speed_levels(run_experiment):
    fig = run_experiment(energy_vs_levels)

    for points in fig.series.values():
        assert all(p.extra["misses"] == 0 for p in points)

    lp = {p.x: p.mean for p in fig.series["lpSTA"]}
    continuous = lp.pop(0.0)

    # Continuous is the cheapest configuration.
    assert all(continuous <= v + 1e-9 for v in lp.values())

    # Two levels are the most expensive discrete configuration.
    assert lp[2.0] == max(lp.values())

    # >= 8 levels comes within 10% of continuous.
    assert lp[8.0] <= continuous * 1.10
    assert lp[16.0] <= continuous * 1.05
