"""EXP-F7 (ablation): static-baseline vs greedy full-speed slack.

The design-choice bench DESIGN.md calls out: measuring slack against
the statically scaled schedule (the paper's formulation) versus against
full-speed execution (greedy).  Both are safe; convex power should
punish the greedy slow-then-fast profile at moderate-to-high
utilization.
"""

from repro.experiments.figures import baseline_ablation


def test_fig7_baseline_ablation(run_experiment):
    fig = run_experiment(baseline_ablation)

    for x in fig.xs():
        static = fig.value_at("lpSTA(static)", x).mean
        greedy = fig.value_at("lpSTA(greedy)", x).mean
        # The static baseline never loses materially...
        assert static <= greedy + 0.02
    # ...and wins clearly at high utilization.
    assert fig.value_at("lpSTA(static)", 0.9).mean < \
        fig.value_at("lpSTA(greedy)", 0.9).mean
