"""EXP-F12 (extension): partitioned multicore scaling.

Worst-fit-decreasing partitioning + independent per-core DVS-EDF.
Shape criteria: energy falls superlinearly with cores (convex power
rewards spreading), lpSTA keeps beating static at every core count,
and every per-core schedule stays deadline-clean.
"""

from repro.experiments.figures import multicore_scaling


def test_fig12_multicore(run_experiment):
    fig = run_experiment(multicore_scaling)

    for points in fig.series.values():
        for p in points:
            assert p.extra["misses"] == 0

    static = {p.x: p.mean for p in fig.series["static"]}
    lpsta = {p.x: p.mean for p in fig.series["lpSTA"]}

    # Energy falls monotonically with cores for both policies.
    for series in (static, lpsta):
        ordered = [series[x] for x in sorted(series)]
        assert ordered == sorted(ordered, reverse=True)

    # Superlinear: 2 cores cost less than half of 1 core (cubic power).
    assert static[2.0] < 0.5 * static[1.0]

    # Dynamic reclaiming keeps its edge on every core count.
    for x in lpsta:
        assert lpsta[x] <= static[x] + 1e-9
