"""EXP-F11 (extension): dynamic power management of idle time.

Leaky platform, lpSTA + critical-speed floor for the active parts;
never-sleep vs sleep-on-idle vs procrastination for the idle parts.
Shape criteria: sleeping pays when wake-ups are cheap, both sleep
managers decay toward never-sleep as wake-ups get expensive, and
procrastination (batched episodes) never loses to plain sleep-on-idle.
Zero misses — the vacation bound is the paper's own slack analysis.
"""

from repro.experiments.figures import dpm_sensitivity


def test_fig11_dpm(run_experiment):
    fig = run_experiment(dpm_sensitivity)

    for points in fig.series.values():
        for p in points:
            assert p.extra["misses"] == 0

    never = {p.x: p.mean for p in fig.series["never-sleep"]}
    plain = {p.x: p.mean for p in fig.series["sleep-on-idle"]}
    procr = {p.x: p.mean for p in fig.series["procrastination"]}

    # Never-sleep is flat (it never pays a wake-up).
    assert max(never.values()) - min(never.values()) < 0.01

    # Cheap wake-ups: sleeping is clearly worth it.
    assert plain[0.0] < never[0.0] - 0.1

    # Expensive wake-ups: both managers converge to never-sleep.
    assert plain[10.0] >= never[10.0] - 0.01

    # Procrastination never loses to plain sleep-on-idle, and wins in
    # the contested middle of the range.
    for x in plain:
        assert procr[x] <= plain[x] + 0.005
    assert procr[2.0] < plain[2.0] - 0.005
