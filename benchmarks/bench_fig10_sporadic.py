"""EXP-F10 (extension): sporadic arrival jitter.

The sporadic generalisation of the paper's periodic model: online
policies may only assume the minimum inter-arrival separation, yet
every longer gap is real slack.  Shape criteria: dynamic savings grow
with jitter, static stays pinned at the worst-case utilization, the
arrival-knowing oracle pulls away (quantifying the price of the
pessimistic view), and deadlines stay hard throughout.
"""

from repro.experiments.figures import sporadic_sensitivity


def test_fig10_sporadic(run_experiment):
    fig = run_experiment(sporadic_sensitivity)

    for points in fig.series.values():
        for p in points:
            assert p.extra["misses"] == 0

    static = {p.x: p.mean for p in fig.series["static"]}
    lpsta = {p.x: p.mean for p in fig.series["lpSTA"]}
    oracle = {p.x: p.mean for p in fig.series["clairvoyant"]}

    # Static scaling cannot exploit sporadic gaps (pinned at ~U^2).
    assert max(static.values()) - min(static.values()) < 0.02

    # The paper's policy converts gaps into savings, monotonically.
    ordered = [lpsta[x] for x in sorted(lpsta)]
    assert ordered == sorted(ordered, reverse=True)
    assert lpsta[2.0] < lpsta[0.0] - 0.1

    # Knowing the actual arrivals is worth a lot: the oracle's lead
    # over lpSTA grows with jitter.
    lead_none = lpsta[0.0] - oracle[0.0]
    lead_max = lpsta[2.0] - oracle[2.0]
    assert lead_max > lead_none
