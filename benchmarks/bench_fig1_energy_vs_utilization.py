"""EXP-F1: normalized energy vs worst-case utilization.

Paper analogue: the headline figure — every DVS-EDF policy's normalized
energy across the utilization range at bc/wc = 0.5.  Shape criteria:
monotone-rising curves, the canonical policy ordering at mid/high
utilization, zero deadline misses everywhere.
"""

from repro.experiments.figures import energy_vs_utilization


def test_fig1_energy_vs_utilization(run_experiment):
    fig = run_experiment(energy_vs_utilization)

    # No misses anywhere.
    for points in fig.series.values():
        assert all(p.extra["misses"] == 0 for p in points)

    # Energy rises with utilization for every DVS policy.
    for name in ("static", "ccEDF", "lpSEH", "lpSTA", "clairvoyant"):
        means = [p.mean for p in fig.series[name]]
        assert means == sorted(means), name

    # Canonical ordering at U = 0.9: oracle <= paper policies <= static.
    def at(name, x=0.9):
        return fig.value_at(name, x).mean

    assert at("clairvoyant") <= at("lpSTA") + 1e-9
    assert at("lpSTA") < at("static")
    assert at("lpSEH") < at("static")
    assert at("lppsEDF") < at("none", 0.9) if fig.value_at("none", 0.9) \
        else True

    # The paper's claim shape: meaningful savings over the weakest
    # dynamic baseline at high utilization.
    assert at("lpSTA") < at("lppsEDF")
