"""EXP-T1: regenerate the processor-model table.

Paper analogue: the simulation-environment table listing the DVS
processor's speed/voltage levels.  Here: every named profile with its
level count, speed floor and power range.
"""

from repro.experiments.tables import processor_model_table


def test_table1_processor_model(run_experiment):
    table = run_experiment(processor_model_table)
    profiles = {row["profile"] for row in table.rows}
    assert {"ideal", "generic4", "xscale", "sa1100", "crusoe"} <= profiles
    for row in table.rows:
        assert row["power_at_max"] >= row["power_at_min"]
