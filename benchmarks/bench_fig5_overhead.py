"""EXP-F5: transition-overhead sensitivity.

Paper analogue: the speed-switch overhead study.  All policies run
behind the overhead-aware guard, so deadlines stay hard; as the switch
window grows the guard vetoes more slowdowns and the savings erode —
but DVS must keep beating no-DVS, and switch counts must fall.
"""

from repro.experiments.figures import overhead_sensitivity


def test_fig5_overhead(run_experiment):
    fig = run_experiment(overhead_sensitivity)

    # Hard real-time even with relock windows: zero misses.
    for points in fig.series.values():
        assert all(p.extra["misses"] == 0 for p in points)

    lp = {p.x: p for p in fig.series["lpSTA"]}

    # Savings persist under every overhead (still below no-DVS).
    assert all(p.mean < 1.0 for p in lp.values())

    # The guard reins in switching as overhead grows.
    assert lp[1.0].extra["mean_switches"] <= \
        lp[0.0].extra["mean_switches"]

    # Free switching is at least as cheap as the heaviest overhead.
    assert lp[0.0].mean <= lp[1.0].mean + 0.05
