"""EXP-T2: normalized energy on the real-world benchmark suites.

Paper analogue: the per-application results table.  Shape criteria:
every DVS policy saves energy on every suite, the paper's slack
policies lead the online field (within tolerance), and the oracle
floors everything.
"""

from repro.experiments.tables import realworld_table


def test_table2_realworld(run_experiment):
    table = run_experiment(realworld_table)
    for row in table.rows:
        assert row["none"] == 1.0
        # Every DVS policy saves energy on every suite.
        for policy in ("static", "ccEDF", "lppsEDF", "DRA", "laEDF",
                       "lpSEH", "lpSTA", "clairvoyant"):
            assert row[policy] < 1.0, (row["taskset"], policy)
        # Dynamic reclaiming beats pure static scaling.
        assert row["lpSTA"] < row["static"]
        # The oracle is the floor.
        best_online = min(row["ccEDF"], row["lppsEDF"], row["DRA"],
                          row["laEDF"], row["lpSEH"], row["lpSTA"])
        assert row["clairvoyant"] <= best_online * 1.02
