"""EXP-F2: normalized energy vs bc/wc execution-time ratio.

Paper analogue: the workload-variability figure at U = 0.9.  Shape
criteria: all dynamic policies converge onto statically scaled EDF as
bc/wc -> 1 (no reclaimable slack left), and savings grow monotonically
as actual demand falls.
"""

from repro.experiments.figures import energy_vs_bcwc


def test_fig2_energy_vs_bcwc(run_experiment):
    fig = run_experiment(energy_vs_bcwc)

    for points in fig.series.values():
        assert all(p.extra["misses"] == 0 for p in points)

    # Monotone: more actual demand -> more energy.
    for name in ("ccEDF", "DRA", "lpSEH", "lpSTA", "clairvoyant"):
        means = [p.mean for p in fig.series[name]]
        assert means == sorted(means), name

    # At bc/wc = 1.0 the slack policies coincide with static EDF.
    static = fig.value_at("static", 1.0).mean
    assert abs(fig.value_at("lpSTA", 1.0).mean - static) < 1e-6
    assert abs(fig.value_at("lpSEH", 1.0).mean - static) < 1e-6

    # At low ratios the dynamic policies are far below static.
    assert fig.value_at("lpSTA", 0.1).mean < 0.75 * \
        fig.value_at("static", 0.1).mean
