"""EXP-F9 (extension): energy relative to the YDS offline optimum.

Cross-validates the whole stack against an independent optimal
algorithm: every policy must land at >= 1x the YDS energy, the
clairvoyant per-dispatch oracle must come within a few percent of it,
and the paper's online policies must capture most of the headroom.
"""

from repro.experiments.figures import optimality_gap


def test_fig9_optimality_gap(run_experiment):
    fig = run_experiment(optimality_gap)

    for name, points in fig.series.items():
        for p in points:
            # YDS optimality: nobody beats the offline optimum.
            assert p.mean >= 1.0 - 1e-6, (name, p.x)

    # The per-dispatch oracle is near-optimal (validates both the
    # oracle and the YDS implementation against each other).
    for p in fig.series["clairvoyant"]:
        assert p.mean <= 1.10

    # The paper's online policies capture most of the headroom.
    for p in fig.series["lpSTA"]:
        assert p.mean <= 1.60
