"""EXP-F3: normalized energy vs task-set size.

Paper analogue: the robustness figure — savings should be stable (and
mildly improve) as the same utilization is split over more tasks, since
more, smaller jobs give the reclaimer finer-grained slack.
"""

from repro.experiments.figures import energy_vs_ntasks


def test_fig3_energy_vs_ntasks(run_experiment):
    fig = run_experiment(energy_vs_ntasks)

    for points in fig.series.values():
        assert all(p.extra["misses"] == 0 for p in points)

    # Stability: lpSTA's spread across task counts stays modest.
    means = [p.mean for p in fig.series["lpSTA"]]
    assert max(means) - min(means) < 0.25

    # At every size the paper policy beats plain static scaling.
    for point in fig.series["lpSTA"]:
        static = fig.value_at("static", point.x).mean
        assert point.mean < static
