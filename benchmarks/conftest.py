"""Benchmark configuration.

Each benchmark regenerates one table/figure of the reconstructed
evaluation (DESIGN.md §5) and prints its ASCII rendering, so running

    pytest benchmarks/ --benchmark-only

reproduces the full experiment suite.  Experiments are deterministic
(seeded), so a single round per benchmark is both sufficient and what
keeps the suite affordable; pytest-benchmark still reports the
wall-clock cost of regenerating each artifact.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment driver once under pytest-benchmark and return
    its FigureData/TableData for shape assertions."""

    def runner(driver, **kwargs):
        result = benchmark.pedantic(
            lambda: driver(**kwargs), iterations=1, rounds=1)
        print()
        print(result.render())
        return result

    return runner
