"""Hot-path microbenchmarks — the perf-trajectory anchors.

These benchmarks pin the layers of the performance stack (DESIGN.md §8):

* ``engine_step`` — one full simulation under the cheap ``static``
  policy, so the measured cost is dominated by the engine's dispatch
  loop (release processing, scheduling, energy integration) rather
  than by any slack analysis.
* ``exact_slack`` / ``heuristic_slack`` — the two slack evaluators on
  a representative mid-hyperperiod system state.
* ``exp1_cell`` — one seeded (workload, all-policies) suite, i.e. one
  cell of EXP-F1 at reduced horizon: the unit the sweep executor
  parallelises, and the "single-cell engine throughput" number the
  acceptance criteria track.
* ``cache_roundtrip`` — one fingerprint + hit on the persistent suite
  cache: the fixed cost a cache hit pays instead of the ``exp1_cell``
  simulation, so the hit-vs-simulate margin is tracked explicitly
  (a hit must stay orders of magnitude cheaper than the cell).
* ``batch_step`` / ``batch_cell`` — the vectorized multi-seed engine
  (DESIGN.md §12): one 16-seed batch-eligible suite under the cheap
  kernels (``batch_step``) and the full four-kernel suite including
  the vector slack analysis (``batch_cell``).  Per-seed cost here
  against ``engine_step``/``exp1_cell`` is the scalar-vs-batch
  speedup the acceptance criteria track (``bench_record.py`` records
  it directly as ``batch_exp1`` at realistic seed counts).

``scripts/bench_record.py`` runs these under pytest-benchmark and
folds the means into a ``BENCH_<date>.json`` so speedups (and
regressions) are visible PR-over-PR; ``scripts/ci_fast.sh`` fails when
``engine_step`` degrades more than 25% against the checked-in record
and when the mini-sweep ``parallel_speedup`` drops below 1.0.
"""

from __future__ import annotations

import pytest

from repro.analysis.slack import ActiveJob, SystemState, exact_slack, \
    heuristic_slack, scale_tasks
from repro.cpu.profiles import ideal_processor
from repro.experiments.config import DEFAULT_POLICIES
from repro.experiments.runner import bcwc_model, run_suite, standard_taskset
from repro.policies.registry import make_policy
from repro.sim import fastcore
from repro.sim.engine import simulate

#: Reduced horizon: long enough that per-dispatch costs dominate
#: setup, short enough for tight benchmark rounds.
BENCH_HORIZON = 1200.0
BENCH_SEED = 20020311


@pytest.fixture(scope="module")
def workload():
    taskset = standard_taskset(8, 0.7, BENCH_SEED)
    model = bcwc_model(0.5, BENCH_SEED)
    return taskset, model


@pytest.fixture(scope="module")
def slack_fixture(workload):
    """A representative mid-run SystemState in the static time base."""
    taskset, _ = workload
    baseline = max(taskset.utilization, 1e-9)
    tasks = scale_tasks(taskset.tasks, baseline)
    # Phase-shifted releases and partially executed budgets: the shape
    # the analysis sees at a typical scheduling point.
    time = 37.0
    next_release = {
        task.name: time + (idx * 3.1) % task.period + 0.25
        for idx, task in enumerate(tasks)}
    active = tuple(
        ActiveJob(deadline=time + task.deadline - (idx * 2.3) % 7.0,
                  remaining_wcet=task.wcet * (0.2 + 0.15 * (idx % 4)))
        for idx, task in enumerate(tasks[:4]))
    return SystemState.build(time=time, active=active, tasks=tasks,
                             next_release=next_release)


def test_engine_step(benchmark, workload):
    """Interpreted engine anchor.

    Pinned to the interpreted loop regardless of whether the compiled
    core is built, so the recorded trajectory (and ci_fast's 25%
    regression guard) keeps measuring the same code path on every
    host; ``engine_step_compiled`` tracks the compiled core.
    """
    taskset, model = workload

    def run():
        with fastcore.forced(False):
            return simulate(taskset, ideal_processor(),
                            make_policy("static"), model,
                            horizon=BENCH_HORIZON)

    result = benchmark(run)
    assert result.jobs_completed > 0
    assert not result.deadline_misses


def test_engine_step_compiled(benchmark, workload):
    """Compiled engine anchor (DESIGN.md §13); skipped when not built.

    Same workload, policy and horizon as ``engine_step`` — the ratio
    of the two recorded means is the compiled-core speedup the
    acceptance criteria track (>= 2x).
    """
    if not fastcore.compiled_available():
        pytest.skip("compiled core not built (REPRO_COMPILE=1)")
    taskset, model = workload

    def run():
        with fastcore.forced(True):
            return simulate(taskset, ideal_processor(),
                            make_policy("static"), model,
                            horizon=BENCH_HORIZON)

    result = benchmark(run)
    assert result.jobs_completed > 0
    assert not result.deadline_misses


def test_faultmatrix_cell(benchmark, workload):
    """One governed fault-matrix run: the instrumented path batch can
    never take (faults + governor force the scalar engine), i.e. the
    path the compiled core exists to accelerate.  Runs on whichever
    backend is active by default, like the sweeps themselves."""
    from repro.faults import FaultPlan
    from repro.faults.plan import OverrunFault, TransitionFault

    taskset_fm = standard_taskset(6, 0.65, BENCH_SEED)
    model_fm = bcwc_model(0.5, BENCH_SEED)

    def run():
        return simulate(
            taskset_fm, ideal_processor(),
            make_policy("lpSEH", governed=True, governor_margin=1.3),
            model_fm, horizon=BENCH_HORIZON, allow_misses=True,
            faults=FaultPlan(
                seed=BENCH_SEED,
                overrun=OverrunFault(factor=1.3, probability=0.3),
                transition=TransitionFault(stuck_probability=0.2)))

    result = benchmark(run)
    assert result.jobs_completed > 0


def test_exact_slack(benchmark, slack_fixture):
    value = benchmark(exact_slack, slack_fixture, window_cap_periods=2.0)
    assert value >= 0.0


def test_heuristic_slack(benchmark, slack_fixture):
    value = benchmark(heuristic_slack, slack_fixture)
    assert value >= 0.0
    # The heuristic never exceeds the exact analysis.
    assert value <= exact_slack(slack_fixture, window_cap_periods=2.0) + 1e-9


def test_exp1_cell(benchmark, workload):
    taskset, model = workload

    def run():
        return run_suite(taskset, DEFAULT_POLICIES, ideal_processor(),
                         model, horizon=BENCH_HORIZON,
                         workload_seed=BENCH_SEED)

    suite = benchmark(run)
    assert set(suite.results) >= set(DEFAULT_POLICIES)
    for name in DEFAULT_POLICIES:
        assert suite.miss_count(name) == 0


#: Seeds per batch-bench round: enough rows that the vector kernels
#: dominate the python setup loop, small enough for tight rounds.
BATCH_BENCH_SEEDS = 16


@pytest.fixture(scope="module")
def batch_workloads():
    """Pre-built (taskset, model) pairs so rounds time only the engine."""
    pairs = {seed: (standard_taskset(8, 0.7, seed), bcwc_model(0.5, seed))
             for seed in range(BATCH_BENCH_SEEDS)}

    def make_workload(x, seed):
        return pairs[seed]

    return make_workload


def _run_batch(make_workload, policies):
    from repro.sim.batch import run_batch_suites

    rows = run_batch_suites(
        0.7, list(range(BATCH_BENCH_SEEDS)), make_workload=make_workload,
        policy_names=policies, processor=ideal_processor(),
        horizon=BENCH_HORIZON)
    assert rows is not None
    return rows


def test_batch_step(benchmark, batch_workloads):
    """16 seeds x (none, static, ccEDF): the cheap vector kernels."""
    rows = benchmark(_run_batch, batch_workloads,
                     ("none", "static", "ccEDF"))
    assert sum(row is not None for row in rows) == BATCH_BENCH_SEEDS


def test_batch_cell(benchmark, batch_workloads):
    """16 seeds x all four kernels, incl. the vector slack analysis."""
    rows = benchmark(_run_batch, batch_workloads,
                     ("none", "static", "ccEDF", "lpSTA"))
    assert sum(row is not None for row in rows) == BATCH_BENCH_SEEDS


def test_cache_roundtrip(benchmark, tmp_path):
    from repro.experiments.cache import (PolicySummary, SuiteCache,
                                         suite_fingerprint)

    cache = SuiteCache(tmp_path)
    summaries = {
        name: PolicySummary(normalized=0.5 + 0.01 * i, misses=0,
                            switches=40 + i, overruns=0, released=120,
                            interventions=0, dispatches=0)
        for i, name in enumerate(("none",) + tuple(DEFAULT_POLICIES))}
    key = dict(workload_id="bench:cache-roundtrip", x=0.7,
               seed=BENCH_SEED, policies=DEFAULT_POLICIES,
               horizon=BENCH_HORIZON)
    digest, payload = suite_fingerprint(**key)
    cache.put(digest, summaries, key_payload=payload)

    def hit():
        digest, _ = suite_fingerprint(**key)
        return cache.get(digest)

    assert benchmark(hit) == summaries
