"""EXP-F8 (extension): leakage power and the critical-speed floor.

The leakage-aware-DVS result: with a static power component, plain
slack-stretching eventually *loses to no-DVS* (it pays leakage over the
stretched time), while clamping to the critical speed keeps DVS
profitable.  Shape criteria below.
"""

from repro.experiments.figures import leakage_sensitivity


def test_fig8_leakage(run_experiment):
    fig = run_experiment(leakage_sensitivity)

    plain = {p.x: p.mean for p in fig.series["lpSTA"]}
    floored = {p.x: p.mean for p in fig.series["cs-lpSTA"]}

    # Without leakage the floor is inert (critical speed ~ 0).
    assert abs(plain[0.0] - floored[0.0]) < 1e-6

    # The floor never hurts and strictly helps at high leakage.
    for rho, value in plain.items():
        assert floored[rho] <= value + 1e-9
    assert floored[0.8] < plain[0.8] - 0.1

    # The headline: plain DVS loses to no-DVS at extreme leakage,
    # the floored variant keeps winning.
    assert plain[0.8] > 1.0
    assert floored[0.8] < 1.0
