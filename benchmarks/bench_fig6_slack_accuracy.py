"""EXP-F6 (ablation): lpSEH slack-estimate accuracy vs exact analysis.

Quantifies what the O(n) heuristic gives up, per workload family:

* **implicit deadlines** — the heuristic is empirically *exact*: its
  linear future-demand bound coincides with the true demand at every
  binding candidate, so lpSEH == lpSTA on the standard workloads;
* **constrained deadlines** — the unconditional correction term makes
  the estimate genuinely conservative (it recovers only part of the
  exact slack), which is where lpSTA's wider exact analysis pays off.

Safety demands the ratio never exceed 1 in either family.
"""

from repro.experiments.figures import slack_accuracy


def test_fig6_slack_accuracy(run_experiment):
    fig = run_experiment(slack_accuracy)

    implicit = fig.series["implicit"]
    constrained = fig.series["constrained"]
    assert implicit and constrained, "missing accuracy samples"

    for p in implicit + constrained:
        # Safe: never over-estimates.
        assert p.mean <= 1.0 + 1e-9
        assert 0.0 <= p.extra["zero_fraction"] <= 1.0

    # Implicit deadlines: empirically exact.
    for p in implicit:
        assert p.mean >= 0.999

    # Constrained deadlines: genuinely conservative but still useful.
    for p in constrained:
        assert 0.05 <= p.mean <= 0.95
