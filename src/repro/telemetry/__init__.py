"""repro.telemetry — zero-dependency observability for the simulator.

See :mod:`repro.telemetry.core` for the span/counter/histogram
registry (:data:`TELEMETRY`, process-local, disabled by default) and
:mod:`repro.telemetry.manifest` for per-sweep run manifests.  DESIGN.md
§9 documents the span model, the metric naming scheme and the manifest
schema.
"""

from repro.telemetry.core import (
    DEFAULT_BOUNDS,
    Counter,
    Histogram,
    JsonlSink,
    TELEMETRY,
    Telemetry,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    git_revision,
    next_manifest_path,
    render_manifest,
)
from repro.telemetry.progress import (
    PROGRESS_FILENAME,
    PROGRESS_SCHEMA,
    ProgressSnapshot,
    ProgressStream,
    read_progress,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "Counter",
    "Histogram",
    "JsonlSink",
    "TELEMETRY",
    "Telemetry",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "git_revision",
    "next_manifest_path",
    "render_manifest",
    "PROGRESS_FILENAME",
    "PROGRESS_SCHEMA",
    "ProgressSnapshot",
    "ProgressStream",
    "read_progress",
]
