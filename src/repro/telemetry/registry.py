"""Cross-run registry: a sharded on-disk index of completed runs.

Run manifests answer "how was *this* result produced"; nothing so far
answers "what runs exist, and how does today's compare to last
week's".  The :class:`RunRegistry` closes that gap: every completed
sweep manifest (and every checked-in ``BENCH_*.json`` perf record) is
folded into one compact **run record** — identity, fingerprint digest,
timing, cache and progress summaries, energy/miss proxies — and
persisted under a two-level sharded layout::

    <registry>/runs/<shard>/<run_id>.json

where ``run_id = <created-compact>-<fingerprint-digest-prefix>`` and
``shard`` is the digest prefix's first two hex chars, so a registry
with thousands of runs never puts them all in one directory and two
ingests of the same run land on the same path (idempotent by
construction).

Ingest happens two ways: explicitly (``repro runs ingest``, or the
``repro runs list --bench`` bootstrap over the checked-in bench
records) and automatically — :meth:`RunManifest.write
<repro.telemetry.manifest.RunManifest.write>` offers every manifest it
writes to :func:`ingest_written_manifest`, which is a no-op unless a
registry is configured via ``repro run --registry-dir`` /
``REPRO_REGISTRY_DIR`` (:func:`set_registry_dir`).  The hook is
best-effort: a broken registry never fails a sweep.

Queries (``repro runs list|show|compare|gc``) filter by workload,
policy, fingerprint-digest prefix and date; :func:`compare_records`
diffs two runs' energy/miss/timing summaries and flags **fingerprint
drift** — keys whose values differ between the two runs' sweep specs —
so "why is this run slower/hungrier" starts from what actually
changed.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ExperimentError
from repro.telemetry.manifest import RunManifest

#: Bumped when the record layout changes; loaders skip newer records.
REGISTRY_SCHEMA = 1

#: Engine counters a run record keeps for cross-run comparison — the
#: behavioural fingerprint of a sweep, small enough to store per run.
_KEPT_COUNTERS = (
    "engine.runs", "engine.steps", "engine.dispatches",
    "engine.misses", "engine.overruns", "engine.speed_switches",
    "sweep.retries", "resilience.quarantined",
    "resilience.pool_rebuilds", "resilience.watchdog_kills",
)

#: How many digest hex chars the run id carries.
_DIGEST_PREFIX = 10


def fingerprint_digest(fingerprint: Mapping | None) -> str:
    """Stable digest of a sweep's spec fingerprint."""
    payload = json.dumps(fingerprint or {}, sort_keys=True,
                         default=str)
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def _compact_ts(created: str) -> str:
    """``2026-08-08T12:15:30`` → ``20260808T121530`` (sortable id part).

    Falls back to the raw string stripped to id-safe chars when the
    timestamp does not parse — ids must be constructible from any
    manifest we can load.
    """
    try:
        ts = _dt.datetime.fromisoformat(created)
        return ts.strftime("%Y%m%dT%H%M%S")
    except ValueError:
        return re.sub(r"[^0-9A-Za-z]", "", created) or "unknown"


@dataclass
class RunRecord:
    """One registry entry: the comparable summary of one run."""

    run_id: str
    kind: str                      # "sweep" | "bench"
    label: str
    created: str
    fingerprint_digest: str
    fingerprint: dict = field(default_factory=dict)
    workload_id: str | None = None
    policies: list[str] = field(default_factory=list)
    git_rev: str = ""
    code_epoch: str = ""
    wall_s: float | None = None
    cache: dict = field(default_factory=dict)
    progress: dict | None = None
    counters: dict[str, int] = field(default_factory=dict)
    #: Mean dispatch speed per policy (from the ``policy.<p>.speed``
    #: histograms) — the energy proxy manifests actually carry: lower
    #: mean speed at equal misses means more slack reclaimed.
    mean_speed: dict[str, float] = field(default_factory=dict)
    misses: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    #: Projected ``profile`` block (schema-5 manifests): attributed
    #: wall and the category budget, so ``repro runs compare`` can
    #: show attribution deltas.  Additive — absent in older records.
    profile: dict | None = None
    source: str = ""
    schema: int = REGISTRY_SCHEMA

    def to_payload(self) -> dict:
        return {
            "kind": "run-record",
            "schema": self.schema,
            "run_id": self.run_id,
            "run_kind": self.kind,
            "label": self.label,
            "created": self.created,
            "fingerprint_digest": self.fingerprint_digest,
            "fingerprint": self.fingerprint,
            "workload_id": self.workload_id,
            "policies": self.policies,
            "git_rev": self.git_rev,
            "code_epoch": self.code_epoch,
            "wall_s": self.wall_s,
            "cache": self.cache,
            "progress": self.progress,
            "counters": self.counters,
            "mean_speed": self.mean_speed,
            "misses": self.misses,
            "timings": self.timings,
            "profile": self.profile,
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RunRecord":
        if payload.get("kind") != "run-record":
            raise ExperimentError(
                f"not a run record (kind={payload.get('kind')!r})")
        schema = int(payload.get("schema", -1))
        if schema > REGISTRY_SCHEMA:
            raise ExperimentError(
                f"run record schema {schema} is newer than this build "
                f"understands ({REGISTRY_SCHEMA})")
        return cls(
            run_id=str(payload["run_id"]),
            kind=str(payload.get("run_kind", "sweep")),
            label=str(payload.get("label", "")),
            created=str(payload.get("created", "")),
            fingerprint_digest=str(payload.get("fingerprint_digest", "")),
            fingerprint=dict(payload.get("fingerprint", {})),
            workload_id=payload.get("workload_id"),
            policies=list(payload.get("policies", [])),
            git_rev=str(payload.get("git_rev", "")),
            code_epoch=str(payload.get("code_epoch", "")),
            wall_s=payload.get("wall_s"),
            cache=dict(payload.get("cache", {})),
            progress=payload.get("progress"),
            counters={k: int(v)
                      for k, v in payload.get("counters", {}).items()},
            mean_speed={k: float(v)
                        for k, v in payload.get("mean_speed",
                                                {}).items()},
            misses=dict(payload.get("misses", {})),
            timings={k: float(v)
                     for k, v in payload.get("timings", {}).items()},
            profile=payload.get("profile"),
            source=str(payload.get("source", "")),
            schema=schema,
        )

    def cache_hit_rate(self) -> float | None:
        hits = self.cache.get("hits", 0)
        misses = self.cache.get("misses", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)


def record_from_manifest(manifest: RunManifest,
                         path: str | Path | None = None) -> RunRecord:
    """Project one run manifest into its registry record."""
    digest = fingerprint_digest(manifest.fingerprint)
    run_id = (f"{_compact_ts(manifest.created)}-"
              f"{digest[:_DIGEST_PREFIX]}")
    mean_speed: dict[str, float] = {}
    for name, histogram in manifest.histograms.items():
        match = re.fullmatch(r"policy\.(.+)\.speed", name)
        if match and histogram.get("count"):
            mean_speed[match.group(1)] = (histogram["total"]
                                          / histogram["count"])
    policies = [str(p) for p in
                manifest.fingerprint.get("policies") or []]
    return RunRecord(
        run_id=run_id,
        kind="sweep",
        label=manifest.label,
        created=manifest.created,
        fingerprint_digest=digest,
        fingerprint=dict(manifest.fingerprint),
        workload_id=manifest.fingerprint.get("workload_id"),
        policies=policies,
        git_rev=manifest.git_rev,
        code_epoch=manifest.code_epoch,
        wall_s=(manifest.phases.get("sweep.compute")
                or {}).get("wall_s"),
        cache=dict(manifest.cache),
        progress=(dict(manifest.progress)
                  if manifest.progress else None),
        counters={name: manifest.counters[name]
                  for name in _KEPT_COUNTERS
                  if name in manifest.counters},
        mean_speed=mean_speed,
        misses={"engine.misses": manifest.counters.get(
            "engine.misses", 0)},
        profile=({"wall_s": manifest.profile.get("wall_s"),
                  "parent_wall_s": manifest.profile.get("parent_wall_s"),
                  "budget": dict(manifest.profile.get("budget", {}))}
                 if manifest.profile else None),
        source=str(path) if path is not None else "",
    )


def record_from_bench(payload: Mapping,
                      path: str | Path | None = None) -> RunRecord:
    """Project one ``BENCH_*.json`` perf record into a registry record.

    Bench records have no sweep fingerprint; their identity is the
    record's date + revision, and their comparable substance is the
    anchor timings (``hotpath`` means) plus the recorded sweep/batch
    wall times — which is exactly what ``repro runs list --bench``
    exists to put on one axis.
    """
    date = str(payload.get("date", "unknown"))
    rev = str(payload.get("rev", "unknown"))
    identity = {"date": date, "rev": rev,
                "python": payload.get("python")}
    digest = fingerprint_digest(identity)
    timings: dict[str, float] = {}
    for anchor, stats in (payload.get("hotpath") or {}).items():
        mean = (stats or {}).get("mean_s")
        if mean is not None:
            timings[f"hotpath.{anchor}"] = float(mean)
    for block in ("sweep_exp1_mini", "batch_exp1"):
        for key, value in (payload.get(block) or {}).items():
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool):
                timings[f"{block}.{key}"] = float(value)
    return RunRecord(
        run_id=f"{_compact_ts(date)}-{digest[:_DIGEST_PREFIX]}",
        kind="bench",
        label=f"bench {date}",
        created=date,
        fingerprint_digest=digest,
        fingerprint=identity,
        git_rev=rev,
        timings=timings,
        source=str(path) if path is not None else "",
    )


class RunRegistry:
    """The sharded on-disk index of run records."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, record: RunRecord) -> Path:
        shard = record.fingerprint_digest[:2] or "00"
        return self.runs_dir / shard / f"{record.run_id}.json"

    # -- ingest --------------------------------------------------------

    def add(self, record: RunRecord) -> Path:
        """Persist one record (atomic, idempotent by run id)."""
        path = self._path(record)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(record.to_payload(), indent=2,
                                  sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    def ingest_manifest(self, path: str | Path) -> RunRecord:
        manifest = RunManifest.load(path)
        record = record_from_manifest(manifest, path)
        self.add(record)
        return record

    def ingest_bench(self, path: str | Path) -> RunRecord:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(
                f"cannot read bench record {path}: {exc}") from exc
        record = record_from_bench(payload, path)
        self.add(record)
        return record

    def ingest_path(self, path: str | Path) -> list[RunRecord]:
        """Ingest a manifest, a bench record, or a directory of both."""
        path = Path(path)
        if path.is_dir():
            records = []
            for candidate in sorted(path.glob("**/manifest_*.json")):
                records.append(self.ingest_manifest(candidate))
            for candidate in sorted(path.glob("**/BENCH_*.json")):
                records.append(self.ingest_bench(candidate))
            return records
        if path.name.startswith("BENCH_"):
            return [self.ingest_bench(path)]
        return [self.ingest_manifest(path)]

    # -- query ---------------------------------------------------------

    def records(self) -> Iterable[RunRecord]:
        for path in sorted(self.runs_dir.glob("*/*.json")):
            try:
                yield RunRecord.from_payload(
                    json.loads(path.read_text()))
            except (OSError, ValueError, KeyError, ExperimentError):
                continue  # a torn or foreign file is not worth dying over

    def list(self, *, workload: str | None = None,
             policy: str | None = None,
             fingerprint: str | None = None,
             since: str | None = None,
             kind: str | None = None) -> list[RunRecord]:
        """Query records, newest first."""
        results = []
        for record in self.records():
            if kind is not None and record.kind != kind:
                continue
            if workload is not None and workload not in (
                    record.workload_id or record.label):
                continue
            if policy is not None and policy not in record.policies:
                continue
            if fingerprint is not None and \
                    not record.fingerprint_digest.startswith(fingerprint):
                continue
            if since is not None and record.created < since:
                continue
            results.append(record)
        results.sort(key=lambda r: (r.created, r.run_id), reverse=True)
        return results

    def get(self, run_id: str) -> RunRecord:
        """Resolve a full or unambiguous-prefix run id."""
        matches = [record for record in self.records()
                   if record.run_id.startswith(run_id)]
        if not matches:
            raise ExperimentError(
                f"no run {run_id!r} in registry {self.directory}")
        if len(matches) > 1:
            ids = ", ".join(sorted(r.run_id for r in matches)[:5])
            raise ExperimentError(
                f"run id {run_id!r} is ambiguous: {ids}")
        return matches[0]

    def gc(self, *, keep: int) -> int:
        """Drop all but the newest *keep* records; returns removed count."""
        if keep < 0:
            raise ExperimentError(f"keep must be >= 0, got {keep}")
        records = self.list()
        removed = 0
        for record in records[keep:]:
            try:
                self._path(record).unlink()
                removed += 1
            except OSError:
                continue
        # Sweep up emptied shards so gc leaves no husk directories.
        for shard in self.runs_dir.glob("*"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


# -- compare -----------------------------------------------------------


def compare_records(a: RunRecord, b: RunRecord) -> dict:
    """Structured diff of two run records (a = baseline, b = candidate).

    Flags fingerprint drift (keys whose spec values differ), and diffs
    wall time, cache hit rate, progress counts, kept engine counters,
    per-policy mean dispatch speed and (for bench records) the anchor
    timings.  The rendering lives in :func:`render_compare`.
    """
    drift = sorted(
        key for key in set(a.fingerprint) | set(b.fingerprint)
        if a.fingerprint.get(key) != b.fingerprint.get(key))

    def delta(x: float | None, y: float | None) -> dict | None:
        if x is None or y is None:
            return None
        out = {"a": x, "b": y, "delta": y - x}
        if x:
            out["ratio"] = y / x
        return out

    counters = {}
    for name in sorted(set(a.counters) | set(b.counters)):
        va, vb = a.counters.get(name, 0), b.counters.get(name, 0)
        if va != vb:
            counters[name] = {"a": va, "b": vb, "delta": vb - va}
    speeds = {}
    for name in sorted(set(a.mean_speed) | set(b.mean_speed)):
        entry = delta(a.mean_speed.get(name), b.mean_speed.get(name))
        if entry is not None:
            speeds[name] = entry
    timings = {}
    for name in sorted(set(a.timings) | set(b.timings)):
        entry = delta(a.timings.get(name), b.timings.get(name))
        if entry is not None:
            timings[name] = entry
    progress = {}
    for name in ("units", "done", "computed", "cached", "resumed",
                 "quarantined"):
        va = (a.progress or {}).get(name)
        vb = (b.progress or {}).get(name)
        if va is not None or vb is not None:
            progress[name] = {"a": va, "b": vb}
    profile = {}
    budget_a = (a.profile or {}).get("budget", {})
    budget_b = (b.profile or {}).get("budget", {})
    for name in sorted(set(budget_a) | set(budget_b)):
        entry = delta(budget_a.get(name), budget_b.get(name))
        if entry is not None and (entry["a"] or entry["b"]):
            profile[name] = entry
    if a.profile or b.profile:
        entry = delta((a.profile or {}).get("wall_s"),
                      (b.profile or {}).get("wall_s"))
        if entry is not None:
            profile["attributed_wall_s"] = entry
    return {
        "a": a.run_id,
        "b": b.run_id,
        "same_fingerprint": a.fingerprint_digest == b.fingerprint_digest,
        "fingerprint_drift": drift,
        "wall_s": delta(a.wall_s, b.wall_s),
        "cache_hit_rate": delta(a.cache_hit_rate(),
                                b.cache_hit_rate()),
        "progress": progress,
        "counters": counters,
        "mean_speed": speeds,
        "timings": timings,
        "profile": profile,
    }


# -- rendering ---------------------------------------------------------


def render_records(records: list[RunRecord]) -> str:
    if not records:
        return "no runs in the registry"
    lines = [f"{'run id':<28} {'kind':<6} {'label':<22} "
             f"{'rev':<9} {'wall':>8}  notes"]
    for record in records:
        wall = (f"{record.wall_s:.2f}s"
                if record.wall_s is not None else "-")
        notes = []
        rate = record.cache_hit_rate()
        if rate is not None:
            notes.append(f"hit-rate {rate:.0%}")
        if record.progress:
            p = record.progress
            notes.append(f"{p.get('done', 0)}/{p.get('units', 0)} units")
            if p.get("quarantined"):
                notes.append(f"{p['quarantined']} quarantined")
        if record.kind == "bench":
            step = record.timings.get("hotpath.engine_step")
            if step is not None:
                notes.append(f"engine_step {step * 1e6:.0f}us")
        lines.append(
            f"{record.run_id:<28} {record.kind:<6} "
            f"{record.label[:22]:<22} {record.git_rev[:9]:<9} "
            f"{wall:>8}  {', '.join(notes)}")
    return "\n".join(lines)


def render_record(record: RunRecord) -> str:
    lines = [
        f"run {record.run_id} ({record.kind})",
        f"  label      {record.label}",
        f"  created    {record.created}   rev {record.git_rev or '-'}"
        f"   epoch {record.code_epoch or '-'}",
        f"  digest     {record.fingerprint_digest}",
        f"  source     {record.source or '-'}",
    ]
    if record.fingerprint:
        lines.append("  fingerprint:")
        for key in sorted(record.fingerprint):
            lines.append(f"    {key:<14} {record.fingerprint[key]}")
    if record.wall_s is not None:
        lines.append(f"  wall       {record.wall_s:.3f}s")
    rate = record.cache_hit_rate()
    if rate is not None:
        lines.append(f"  cache      hit-rate {rate:.1%} "
                     f"({record.cache.get('hits', 0)} hits / "
                     f"{record.cache.get('misses', 0)} misses)")
    if record.progress:
        p = record.progress
        lines.append(
            f"  progress   {p.get('done', 0)}/{p.get('units', 0)} units"
            f" (computed={p.get('computed', 0)}"
            f" cached={p.get('cached', 0)}"
            f" resumed={p.get('resumed', 0)}"
            f" quarantined={p.get('quarantined', 0)})")
    if record.mean_speed:
        rendered = "  ".join(f"{name}={value:.4f}" for name, value
                             in sorted(record.mean_speed.items()))
        lines.append(f"  mean dispatch speed: {rendered}")
    if record.profile:
        budget = record.profile.get("budget", {})
        top = [f"{name}={sec:.2f}s" for name, sec
               in sorted(budget.items(), key=lambda kv: -kv[1])[:3]
               if sec]
        lines.append(
            f"  profile    attributed "
            f"{record.profile.get('wall_s') or 0.0:.3f}s"
            + (f"  ({'  '.join(top)})" if top else ""))
    if record.counters:
        lines.append("  counters:")
        for name in sorted(record.counters):
            lines.append(f"    {name:<32} {record.counters[name]}")
    if record.timings:
        lines.append("  timings:")
        for name in sorted(record.timings):
            lines.append(f"    {name:<32} {record.timings[name]:.6f}s")
    return "\n".join(lines)


def render_compare(diff: Mapping) -> str:
    lines = [f"compare {diff['a']} (a) -> {diff['b']} (b)"]
    if diff["same_fingerprint"]:
        lines.append("  fingerprint: identical")
    elif diff["fingerprint_drift"]:
        lines.append("  FINGERPRINT DRIFT: "
                     + ", ".join(diff["fingerprint_drift"]))
    else:
        lines.append("  fingerprint: digests differ")

    def show(name: str, entry: Mapping | None,
             fmt: str = "{:.3f}") -> None:
        if entry is None:
            return
        ratio = entry.get("ratio")
        lines.append(
            f"  {name:<18} a={fmt.format(entry['a'])} "
            f"b={fmt.format(entry['b'])} "
            f"delta={fmt.format(entry['delta'])}"
            + (f" ({ratio:.2f}x)" if ratio is not None else ""))

    show("wall_s", diff["wall_s"])
    show("cache_hit_rate", diff["cache_hit_rate"])
    for name, entry in diff["progress"].items():
        if entry["a"] != entry["b"]:
            lines.append(f"  progress.{name:<10} a={entry['a']} "
                         f"b={entry['b']}")
    for name, entry in diff["counters"].items():
        lines.append(f"  {name:<28} a={entry['a']} b={entry['b']} "
                     f"delta={entry['delta']:+d}")
    for name, entry in diff["mean_speed"].items():
        show(f"speed.{name}", entry, "{:.4f}")
    for name, entry in diff["timings"].items():
        show(name, entry, "{:.6f}")
    for name, entry in diff.get("profile", {}).items():
        show(f"profile.{name}", entry)
    if len(lines) == 2:
        lines.append("  no differences in the compared summaries")
    return "\n".join(lines)


# -- the configured default registry -----------------------------------

_DEFAULT_DIR: Path | None = None


def set_registry_dir(directory: str | Path | None) -> None:
    """Set the process-wide registry (``repro run --registry-dir``)."""
    global _DEFAULT_DIR
    _DEFAULT_DIR = Path(directory) if directory is not None else None


def default_registry_dir() -> Path | None:
    """The configured registry dir: CLI flag, else REPRO_REGISTRY_DIR."""
    if _DEFAULT_DIR is not None:
        return _DEFAULT_DIR
    env = os.environ.get("REPRO_REGISTRY_DIR")
    return Path(env) if env else None


def ingest_written_manifest(manifest: RunManifest,
                            path: Path) -> None:
    """Auto-ingest hook called by :meth:`RunManifest.write`.

    A no-op unless a registry is configured; never raises (the caller
    already swallows, but a registry problem should not even log) —
    writing the manifest is the contract, the registry is a bonus.
    """
    directory = default_registry_dir()
    if directory is None:
        return
    try:
        RunRegistry(directory).add(record_from_manifest(manifest, path))
    except Exception:
        pass
