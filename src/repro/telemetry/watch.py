"""`repro watch`: render a live progress stream for humans.

The write side (:mod:`repro.telemetry.progress`) narrates a sweep into
``progress.jsonl``; this module is the attachable read side — a
separate process pointing `repro watch <dir>` at the stream directory
gets a refreshing status view (overall and per-cell progress bars,
live throughput, an ETA, recent failures and quarantines, supervision
activity, and a loud stall banner when heartbeats go silent or the
writer pid dies), without touching the sweep process in any way.

Everything here is a pure function of a
:class:`~repro.telemetry.progress.ProgressSnapshot`, so the same
rendering serves `repro watch`, `repro stats --follow`, and the tests;
the ``--json`` one-shot mode skips rendering entirely and prints
:meth:`ProgressSnapshot.to_payload` — the exact payload the future
``repro serve`` daemon returns from its poll endpoint.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, TextIO

from repro.errors import ExperimentError
from repro.telemetry.progress import (
    ProgressSnapshot,
    read_progress,
)

#: Width of the overall progress bar; per-cell bars are narrower.
_BAR_WIDTH = 40
_CELL_BAR_WIDTH = 24

#: At most this many per-cell rows are rendered (widest sweeps first
#: collapse to the cells still in flight).
_MAX_CELL_ROWS = 12


def _bar(done: int, total: int, width: int) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(1.0, done / total)))
    return "#" * filled + "." * (width - filled)


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_snapshot(snap: ProgressSnapshot) -> str:
    """One full status view of *snap*, as plain ASCII lines."""
    lines: list[str] = []
    label = snap.workload_id or "sweep"
    lines.append(
        f"{label}  [{snap.status}]  pid {snap.writer_pid}  "
        f"workers {snap.workers}")
    pct = (100.0 * snap.done / snap.units) if snap.units else 0.0
    lines.append(
        f"  [{_bar(snap.done, snap.units, _BAR_WIDTH)}] "
        f"{snap.done}/{snap.units} units ({pct:.0f}%)")
    parts = [f"computed={snap.computed}", f"cached={snap.cached}"]
    if snap.resumed:
        parts.append(f"resumed={snap.resumed}")
    if snap.quarantined:
        parts.append(f"quarantined={snap.quarantined}")
    if snap.retries:
        parts.append(f"retries={snap.retries}")
    if snap.corrupt_lines:
        parts.append(f"corrupt-lines={snap.corrupt_lines}")
    hits = snap.cached + snap.resumed
    if snap.done:
        parts.append(f"hit-rate={hits / snap.done:.0%}")
    lines.append("  " + "  ".join(parts))
    rate = (f"{snap.throughput:.1f} units/s"
            if snap.throughput else "n/a")
    if snap.finished:
        wall = (snap.updated - snap.started
                if snap.updated is not None and snap.started is not None
                else None)
        lines.append(f"  throughput {rate}  "
                     f"took {_fmt_duration(wall)}")
    else:
        lines.append(f"  throughput {rate}  "
                     f"eta {_fmt_duration(snap.eta_s)}  "
                     f"idle {_fmt_duration(snap.idle_s)}")
    if snap.heartbeat_pids:
        dead = sorted(set(snap.heartbeat_pids)
                      - set(snap.heartbeat_alive))
        beat = (f"  heartbeat: {len(snap.heartbeat_alive)}/"
                f"{len(snap.heartbeat_pids)} pids alive")
        if dead and not snap.finished:
            beat += f" (dead: {', '.join(map(str, dead))})"
        lines.append(beat)
    if snap.stalled:
        lines.append(
            f"  ** STALLED: no events for {_fmt_duration(snap.idle_s)}"
            + (" and the writer process is gone"
               if snap.writer_pid is not None
               and snap.status == "stalled" else "") + " **")
    if snap.error:
        lines.append(f"  error: {snap.error}")

    cells = snap.per_cell
    if cells:
        lines.append(f"  cells ({snap.cells_done}/{snap.cells} done):")
        rows = cells
        if len(rows) > _MAX_CELL_ROWS:
            # Prefer the cells still in flight; pad with the tail.
            in_flight = [c for c in rows if c.done < c.total]
            rows = (in_flight + [c for c in rows
                                 if c.done >= c.total])[:_MAX_CELL_ROWS]
            rows.sort(key=lambda c: c.index)
        for cell in rows:
            x = f"x={cell.x:g}" if cell.x is not None else f"#{cell.index}"
            flags = ""
            if cell.resumed:
                flags = "  (resumed)"
            elif cell.quarantined:
                flags = f"  ({cell.quarantined} quarantined)"
            lines.append(
                f"    {x:<10} "
                f"[{_bar(cell.done, cell.total, _CELL_BAR_WIDTH)}] "
                f"{cell.done}/{cell.total}{flags}")
        if len(cells) > len(rows):
            lines.append(f"    ... {len(cells) - len(rows)} more")

    if snap.resilience:
        rendered = "  ".join(f"{k}={v}" for k, v
                             in sorted(snap.resilience.items()))
        lines.append(f"  supervision: {rendered}")
    if snap.recent_failures:
        lines.append("  recent failures:")
        for failure in snap.recent_failures:
            what = failure.get("error_type") or failure.get("error") \
                or failure.get("kind")
            where = []
            if failure.get("x") is not None:
                where.append(f"x={failure['x']:g}")
            if failure.get("seed") is not None:
                where.append(f"seed={failure['seed']}")
            lines.append(f"    {failure.get('kind')}: {what}"
                         + (f" ({', '.join(where)})" if where else ""))
    return "\n".join(lines)


def watch(target: str | Path, *, interval: float = 1.0,
          once: bool = False, stall_after: float | None = None,
          out: TextIO | None = None,
          clock: Callable[[], float] = time.monotonic,
          sleep: Callable[[float], None] = time.sleep,
          max_wait: float | None = None) -> int:
    """Follow *target*'s stream until the sweep finishes (or stalls).

    Re-reads and re-renders every *interval* seconds.  On a terminal
    the view refreshes in place (ANSI home+clear); on a pipe each
    refresh is a separate block.  Returns a process exit code: 0 for a
    completed sweep, 1 when the final state is failed or stalled, 2
    when there is no readable stream.  *once* renders a single frame
    and returns.  *max_wait* (mostly for tests) bounds the total wait.
    """
    out = out if out is not None else sys.stdout
    is_tty = getattr(out, "isatty", lambda: False)()
    deadline = None if max_wait is None else clock() + max_wait
    while True:
        try:
            snap = read_progress(target, stall_after=stall_after)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        frame = render_snapshot(snap)
        if is_tty and not once:
            out.write("\x1b[H\x1b[2J" + frame + "\n")
        else:
            out.write(frame + "\n")
        out.flush()
        if once or snap.finished:
            return 0 if snap.status == "completed" or once else 1
        if snap.stalled:
            return 1
        if deadline is not None and clock() >= deadline:
            return 1
        sleep(interval)
        if not is_tty:
            out.write("\n")
