"""Live sweep progress stream: `progress.jsonl` writer and reader.

Every observability surface before this one — run manifests, Chrome
traces, the energy ledger — is written *after* a run completes; a
researcher staring at a 20-minute sweep is blind until it ends.  This
module closes that gap with a schema-versioned, append-only
``progress.jsonl`` the sweep runner and the parallel executor write
*while* they run, plus the reader/snapshot side that ``repro watch``
(and the future ``repro serve`` poll endpoint) renders.

Writer (:class:`ProgressStream`)
    One stream per ``sweep()`` call, living next to the checkpoint or
    telemetry directory.  Events go through the existing fork-safe
    pid-pinned :class:`~repro.telemetry.core.JsonlSink`, so forked
    workers inherit the stream object but their writes silently no-op:
    only the parent narrates, which is what makes the serial and
    parallel streams *equivalent* — the same ``unit.done``/``cell.done``
    event sets and the same terminal snapshot, regardless of worker
    count (pinned by ``tests/test_progress.py``).  A daemon heartbeat
    thread emits pid-liveness beats every ``heartbeat_interval``
    seconds, so a watcher can tell "long unit still computing" from
    "writer process is gone" even while the parent blocks in a pool
    wait.  Threads do not survive ``fork``, so workers never heartbeat.

Event kinds (:data:`EVENT_KINDS`, schema :data:`PROGRESS_SCHEMA`)
    ``sweep.start`` (totals, workers, schema), ``unit.start`` (serial
    compute only — parallel marks dispatch at chunk granularity with
    ``chunk.dispatch``), ``unit.done`` (status ``computed`` / ``cached``
    / ``quarantined``), ``unit.retry``, ``cell.done``, ``cell.resumed``
    (checkpoint-resumed cells), ``chunk.dispatch``, ``heartbeat``,
    ``resilience.*`` supervision facts (worker crash, watchdog kill,
    escalation step, pool rebuild, quarantine, drain), and a terminal
    ``sweep.done`` carrying the summary the run manifest's ``progress``
    block repeats verbatim.

Reader (:func:`read_progress` → :class:`ProgressSnapshot`)
    Re-reads the whole file (streams are small: one line per unit, not
    per engine step), skips truncated or corrupt lines — counted in
    the snapshot and in the ``progress.corrupt`` telemetry counter —
    and derives live throughput, an ETA, per-cell progress, cache-hit
    counts, recent failures and a stall verdict (no events beyond the
    stall budget, or the writer pid is dead while the stream is
    unfinished).  :meth:`ProgressSnapshot.to_payload` is the exact
    JSON ``repro watch --json`` prints.

Like the telemetry core, this module stays leaf-level: it imports only
:mod:`repro.telemetry.core` and :mod:`repro.errors`, so the runner,
the parallel executor and the resilience layer can all emit into it
without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ExperimentError
from repro.telemetry.core import TELEMETRY, JsonlSink

#: Bumped when the event layout changes; readers refuse newer streams.
PROGRESS_SCHEMA = 1

#: The stream's on-disk name, fixed so ``repro watch <dir>`` needs no
#: further coordinates.  A new ``sweep()`` truncates the previous run's
#: stream: watchers re-read the whole file each tick, so they follow
#: the replacement seamlessly.
PROGRESS_FILENAME = "progress.jsonl"

#: Default seconds between heartbeat events.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default reader-side stall budget (seconds without any event).
DEFAULT_STALL_AFTER = 10.0

#: Every kind a schema-1 stream may contain; the CI gate
#: (``scripts/progress_gate.py``) fails on anything else.
EVENT_KINDS = frozenset({
    "sweep.start", "sweep.done",
    "unit.start", "unit.done", "unit.retry",
    "cell.done", "cell.resumed",
    "chunk.dispatch", "heartbeat",
    "resilience.worker_crash", "resilience.watchdog_kill",
    "resilience.escalation", "resilience.pool_rebuild",
    "resilience.quarantine", "resilience.drain",
})

#: ``unit.done`` statuses (``resumed`` units are declared at cell
#: granularity by ``cell.resumed`` instead — their per-unit work
#: happened in an earlier run).
UNIT_STATUSES = ("computed", "cached", "quarantined")


def _alive(pid: int) -> bool:
    """Whether *pid* is a live process we may signal-probe."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


class ProgressStream:
    """The write side: one live event stream for one sweep.

    All mutation funnels through :meth:`emit`, which checks the
    creating pid *before* touching the lock — a forked worker
    inheriting the stream can never write a line, bump a counter, or
    deadlock on a lock its parent held at fork time.
    """

    def __init__(self, directory: str | Path, *,
                 cells: int, seeds: int, workers: int = 1,
                 workload_id: str | None = None,
                 heartbeat_interval: float | None =
                 DEFAULT_HEARTBEAT_INTERVAL) -> None:
        self.directory = Path(directory)
        self.path = self.directory / PROGRESS_FILENAME
        self.directory.mkdir(parents=True, exist_ok=True)
        # Fresh stream per sweep: the old file narrates a finished run.
        self.path.unlink(missing_ok=True)
        self._sink = JsonlSink(self.path)
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._closed = False
        self.cells = int(cells)
        self.seeds = int(seeds)
        self.units = self.cells * self.seeds
        self.workers = int(workers)
        self.workload_id = workload_id
        self.heartbeat_interval = heartbeat_interval
        #: Parent-side tallies; the single source of the terminal
        #: summary the manifest's ``progress`` block repeats.
        self.computed = 0
        self.cached = 0
        self.quarantined = 0
        self.resumed = 0
        self.cells_done = 0
        #: Replaceable hook: which pids a heartbeat should liveness-
        #: probe.  The parallel executor points this at the live pool.
        self.pid_provider: Callable[[], list[int]] | None = None
        self.emit("sweep.start", schema=PROGRESS_SCHEMA,
                  cells=self.cells, seeds=self.seeds, units=self.units,
                  workers=self.workers, workload_id=workload_id,
                  pid=self._pid,
                  heartbeat_interval=heartbeat_interval)
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        if heartbeat_interval is not None and heartbeat_interval > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name="repro-progress-heartbeat")
            self._hb_thread.start()

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event; a no-op in workers and after close."""
        if os.getpid() != self._pid:
            return
        with self._lock:
            if self._closed:
                return
            self._sink.write(kind, fields)

    def unit_done(self, *, index: int, x: float, seed_pos: int,
                  seed: int, status: str,
                  error_type: str | None = None,
                  classification: str | None = None) -> None:
        """One (cell, seed) unit settled — the stream's workhorse."""
        if os.getpid() != self._pid:
            return
        if status == "computed":
            self.computed += 1
        elif status == "cached":
            self.cached += 1
        elif status == "quarantined":
            self.quarantined += 1
        fields: dict[str, Any] = {
            "index": index, "x": float(x), "seed_pos": seed_pos,
            "seed": seed, "status": status}
        if error_type is not None:
            fields["error_type"] = error_type
            fields["classification"] = classification
        self.emit("unit.done", **fields)

    def cell_done(self, *, index: int, x: float,
                  quarantined: int = 0) -> None:
        if os.getpid() != self._pid:
            return
        self.cells_done += 1
        self.emit("cell.done", index=index, x=float(x),
                  seeds=self.seeds, quarantined=quarantined)

    def cell_resumed(self, *, index: int, x: float) -> None:
        """A cell replayed from its checkpoint: all seeds pre-done."""
        if os.getpid() != self._pid:
            return
        self.resumed += self.seeds
        self.cells_done += 1
        self.emit("cell.resumed", index=index, x=float(x),
                  seeds=self.seeds)

    def heartbeat(self) -> None:
        """One liveness beat: progress counts plus pid liveness."""
        provider = self.pid_provider
        try:
            pids = list(provider()) if provider is not None \
                else [self._pid]
        except Exception:  # pragma: no cover - racing pool teardown
            pids = [self._pid]
        self.emit("heartbeat", done=self.done, computed=self.computed,
                  cached=self.cached, resumed=self.resumed,
                  quarantined=self.quarantined,
                  cells_done=self.cells_done, pids=pids,
                  alive=[pid for pid in pids if _alive(pid)])

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_interval):
            self.heartbeat()

    # -- summary and shutdown ------------------------------------------

    @property
    def done(self) -> int:
        return (self.computed + self.cached + self.quarantined
                + self.resumed)

    def summary(self) -> dict:
        """The terminal snapshot; repeated verbatim by the manifest's
        ``progress`` block and by the ``sweep.done`` event."""
        return {
            "units": self.units,
            "done": self.done,
            "computed": self.computed,
            "cached": self.cached,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "cells": self.cells,
            "cells_done": self.cells_done,
            "stream": str(self.path),
        }

    def close(self, *, status: str = "completed",
              error: BaseException | str | None = None) -> None:
        """Emit the terminal ``sweep.done`` and stop the heartbeat.

        Idempotent: only the first close narrates; a later close (the
        runner's failure path racing its success path) is a no-op.
        """
        if os.getpid() != self._pid or self._closed:
            return
        self._hb_stop.set()
        fields = dict(self.summary())
        fields.pop("stream")
        fields["status"] = status
        if error is not None:
            fields["error"] = str(error)
        self.emit("sweep.done", **fields)
        with self._lock:
            self._closed = True
            self._sink.close()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=1.0)


# -- the process-current stream ----------------------------------------

_CURRENT: ProgressStream | None = None


def current() -> ProgressStream | None:
    """The stream of the sweep currently executing, if any."""
    return _CURRENT


def attach(stream: ProgressStream | None) -> ProgressStream | None:
    """Install *stream* as current; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = stream
    return previous


def emit(kind: str, **fields: Any) -> None:
    """Emit into the current stream; safe to call from anywhere.

    A no-op when no stream is attached — and, via the pid pinning, in
    any forked worker that inherited one.
    """
    stream = _CURRENT
    if stream is not None:
        stream.emit(kind, **fields)


def open_stream(directory: str | Path, *, cells: int, seeds: int,
                workers: int = 1, workload_id: str | None = None,
                heartbeat_interval: float | None =
                DEFAULT_HEARTBEAT_INTERVAL) -> ProgressStream | None:
    """Open a stream, degrading to ``None`` on unusable directories.

    Progress narration is an observability aid — a read-only disk or a
    permission error must never take the sweep itself down.
    """
    try:
        return ProgressStream(directory, cells=cells, seeds=seeds,
                              workers=workers, workload_id=workload_id,
                              heartbeat_interval=heartbeat_interval)
    except OSError as exc:
        TELEMETRY.inc("progress.degraded")
        import sys
        print(f"warning: progress stream dir {directory} unusable "
              f"({exc}); sweep runs unnarrated", file=sys.stderr)
        return None


# -- the read side -----------------------------------------------------


@dataclass
class CellProgress:
    """Per-cell completion state derived from the stream."""

    index: int
    x: float | None = None
    total: int = 0
    done: int = 0
    quarantined: int = 0
    resumed: bool = False

    def to_payload(self) -> dict:
        return {"index": self.index, "x": self.x, "total": self.total,
                "done": self.done, "quarantined": self.quarantined,
                "resumed": self.resumed}


@dataclass
class ProgressSnapshot:
    """Everything a watcher (or the serve daemon) needs, one read.

    Derived purely from the stream file — no live process contact
    beyond the pid liveness probes — so it works identically attached
    to a running sweep, a finished one, or an abandoned one.
    """

    path: str
    schema: int = PROGRESS_SCHEMA
    status: str = "running"          # running | completed | failed |
                                     # interrupted | stalled (derived)
    finished: bool = False
    workload_id: str | None = None
    workers: int = 1
    writer_pid: int | None = None
    started: float | None = None     # ts of sweep.start
    updated: float | None = None     # ts of the newest event
    cells: int = 0
    seeds: int = 0
    units: int = 0
    computed: int = 0
    cached: int = 0
    resumed: int = 0
    quarantined: int = 0
    cells_done: int = 0
    retries: int = 0
    corrupt_lines: int = 0
    error: str | None = None
    throughput: float | None = None  # units/s, recent window
    eta_s: float | None = None
    stalled: bool = False
    idle_s: float | None = None      # seconds since the last event
    heartbeat_pids: list[int] = field(default_factory=list)
    heartbeat_alive: list[int] = field(default_factory=list)
    recent_failures: list[dict] = field(default_factory=list)
    resilience: dict[str, int] = field(default_factory=dict)
    per_cell: list[CellProgress] = field(default_factory=list)

    @property
    def done(self) -> int:
        return (self.computed + self.cached + self.resumed
                + self.quarantined)

    def summary(self) -> dict:
        """The stream-writer's terminal-summary projection, for the
        manifest-vs-snapshot equality the CI gate enforces."""
        return {
            "units": self.units,
            "done": self.done,
            "computed": self.computed,
            "cached": self.cached,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "cells": self.cells,
            "cells_done": self.cells_done,
            "stream": self.path,
        }

    def to_payload(self) -> dict:
        """The ``repro watch --json`` payload (and the future serve
        daemon's poll-endpoint body)."""
        return {
            "kind": "progress-snapshot",
            "schema": self.schema,
            "path": self.path,
            "status": self.status,
            "finished": self.finished,
            "stalled": self.stalled,
            "workload_id": self.workload_id,
            "workers": self.workers,
            "writer_pid": self.writer_pid,
            "started": self.started,
            "updated": self.updated,
            "idle_s": self.idle_s,
            "cells": self.cells,
            "seeds": self.seeds,
            "units": self.units,
            "done": self.done,
            "computed": self.computed,
            "cached": self.cached,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "cells_done": self.cells_done,
            "retries": self.retries,
            "corrupt_lines": self.corrupt_lines,
            "error": self.error,
            "throughput_units_per_s": self.throughput,
            "eta_s": self.eta_s,
            "heartbeat_pids": self.heartbeat_pids,
            "heartbeat_alive": self.heartbeat_alive,
            "recent_failures": self.recent_failures,
            "resilience": self.resilience,
            "per_cell": [cell.to_payload() for cell in self.per_cell],
        }


def progress_path(target: str | Path) -> Path:
    """Resolve a file-or-directory *target* to its stream path."""
    target = Path(target)
    if target.is_dir():
        return target / PROGRESS_FILENAME
    return target


#: How many trailing unit completions the throughput window uses.
_RATE_WINDOW = 25

#: How many failure-ish events the snapshot keeps for display.
_RECENT_FAILURES = 5


def read_progress(target: str | Path, *, now: float | None = None,
                  stall_after: float | None = None) -> ProgressSnapshot:
    """Parse a ``progress.jsonl`` into one :class:`ProgressSnapshot`.

    Corrupt or truncated lines (a watcher can race the writer
    mid-line; a crash can tear the tail) are *skipped and counted* —
    in ``corrupt_lines`` and in the ``progress.corrupt`` telemetry
    counter — never fatal.  A stream whose first valid event is
    missing, or whose schema is newer than this build, raises
    :class:`~repro.errors.ExperimentError` instead of narrating
    garbage.
    """
    path = progress_path(target)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ExperimentError(
            f"no progress stream at {path}: {exc}") from exc

    snap = ProgressSnapshot(path=str(path))
    hb_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL
    done_ts: list[float] = []
    failures: list[dict] = []
    cells: dict[int, CellProgress] = {}
    started = False
    corrupt = 0

    def cell(index: int) -> CellProgress:
        entry = cells.get(index)
        if entry is None:
            entry = cells[index] = CellProgress(index=index,
                                                total=snap.seeds)
        return entry

    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            event = json.loads(line)
            kind = event["kind"]
            ts = float(event["ts"])
        except (ValueError, KeyError, TypeError):
            corrupt += 1
            continue
        if not isinstance(kind, str) or kind not in EVENT_KINDS:
            corrupt += 1
            continue
        if not started:
            if kind != "sweep.start":
                corrupt += 1
                continue
            schema = int(event.get("schema", -1))
            if schema > PROGRESS_SCHEMA:
                raise ExperimentError(
                    f"progress stream {path} has schema {schema}, "
                    f"newer than this build understands "
                    f"({PROGRESS_SCHEMA})")
            snap.schema = schema
            snap.started = ts
            snap.cells = int(event.get("cells", 0))
            snap.seeds = int(event.get("seeds", 0))
            snap.units = int(event.get("units", 0))
            snap.workers = int(event.get("workers", 1))
            snap.workload_id = event.get("workload_id")
            snap.writer_pid = event.get("pid")
            hb_interval = event.get("heartbeat_interval")
            started = True
            snap.updated = ts
            continue
        snap.updated = ts
        if kind == "unit.done":
            status = event.get("status")
            if status == "computed":
                snap.computed += 1
            elif status == "cached":
                snap.cached += 1
            elif status == "quarantined":
                snap.quarantined += 1
                failures.append({"ts": ts, "kind": kind,
                                 "index": event.get("index"),
                                 "x": event.get("x"),
                                 "seed": event.get("seed"),
                                 "error_type": event.get("error_type"),
                                 "classification":
                                     event.get("classification")})
            entry = cell(int(event.get("index", -1)))
            entry.x = event.get("x", entry.x)
            entry.done += 1
            if status == "quarantined":
                entry.quarantined += 1
            done_ts.append(ts)
        elif kind == "unit.retry":
            snap.retries += 1
            failures.append({"ts": ts, "kind": kind,
                             "x": event.get("x"),
                             "seed": event.get("seed"),
                             "attempt": event.get("attempt")})
        elif kind == "cell.done":
            snap.cells_done += 1
            entry = cell(int(event.get("index", -1)))
            entry.x = event.get("x", entry.x)
        elif kind == "cell.resumed":
            seeds = int(event.get("seeds", snap.seeds))
            snap.resumed += seeds
            snap.cells_done += 1
            entry = cell(int(event.get("index", -1)))
            entry.x = event.get("x", entry.x)
            entry.done += seeds
            entry.resumed = True
            done_ts.append(ts)
        elif kind == "heartbeat":
            snap.heartbeat_pids = list(event.get("pids", []))
            snap.heartbeat_alive = list(event.get("alive", []))
        elif kind == "sweep.done":
            snap.finished = True
            snap.status = str(event.get("status", "completed"))
            snap.error = event.get("error")
        elif kind.startswith("resilience."):
            name = kind.split(".", 1)[1]
            snap.resilience[name] = snap.resilience.get(name, 0) + 1
            if name in ("worker_crash", "watchdog_kill", "quarantine"):
                failures.append({"ts": ts, "kind": kind,
                                 **{k: v for k, v in event.items()
                                    if k not in ("seq", "ts", "kind")}})

    if not started:
        raise ExperimentError(
            f"progress stream {path} has no readable sweep.start event "
            f"({corrupt} corrupt line(s))")
    snap.corrupt_lines = corrupt
    if corrupt:
        TELEMETRY.inc("progress.corrupt", corrupt)
    snap.recent_failures = failures[-_RECENT_FAILURES:]
    for index in sorted(cells):
        entry = cells[index]
        entry.total = snap.seeds
        snap.per_cell.append(entry)

    # -- derived: throughput, ETA, stall -------------------------------
    window = done_ts[-_RATE_WINDOW:]
    if len(window) >= 2 and window[-1] > window[0]:
        snap.throughput = (len(window) - 1) / (window[-1] - window[0])
    elif (snap.done and snap.started is not None
            and snap.updated is not None
            and snap.updated > snap.started):
        snap.throughput = snap.done / (snap.updated - snap.started)
    remaining = max(0, snap.units - snap.done)
    if snap.finished:
        snap.eta_s = 0.0
    elif snap.throughput:
        snap.eta_s = remaining / snap.throughput

    now = time.time() if now is None else now
    if snap.updated is not None:
        snap.idle_s = max(0.0, now - snap.updated)
    if not snap.finished:
        if stall_after is None:
            stall_after = DEFAULT_STALL_AFTER
            if hb_interval:
                stall_after = max(stall_after, 5.0 * hb_interval)
        dead_writer = (snap.writer_pid is not None
                       and not _alive(int(snap.writer_pid)))
        if dead_writer or (snap.idle_s is not None
                           and snap.idle_s > stall_after):
            snap.stalled = True
            snap.status = "stalled"
    return snap


def validate_stream(target: str | Path) -> list[str]:
    """Structural validation for the CI gate: schema-known kinds,
    strictly increasing ``seq``, non-decreasing ``ts``, a single
    ``sweep.start`` first and at most one terminal ``sweep.done``.
    Returns a list of human-readable problems (empty = valid)."""
    path = progress_path(target)
    problems: list[str] = []
    last_seq = 0
    last_ts: float | None = None
    saw_start = False
    saw_done = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            problems.append(f"line {lineno}: not valid JSON")
            continue
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        seq = event.get("seq")
        ts = event.get("ts")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"line {lineno}: seq {seq!r} not "
                            f"strictly increasing (last {last_seq})")
        else:
            last_seq = seq
        if not isinstance(ts, (int, float)) or (
                last_ts is not None and ts < last_ts):
            problems.append(f"line {lineno}: ts {ts!r} decreased "
                            f"(last {last_ts!r})")
        else:
            last_ts = float(ts)
        if kind == "sweep.start":
            if saw_start:
                problems.append(f"line {lineno}: duplicate sweep.start")
            saw_start = True
        elif not saw_start:
            problems.append(f"line {lineno}: {kind} before sweep.start")
        if kind == "sweep.done":
            if saw_done:
                problems.append(f"line {lineno}: duplicate sweep.done")
            saw_done = True
        elif saw_done:
            problems.append(f"line {lineno}: {kind} after sweep.done")
        if kind == "unit.done" and event.get("status") \
                not in UNIT_STATUSES:
            problems.append(f"line {lineno}: unit.done status "
                            f"{event.get('status')!r} unknown")
    if not saw_start:
        problems.append("no sweep.start event")
    return problems
