"""Per-sweep run manifests: how a result was actually produced.

A :class:`RunManifest` is one JSON file written next to a sweep's
checkpoints (or into ``repro run --telemetry-dir``) recording the
sweep's **spec fingerprint** (the same parameter dict the checkpointer
embeds, plus the workload id and worker count), per-phase wall/CPU
times, the telemetry counters and histograms the sweep produced
(cache hits/misses/corrupt entries, retries, checkpoint writes, engine
totals), per-worker chunk accounting and the derived worker
utilization, a fault-plan summary, and the code epoch / git revision —
so every figure in ``results/`` traces back to exactly how it was
computed.

Loading is strict where it matters: a manifest with an unknown schema,
or one whose fingerprint does not match the sweep you claim it
describes (:meth:`RunManifest.check_fingerprint`), raises
:class:`~repro.errors.ExperimentError` instead of silently narrating
the wrong run.  ``repro stats <manifest>`` renders the file for
humans (:func:`render_manifest`).
"""

from __future__ import annotations

import datetime as _dt
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ExperimentError

#: Bumped when the manifest layout changes; loaders refuse newer files.
#: 2: added the ``audit`` block (spot-audit coverage and violations).
#: 3: added the ``resilience`` block (configured timeout/failure
#:    policy, pool rebuilds, watchdog kills, unit timeouts,
#:    quarantined units, self-healed cache shards, degraded writes,
#:    drain requests).
#: 4: added the ``progress`` block — the live progress stream's
#:    terminal summary (units/computed/cached/resumed/quarantined/
#:    cells, DESIGN.md §14), equal by construction to the stream's
#:    ``sweep.done`` event; completed manifests are also offered to
#:    the cross-run registry (:mod:`repro.telemetry.registry`).
#: 5: added the ``profile`` block — the phase profiler's time budget
#:    (compute/slack/policy/cache/ipc/idle/supervision attribution
#:    summing to attributed wall time, per-phase self/total times,
#:    sampling summary; DESIGN.md §15), present when the sweep ran
#:    with ``repro.profiling`` enabled, ``null`` otherwise.
MANIFEST_SCHEMA = 5


def git_revision(repo_dir: str | Path | None = None) -> str:
    """Short git revision of *repo_dir* (or cwd); "unknown" off-tree."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True,
            check=True, timeout=5).stdout.strip()
    except Exception:
        return "unknown"


@dataclass
class RunManifest:
    """Everything needed to audit one sweep run."""

    label: str
    fingerprint: dict
    phases: dict[str, dict] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    workers: dict = field(default_factory=dict)
    faults: dict | None = None
    audit: dict | None = None
    resilience: dict | None = None
    progress: dict | None = None
    profile: dict | None = None
    code_epoch: str = ""
    git_rev: str = ""
    created: str = ""
    schema: int = MANIFEST_SCHEMA

    def __post_init__(self) -> None:
        if not self.created:
            self.created = _dt.datetime.now().isoformat(timespec="seconds")
        if not self.code_epoch:
            from repro import __version__
            self.code_epoch = __version__

    # -- derived -------------------------------------------------------

    def cache_hit_rate(self) -> float | None:
        hits = self.cache.get("hits", 0)
        misses = self.cache.get("misses", 0)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def worker_utilization(self) -> float | None:
        """Fraction of the pool's capacity spent running suites.

        ``sum(worker busy) / (pool size * compute-phase wall)`` — the
        denominator is parent wall clock, so a fully-cached sweep (no
        dispatch at all) reports ``None`` rather than 0/0.
        """
        stats = self.workers.get("per_worker", {})
        pool = self.workers.get("pool_workers", 0)
        wall = (self.phases.get("sweep.compute") or {}).get("wall_s", 0.0)
        if not stats or not pool or wall <= 0:
            return None
        busy = sum(w.get("busy_s", 0.0) for w in stats.values())
        return busy / (pool * wall)

    # -- (de)serialisation ---------------------------------------------

    def to_payload(self) -> dict:
        return {
            "kind": "run-manifest",
            "schema": self.schema,
            "label": self.label,
            "created": self.created,
            "code_epoch": self.code_epoch,
            "git_rev": self.git_rev,
            "fingerprint": self.fingerprint,
            "phases": self.phases,
            "counters": self.counters,
            "histograms": self.histograms,
            "cache": self.cache,
            "workers": self.workers,
            "faults": self.faults,
            "audit": self.audit,
            "resilience": self.resilience,
            "progress": self.progress,
            "profile": self.profile,
        }

    def write(self, path: str | Path) -> Path:
        """Atomic write (temp + rename), like every sweep artifact.

        A written manifest is also offered to the cross-run registry
        (``repro runs``) when one is configured — via ``repro run
        --registry-dir`` or ``REPRO_REGISTRY_DIR`` — so every
        completed sweep becomes queryable without a separate ingest
        step.  The hook is best-effort: registry trouble never fails
        the manifest write.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_payload(), indent=2,
                                  sort_keys=True) + "\n")
        tmp.replace(path)
        try:
            from repro.telemetry import registry as _registry
            _registry.ingest_written_manifest(self, path)
        except Exception:
            pass
        return path

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RunManifest":
        if payload.get("kind") != "run-manifest":
            raise ExperimentError(
                f"not a run manifest (kind={payload.get('kind')!r})")
        schema = int(payload.get("schema", -1))
        if schema > MANIFEST_SCHEMA:
            raise ExperimentError(
                f"manifest schema {schema} is newer than this build "
                f"understands ({MANIFEST_SCHEMA})")
        return cls(
            label=str(payload.get("label", "")),
            fingerprint=dict(payload.get("fingerprint", {})),
            phases=dict(payload.get("phases", {})),
            counters={k: int(v)
                      for k, v in payload.get("counters", {}).items()},
            histograms=dict(payload.get("histograms", {})),
            cache=dict(payload.get("cache", {})),
            workers=dict(payload.get("workers", {})),
            faults=payload.get("faults"),
            audit=payload.get("audit"),
            resilience=payload.get("resilience"),
            progress=payload.get("progress"),
            profile=payload.get("profile"),
            code_epoch=str(payload.get("code_epoch", "")),
            git_rev=str(payload.get("git_rev", "")),
            created=str(payload.get("created", "")),
            schema=schema,
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ExperimentError(f"cannot read manifest {path}: {exc}") \
                from exc
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"manifest {path} is not valid JSON: "
                                  f"{exc}") from exc
        return cls.from_payload(payload)

    def check_fingerprint(self, expected: Mapping) -> None:
        """Refuse to describe a sweep this manifest was not cut from."""
        mismatched = sorted(
            key for key in set(expected) | set(self.fingerprint)
            if self.fingerprint.get(key) != expected.get(key))
        if mismatched:
            raise ExperimentError(
                f"manifest fingerprint mismatch on "
                f"{', '.join(mismatched)}: manifest was produced by a "
                f"different sweep (have {self.fingerprint!r}, expected "
                f"{dict(expected)!r})")


def next_manifest_path(directory: str | Path, label: str) -> Path:
    """The next free ``manifest_<label>_<n>.json`` in *directory*."""
    directory = Path(directory)
    safe = "".join(c if c.isalnum() or c in "._-" else "-"
                   for c in label) or "sweep"
    n = 1
    while True:
        path = directory / f"manifest_{safe}_{n:03d}.json"
        if not path.exists():
            return path
        n += 1


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_manifest(manifest: RunManifest) -> str:
    """ASCII rendering for ``repro stats``."""
    lines = [
        f"run manifest: {manifest.label}",
        f"  created {manifest.created}  code-epoch {manifest.code_epoch}"
        f"  rev {manifest.git_rev or 'unknown'}",
        "  fingerprint:",
    ]
    for key in sorted(manifest.fingerprint):
        lines.append(f"    {key:<14} {_fmt(manifest.fingerprint[key])}")
    if manifest.phases:
        lines.append("  phases:")
        for name in sorted(manifest.phases):
            phase = manifest.phases[name]
            lines.append(
                f"    {name:<16} wall {phase.get('wall_s', 0.0):8.3f}s  "
                f"cpu {phase.get('cpu_s', 0.0):8.3f}s  "
                f"x{phase.get('count', 0)}")
    if manifest.cache:
        rate = manifest.cache_hit_rate()
        lines.append(
            f"  cache: hits={manifest.cache.get('hits', 0)} "
            f"misses={manifest.cache.get('misses', 0)} "
            f"writes={manifest.cache.get('writes', 0)} "
            f"corrupt={manifest.cache.get('corrupt', 0)}"
            + (f"  hit-rate {rate:.1%}" if rate is not None else ""))
    per_worker = manifest.workers.get("per_worker", {})
    if per_worker:
        util = manifest.worker_utilization()
        lines.append(
            f"  workers: pool={manifest.workers.get('pool_workers')} "
            f"used={len(per_worker)}"
            + (f"  utilization {util:.1%}" if util is not None else ""))
        for pid in sorted(per_worker, key=int):
            w = per_worker[pid]
            lines.append(f"    pid {pid:<8} chunks={w.get('chunks', 0):<4} "
                         f"units={w.get('units', 0):<5} "
                         f"busy={w.get('busy_s', 0.0):.3f}s")
    if manifest.faults:
        rendered = ", ".join(f"{k}={_fmt(v)}"
                             for k, v in sorted(manifest.faults.items()))
        lines.append(f"  faults: {rendered}")
    if manifest.audit:
        rendered = ", ".join(f"{k}={_fmt(v)}"
                             for k, v in sorted(manifest.audit.items()))
        lines.append(f"  audit: {rendered}")
    if manifest.resilience:
        lines.append("  resilience:")
        for key in sorted(manifest.resilience):
            value = manifest.resilience[key]
            lines.append(f"    {key:<18} "
                         f"{_fmt(value) if value is not None else '-'}")
    if manifest.progress:
        p = manifest.progress
        lines.append(
            f"  progress: {p.get('done', 0)}/{p.get('units', 0)} units "
            f"(computed={p.get('computed', 0)} "
            f"cached={p.get('cached', 0)} "
            f"resumed={p.get('resumed', 0)} "
            f"quarantined={p.get('quarantined', 0)})  "
            f"cells {p.get('cells_done', 0)}/{p.get('cells', 0)}")
        if p.get("stream"):
            lines.append(f"    stream {p['stream']}")
    if manifest.profile:
        prof = manifest.profile
        budget = prof.get("budget", {})
        wall = prof.get("wall_s", 0.0) or 0.0
        lines.append(f"  profile: attributed {wall:.3f}s")
        for category, sec in sorted(budget.items(),
                                    key=lambda kv: -kv[1]):
            if sec <= 0.0:
                continue
            share = sec / wall if wall > 0 else 0.0
            lines.append(f"    {category:<14} {sec:8.3f}s  {share:6.1%}")
        sampling = prof.get("sampling")
        if sampling:
            lines.append(
                f"    sampling       {sampling.get('samples', 0)} samples"
                f" / {sampling.get('stacks', 0)} stacks")
    if manifest.counters:
        lines.append("  counters:")
        for name in sorted(manifest.counters):
            lines.append(f"    {name:<32} {manifest.counters[name]}")
    if manifest.histograms:
        lines.append("  histograms:")
        for name in sorted(manifest.histograms):
            h = manifest.histograms[name]
            count = h.get("count", 0)
            mean = h.get("total", 0.0) / count if count else 0.0
            lines.append(
                f"    {name:<32} n={count} mean={mean:g} "
                f"min={_fmt(h.get('min'))} max={_fmt(h.get('max'))}")
    return "\n".join(lines)
