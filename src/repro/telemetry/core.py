"""Span/counter/histogram core of the telemetry layer.

One process-local :class:`Telemetry` registry (:data:`TELEMETRY`)
collects three metric shapes:

* **counters** — monotonically increasing integers
  (``engine.releases``, ``cache.hits``, ``sweep.retries`` ...);
* **histograms** — fixed-boundary bucket counts plus count/total/
  min/max, for value distributions (dispatch speeds, slack estimates,
  chunk latencies);
* **spans** — named phases timed with ``perf_counter`` (wall) and
  ``process_time`` (CPU) via a context manager, accumulated per name.

The registry is **disabled by default** and every recording entry
point starts with a single ``enabled`` check, so an un-instrumented
run pays one attribute load per hook — nothing measurable on the
engine step benchmark (guarded by ``tests/test_telemetry.py`` and the
``bench_record.py --check`` gate).

Snapshots are plain JSON-able dicts; :meth:`Telemetry.delta_since`
and :meth:`Telemetry.merge_snapshot` make the registry composable
across process boundaries: a forked sweep worker measures its chunk as
a delta against its fork-time snapshot and the parent merges that
delta in its fold loop, so parallel sweeps aggregate the same counts a
serial sweep would (pinned by ``tests/test_telemetry.py``).

An optional :class:`JsonlSink` appends structured events
(``events.jsonl``); it records the pid that attached it and silently
refuses to write from any other process, so forked workers never
interleave lines into the parent's event log.

Nothing here imports from the rest of ``repro`` — the telemetry core
must stay leaf-level so every layer (engine, policies, experiments,
CLI) can hook into it without import cycles.
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_right
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

#: Default histogram boundaries: a coarse log-ish grid wide enough for
#: speeds (0..1], slack values (time units) and latencies (seconds).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.5, 10.0, 100.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Fixed-boundary bucket counts with count/total/min/max.

    ``bounds`` are the *upper* edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything beyond the last
    edge.  Two histograms with the same bounds merge (and subtract)
    bucket-wise, which is what makes worker deltas foldable.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_payload(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_payload(self, payload: Mapping) -> None:
        """Fold another histogram's payload (same bounds) into this."""
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {payload['bounds']} vs "
                f"{list(self.bounds)}")
        for i, n in enumerate(payload["buckets"]):
            self.buckets[i] += n
        self.count += payload["count"]
        self.total += payload["total"]
        if payload["min"] is not None and payload["min"] < self.min:
            self.min = payload["min"]
        if payload["max"] is not None and payload["max"] > self.max:
            self.max = payload["max"]


def _subtract_histogram(after: Mapping, before: Mapping | None) -> dict:
    """Bucket-wise ``after - before``; min/max come from *after*.

    Min/max are not invertible through subtraction; keeping the
    *after* extrema is a safe over-approximation for a delta that only
    ever folds back into the registry it was cut from.
    """
    if before is None:
        return dict(after)
    return {
        "bounds": list(after["bounds"]),
        "buckets": [a - b for a, b in zip(after["buckets"],
                                          before["buckets"])],
        "count": after["count"] - before["count"],
        "total": after["total"] - before["total"],
        "min": after["min"],
        "max": after["max"],
    }


class JsonlSink:
    """Append-only JSONL event stream, pinned to its attaching pid."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("a", encoding="utf-8")
        self._pid = os.getpid()
        self._seq = 0

    def write(self, kind: str, fields: Mapping[str, Any]) -> None:
        """Append one event; a no-op in any process but the attacher."""
        if os.getpid() != self._pid:
            return
        self._seq += 1
        record = {"seq": self._seq, "ts": round(time.time(), 6),
                  "kind": kind, **fields}
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def close(self) -> None:
        if os.getpid() == self._pid:
            self._file.close()


class Telemetry:
    """The process-local metric registry.

    All entry points are cheap no-ops while ``enabled`` is False —
    hot-path callers additionally guard with ``if TELEMETRY.enabled``
    so the disabled cost is one attribute check, not a method call.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.manifest_dir: Path | None = None
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, dict[str, float]] = {}
        self._workers: dict[str, dict[str, float]] = {}
        self._sink: JsonlSink | None = None

    # -- configuration -------------------------------------------------

    def configure(self, *, enabled: bool = True,
                  events_path: str | Path | None = None,
                  manifest_dir: str | Path | None = None) -> None:
        """Switch the registry on (or off) and attach outputs."""
        self.enabled = enabled
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if events_path is not None and enabled:
            self._sink = JsonlSink(events_path)
        self.manifest_dir = (Path(manifest_dir)
                            if manifest_dir is not None else None)

    def reset(self) -> None:
        """Drop every recorded metric (configuration is kept)."""
        self._counters.clear()
        self._histograms.clear()
        self._spans.clear()
        self._workers.clear()

    # -- recording -----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        if not self.enabled or n == 0:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        counter.inc(n)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a phase; accumulates wall and CPU seconds under *name*.

        CPU time is this process's only — a parallel phase's worker
        CPU arrives separately through the merged worker deltas.
        """
        if not self.enabled:
            yield
            return
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            span = self._spans.get(name)
            if span is None:
                span = self._spans[name] = {
                    "count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            span["count"] += 1
            span["wall_s"] += wall
            span["cpu_s"] += cpu
            self.emit("span", name=name, wall_s=round(wall, 6),
                      cpu_s=round(cpu, 6), **fields)

    def record_worker(self, pid: int, *, chunks: int = 0, units: int = 0,
                      busy_s: float = 0.0) -> None:
        """Accumulate one worker process's chunk accounting."""
        if not self.enabled:
            return
        stats = self._workers.get(str(pid))
        if stats is None:
            stats = self._workers[str(pid)] = {
                "chunks": 0, "units": 0, "busy_s": 0.0}
        stats["chunks"] += chunks
        stats["units"] += units
        stats["busy_s"] += busy_s

    def emit(self, kind: str, **fields: Any) -> None:
        """Write one structured event to the JSONL sink, if attached."""
        if not self.enabled or self._sink is None:
            return
        self._sink.write(kind, fields)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        """A plain JSON-able copy of everything recorded so far."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "histograms": {k: h.to_payload()
                           for k, h in self._histograms.items()},
            "spans": {k: dict(v) for k, v in self._spans.items()},
            "workers": {k: dict(v) for k, v in self._workers.items()},
        }

    def delta_since(self, before: Mapping | None) -> dict:
        """Current snapshot minus *before* (``None`` = everything).

        The shape workers ship back to the sweep parent: fork-time
        state is subtracted out so merging the delta never double
        counts what the parent already holds.
        """
        after = self.snapshot()
        if before is None:
            return after
        counters = {}
        for name, value in after["counters"].items():
            diff = value - before["counters"].get(name, 0)
            if diff:
                counters[name] = diff
        histograms = {}
        for name, payload in after["histograms"].items():
            diff = _subtract_histogram(
                payload, before["histograms"].get(name))
            if diff["count"]:
                histograms[name] = diff
        spans = {}
        for name, span in after["spans"].items():
            base = before["spans"].get(name,
                                       {"count": 0, "wall_s": 0.0,
                                        "cpu_s": 0.0})
            if span["count"] != base["count"]:
                spans[name] = {k: span[k] - base[k] for k in span}
        workers = {}
        for pid, stats in after["workers"].items():
            base = before["workers"].get(pid, {"chunks": 0, "units": 0,
                                               "busy_s": 0.0})
            diff = {k: stats[k] - base[k] for k in stats}
            if diff["chunks"] or diff["units"]:
                workers[pid] = diff
        return {"counters": counters, "histograms": histograms,
                "spans": spans, "workers": workers}

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a snapshot/delta (e.g. from a worker) into the registry."""
        if not self.enabled:
            return
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, payload in snap.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    tuple(payload["bounds"]))
            histogram.merge_payload(payload)
        for name, span in snap.get("spans", {}).items():
            mine = self._spans.get(name)
            if mine is None:
                mine = self._spans[name] = {
                    "count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            for key in mine:
                mine[key] += span.get(key, 0)
        for pid, stats in snap.get("workers", {}).items():
            self.record_worker(int(pid), **stats)


#: The process-local registry every layer hooks into.
TELEMETRY = Telemetry()
