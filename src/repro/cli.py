"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``list``
    Show available policies, processor profiles, benchmarks and
    experiments.
``run``
    Run one experiment (``table1`` .. ``table3``, ``fig1`` .. ``fig12``
    or ``all``), print the ASCII rendering and optionally export
    CSV/JSON.
``simulate``
    One ad-hoc simulation: a benchmark or generated task set under one
    policy, with arrival/idle/wrapper knobs, a summary and an optional
    Gantt strip.
``report``
    Fold a directory of exported JSON results into one markdown report.
``diff``
    Compare two exported result sets cell by cell (regression check;
    exits non-zero when anything drifted).
``stats``
    Render a telemetry run manifest (written by ``run
    --telemetry-dir``) as an ASCII audit report; ``--follow`` first
    watches the live progress stream until the sweep finishes.
``watch``
    Attach to a running (or finished) sweep's ``progress.jsonl`` and
    render a refreshing status view — per-cell bars, throughput, ETA,
    recent failures, stall detection; ``--json`` prints one snapshot.
``runs``
    The cross-run registry: ``list``/``show``/``compare``/``gc``
    ingested run records (sweep manifests auto-ingest via ``run
    --registry-dir`` / ``REPRO_REGISTRY_DIR``; ``ingest`` folds in
    manifests and checked-in ``BENCH_*.json`` perf records by hand).
``trace``
    Schedule traces: ``export`` one run as a Perfetto-loadable Chrome
    trace (or compact JSONL), ``audit`` a run against the schedule
    invariants, ``diff`` two JSONL traces (first divergent segment),
    ``timeline`` a sweep's telemetry events as a worker-lane trace.
``doctor``
    Report the execution backends this install will actually use:
    numpy, the vectorized batch engine's eligible policies, the
    compiled engine core (DESIGN.md §13), the parallel executor's
    default worker count, and the profiling layer's availability and
    measured per-region overhead.
``profile``
    The phase profiler (DESIGN.md §15): ``run`` an instrumented EXP-F1
    mini sweep and print its time budget (writing the manifest with a
    ``profile`` block, a collapsed-stack flamegraph input, and a
    Perfetto-loadable phase trace), ``report`` a manifest's budget,
    ``flame`` a collapsed-stack file as a terminal flame tree,
    ``diff`` two manifests' attribution.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.cpu.profiles import PROCESSOR_PROFILES, load_profile
from repro.errors import ConfigurationError, SweepInterrupted
from repro.experiments.figures import FIGURES
from repro.experiments.io import write_csv, write_json
from repro.experiments.tables import TABLES
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import simulate
from repro.tasks.benchmarks import BENCHMARK_TASKSETS, load_benchmark
from repro.tasks.execution import model_for_bcwc_ratio
from repro.tasks.generators import generate_taskset


def _cmd_list(args: argparse.Namespace) -> int:
    print("policies:      ", ", ".join(ALL_POLICY_NAMES))
    print("processors:    ", ", ".join(PROCESSOR_PROFILES))
    print("benchmarks:    ", ", ".join(BENCHMARK_TASKSETS))
    print("experiments:   ", ", ".join(list(TABLES) + list(FIGURES)))
    return 0


def _export(data, out_dir: str | None) -> None:
    if out_dir is None:
        return
    base = Path(out_dir) / data.experiment_id.lower().replace("-", "_")
    csv_path = write_csv(data, base.with_suffix(".csv"))
    json_path = write_json(data, base.with_suffix(".json"))
    print(f"  exported {csv_path} and {json_path}")


def _call_driver(driver, args: argparse.Namespace):
    """Invoke an experiment driver with only the options it accepts."""
    offered = {"quick": args.quick}
    if getattr(args, "checkpoint_dir", None):
        offered["checkpoint_dir"] = args.checkpoint_dir
        offered["resume"] = args.resume
    if getattr(args, "workers", 1) != 1:
        offered["workers"] = args.workers
    if (getattr(args, "cache_dir", None)
            and not getattr(args, "no_cache", False)):
        offered["cache_dir"] = args.cache_dir
    if getattr(args, "policies", None):
        offered["policies"] = args.policies
    params = inspect.signature(driver).parameters
    accepted = {k: v for k, v in offered.items() if k in params}
    dropped = set(offered) - set(accepted) - {"quick"}
    if dropped:
        print(f"  note: {driver.__name__} does not support "
              f"{', '.join(sorted(dropped))}; ignored", file=sys.stderr)
    return driver(**accepted)


def _parse_policy_list(spec: str | None) -> tuple[str, ...] | None:
    """Validate a ``--policy`` list against the registry, up front.

    Raises :class:`ConfigurationError` naming the unknown entries and
    the known policies, so ``repro run`` fails before any simulation
    rather than mid-sweep.
    """
    if spec is None:
        return None
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALL_POLICY_NAMES]
    if not names or unknown:
        raise ConfigurationError(
            f"unknown policy {', '.join(unknown) or spec!r}; "
            f"known: {', '.join(ALL_POLICY_NAMES)}")
    return tuple(names)


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(TABLES) + list(FIGURES) if args.experiment == "all" \
        else [args.experiment]
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        args.policies = _parse_policy_list(args.policy)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        print("--unit-timeout must be > 0", file=sys.stderr)
        return 2
    if args.unit_timeout is not None or args.quarantine:
        # Process-wide defaults consulted by every sweep() the drivers
        # run — the knobs apply without threading new parameters
        # through every figure-driver signature.
        from repro.experiments.resilience import set_execution_defaults
        set_execution_defaults(
            unit_timeout=args.unit_timeout,
            on_failure="quarantine" if args.quarantine else None)
    if args.batch is not None:
        # Same pattern as the resilience knobs: a process-wide default
        # every sweep() consults, so --batch reaches the figure
        # drivers without new parameters on every signature.
        from repro.experiments.runner import set_batch_default
        set_batch_default(args.batch)
    if args.no_compiled:
        from repro.sim import fastcore
        fastcore.set_compiled_default(False)
    if args.telemetry_dir or args.metrics_json:
        from repro.telemetry import TELEMETRY
        events = (Path(args.telemetry_dir) / "events.jsonl"
                  if args.telemetry_dir else None)
        TELEMETRY.configure(enabled=True, events_path=events,
                            manifest_dir=args.telemetry_dir)
    if args.registry_dir:
        # Same process-wide-default pattern again: written manifests
        # auto-ingest into this registry (repro runs list).
        from repro.telemetry.registry import set_registry_dir
        set_registry_dir(args.registry_dir)
    if args.profile:
        from repro.profiling import PROFILER
        PROFILER.configure(enabled=True)
    for name in names:
        started = time.time()
        if name in TABLES:
            driver = TABLES[name]
        elif name in FIGURES:
            driver = FIGURES[name]
        else:
            known = ", ".join(list(TABLES) + list(FIGURES) + ["all"])
            print(f"unknown experiment {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
        try:
            data = _call_driver(driver, args)
        except SweepInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            if args.checkpoint_dir:
                print(f"resume with: repro run {name} --checkpoint-dir "
                      f"{args.checkpoint_dir} --resume", file=sys.stderr)
            return 130
        except KeyboardInterrupt:
            # A drain request that landed in a sweep's final moments is
            # re-delivered on exit and surfaces here between sweeps.
            print("interrupted: stopped between sweeps (completed "
                  "sweeps are checkpointed)", file=sys.stderr)
            if args.checkpoint_dir:
                print(f"resume with: repro run {name} --checkpoint-dir "
                      f"{args.checkpoint_dir} --resume", file=sys.stderr)
            return 130
        print(data.render())
        if args.chart and hasattr(data, "render_chart"):
            print(data.render_chart())
        print(f"  ({time.time() - started:.1f}s)")
        _export(data, args.out)
        if args.quarantine and args.checkpoint_dir:
            from repro.experiments.resilience import quarantine_report
            report = quarantine_report(args.checkpoint_dir)
            if report != "no quarantined units":
                print(report, file=sys.stderr)
        print()
    if args.metrics_json:
        from repro.telemetry import TELEMETRY
        snap = TELEMETRY.snapshot()
        path = Path(args.metrics_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snap, indent=2, sort_keys=True))
        print(f"  wrote metrics {path}")
    return 0


def _make_arrival_model(args: argparse.Namespace):
    from repro.tasks.arrivals import (
        BurstyArrival,
        ExponentialGapArrival,
        PeriodicArrival,
        UniformJitterArrival,
    )
    if args.arrivals == "periodic":
        return PeriodicArrival()
    if args.arrivals == "jitter":
        return UniformJitterArrival(jitter=args.jitter, seed=args.seed)
    if args.arrivals == "exponential":
        return ExponentialGapArrival(mean_extra=args.jitter,
                                     seed=args.seed)
    return BurstyArrival(seed=args.seed)


def _make_idle_policy(args: argparse.Namespace):
    from repro.policies.procrastination import (
        ProcrastinationIdlePolicy,
        SleepOnIdlePolicy,
    )
    if args.idle == "default":
        return None
    if args.idle == "sleep":
        return SleepOnIdlePolicy()
    return ProcrastinationIdlePolicy()


def _resolve_workload(args: argparse.Namespace):
    """The (taskset, processor, model, faults, horizon, margin) an
    ad-hoc command's workload flags describe.

    Shared by ``repro simulate`` and ``repro trace export/audit`` so a
    trace always reproduces exactly what a simulate with the same
    flags ran.  Raises :class:`ConfigurationError` on a bad fault
    spec.
    """
    from repro.faults import parse_fault_plan
    if args.benchmark:
        taskset = load_benchmark(args.benchmark)
    else:
        taskset = generate_taskset(
            args.tasks, args.utilization, np.random.default_rng(args.seed))
    processor = load_profile(args.processor)
    model = model_for_bcwc_ratio(args.bcwc, seed=args.seed)
    faults = (parse_fault_plan(args.faults, seed=args.seed)
              if args.faults else None)
    margin = args.governor_margin
    if margin is None:
        # Default the margin to the provisioned overrun severity.
        margin = (faults.overrun.factor
                  if faults is not None and faults.overrun is not None
                  else 1.0)
    horizon = args.horizon or taskset.default_horizon(
        min_jobs_per_task=10, max_hyperperiods=1)
    return taskset, processor, model, faults, horizon, margin


def _build_policy(args: argparse.Namespace, name: str, margin: float):
    return make_policy(name,
                       overhead_aware=args.overhead_aware,
                       critical_speed_floor=args.critical_speed,
                       governed=args.governed,
                       governor_margin=margin)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import map_forked
    if args.no_compiled:
        from repro.sim import fastcore
        fastcore.set_compiled_default(False)
    policy_names = [name.strip() for name in args.policy.split(",")
                    if name.strip()]
    unknown = [name for name in policy_names
               if name not in ALL_POLICY_NAMES]
    if not policy_names or unknown:
        print(f"unknown policy {', '.join(unknown) or args.policy!r}; "
              f"known: {', '.join(ALL_POLICY_NAMES)}", file=sys.stderr)
        return 2
    try:
        (taskset, processor, model, faults,
         horizon, margin) = _resolve_workload(args)
    except ConfigurationError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2

    def run_one(name: str):
        policy = _build_policy(args, name, margin)
        return simulate(taskset, processor, policy, model,
                        arrival_model=_make_arrival_model(args),
                        idle_policy=_make_idle_policy(args),
                        horizon=horizon, record_trace=args.gantt,
                        allow_misses=args.allow_misses, faults=faults)

    results = map_forked(
        [lambda name=name: run_one(name) for name in policy_names],
        workers=args.workers)
    print(taskset.describe())
    print(processor.describe())
    if faults is not None:
        print(faults.describe())
    for name, result in zip(policy_names, results):
        if len(policy_names) > 1:
            print(f"--- {name} ---")
        print(result.summary())
        if args.gantt and result.trace is not None:
            print("gantt:",
                  result.trace.render_gantt(width=100, end=horizon))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Report which execution backends this install will actually use."""
    from repro.experiments.parallel import default_workers, fork_available
    from repro.sim import fastcore
    from repro.sim.batch import batch_eligible_policies

    print(f"python:         {sys.version.split()[0]} "
          f"({sys.platform})")
    print(f"numpy:          {np.__version__}")

    eligible = batch_eligible_policies()
    print(f"batch engine:   eligible policies: {', '.join(eligible)}")
    print(f"                (other policies, faults, governors, traces "
          f"and sporadic arrivals route to the scalar engine)")

    info = fastcore.core_info()
    if info["available"]:
        state = "enabled" if info["enabled"] else \
            "present but disabled (REPRO_COMPILED=0 / --no-compiled)"
        print(f"compiled core:  {info['backend']} — {state}")
        print(f"                runs this process: "
              f"{info['runs']['compiled']} compiled, "
              f"{info['runs']['interpreted']} interpreted")
    else:
        print("compiled core:  not built — interpreted engine only")
        print("                (build with: REPRO_COMPILE=1 pip "
              "install -e .)")

    workers = default_workers()
    fork = "fork available" if fork_available() else \
        "no fork: sweeps run inline"
    print(f"parallel:       default workers: {workers} ({fork})")

    from repro.profiling import OVERHEAD_BUDGET, PROFILER, PhaseProfiler
    probe = PhaseProfiler()
    probe.enabled = True
    t0 = time.perf_counter_ns()
    for _ in range(10_000):
        probe.push("doctor.probe")
        probe.pop()
    per_region_ns = (time.perf_counter_ns() - t0) / 10_000
    state = "enabled" if PROFILER.enabled else "off by default"
    print(f"profiling:      phase timers available ({state}; "
          f"~{per_region_ns:.0f}ns per region when on, "
          f"budget {OVERHEAD_BUDGET:g}x)")
    sampler = ("sys._current_frames available"
               if hasattr(sys, "_current_frames")
               else "sys._current_frames MISSING - sampling disabled")
    print(f"                sampling backend: {sampler}")
    return 0


def _resolve_manifest_path(target: str) -> Path | None:
    """A manifest path from a file or a directory (newest manifest)."""
    path = Path(target)
    if path.is_dir():
        candidates = sorted(path.glob("manifest_*.json"))
        if not candidates:
            print(f"no manifest_*.json in {path}", file=sys.stderr)
            return None
        return candidates[-1]
    return path


def _load_profile_block(target: str) -> dict | None:
    from repro.telemetry.manifest import RunManifest
    path = _resolve_manifest_path(target)
    if path is None:
        return None
    manifest = RunManifest.load(path)
    if not manifest.profile:
        print(f"{path} has no profile block (was the sweep run with "
              f"profiling enabled? try: repro profile run)",
              file=sys.stderr)
        return None
    return manifest.profile


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiling import report as prep

    if args.profile_cmd == "report":
        block = _load_profile_block(args.manifest)
        if block is None:
            return 2
        print(prep.render_budget(block))
        return 0

    if args.profile_cmd == "flame":
        try:
            samples = prep.read_collapsed(args.folded)
        except OSError as exc:
            print(f"cannot read {args.folded}: {exc}", file=sys.stderr)
            return 2
        print(prep.render_flame(samples, min_share=args.min_share))
        return 0

    if args.profile_cmd == "diff":
        block_a = _load_profile_block(args.a)
        block_b = _load_profile_block(args.b)
        if block_a is None or block_b is None:
            return 2
        print(prep.render_budget_diff(prep.diff_budgets(block_a,
                                                        block_b)))
        return 0

    # profile run: an instrumented EXP-F1 mini sweep.
    from repro.experiments.parallel import shutdown_pool
    from repro.experiments.runner import (bcwc_model, standard_taskset,
                                          sweep)
    from repro.profiling import PROFILER
    from repro.telemetry import TELEMETRY

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    try:
        for name in policies:
            if name != "none":
                make_policy(name)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    n = max(1, args.cells)
    xs = ([0.5] if n == 1
          else [0.3 + i * (0.8 - 0.3) / (n - 1) for i in range(n)])
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.registry_dir:
        from repro.telemetry.registry import set_registry_dir
        set_registry_dir(args.registry_dir)

    def workload(u: float, seed: int):
        return (standard_taskset(args.tasks, u, seed),
                bcwc_model(args.bcwc, seed))

    TELEMETRY.configure(enabled=True, manifest_dir=out)
    PROFILER.configure(enabled=True, timeline=True,
                       sample=not args.no_sample,
                       sample_interval_s=args.sample_interval)
    before = PROFILER.snapshot()
    started = time.perf_counter()
    try:
        cells = sweep(xs, workload, policies, n_tasksets=args.seeds,
                      horizon=args.horizon, workers=args.workers,
                      workload_id=args.label)
    finally:
        if args.workers > 1:
            shutdown_pool()
    wall = time.perf_counter() - started
    delta = PROFILER.delta_since(before)
    block = prep.profile_block(
        delta, timeline_dropped=PROFILER.timeline_dropped)
    trace = prep.export_chrome_profile(
        PROFILER.timeline_events(), out / "profile_trace.json",
        origin_ns=PROFILER.origin_ns)
    folded = None
    if delta["samples"]:
        folded = prep.write_collapsed(delta["samples"],
                                      out / "profile.folded")
    PROFILER.configure(enabled=False)

    print(prep.render_budget(block, measured_wall_s=wall))
    print(f"cells: {len(cells)}  "
          f"units: {len(xs) * args.seeds}  workers: {args.workers}")
    print(f"manifest dir:     {out} (profile block in the newest "
          f"manifest; render with: repro profile report {out})")
    print(f"chrome trace:     {trace}")
    if folded is not None:
        print(f"flamegraph input: {folded} (render with: repro "
              f"profile flame {folded})")
    else:
        print("flamegraph input: no samples collected "
              "(sweep too short, or --no-sample)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report, write_report
    if args.out:
        path = write_report(args.results, args.out, title=args.title)
        print(f"wrote {path}")
    else:
        print(build_report(args.results, title=args.title))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.experiments.regression import diff_results, render_drifts
    drifts = diff_results(args.before, args.after, rel_tol=args.rel_tol)
    print(render_drifts(drifts))
    return 1 if drifts else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.telemetry.manifest import RunManifest, render_manifest
    target = Path(args.manifest)
    if args.follow:
        # Reuse the watch plumbing: follow the live progress stream
        # until the sweep finishes, then fall through to rendering the
        # manifest it wrote.
        from repro.telemetry.watch import watch
        if not target.is_dir():
            print("--follow needs a sweep directory (the progress "
                  "stream lives next to the manifests)", file=sys.stderr)
            return 2
        code = watch(target, interval=args.interval)
        if code != 0:
            return code
    if target.is_dir():
        candidates = sorted(target.glob("manifest_*.json"))
        if not candidates:
            print(f"no manifest_*.json under {target}", file=sys.stderr)
            return 2
        paths = candidates if args.all else [candidates[-1]]
    else:
        paths = [target]
    for index, path in enumerate(paths):
        try:
            manifest = RunManifest.load(path)
        except (OSError, ValueError, ExperimentError) as exc:
            print(f"cannot read manifest {path}: {exc}", file=sys.stderr)
            return 2
        if index:
            print()
        print(f"[{path}]")
        print(render_manifest(manifest))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.telemetry.watch import watch
    if args.json:
        from repro.telemetry.progress import read_progress
        try:
            snap = read_progress(args.target,
                                 stall_after=args.stall_after)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(json.dumps(snap.to_payload(), indent=2, sort_keys=True))
        return 0
    return watch(args.target, interval=args.interval, once=args.once,
                 stall_after=args.stall_after)


def _runs_registry(args: argparse.Namespace):
    from repro.telemetry.registry import (
        RunRegistry,
        default_registry_dir,
    )
    directory = args.registry_dir or default_registry_dir()
    if directory is None:
        print("no registry configured: pass --registry-dir or set "
              "REPRO_REGISTRY_DIR", file=sys.stderr)
        return None
    return RunRegistry(directory)


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.telemetry import registry as reg
    registry = _runs_registry(args)
    if registry is None:
        return 2

    if args.runs_command == "ingest":
        total = 0
        for target in args.paths:
            try:
                records = registry.ingest_path(target)
            except ExperimentError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            for record in records:
                print(f"  ingested {record.run_id} ({record.kind})")
            total += len(records)
        print(f"{total} record(s) ingested into {registry.directory}")
        return 0

    if args.runs_command == "list":
        if args.bench:
            # Bootstrap: fold the checked-in perf trajectory into the
            # registry before listing, so BENCH_*.json history and
            # live sweeps share one axis.
            for path in sorted(Path(args.bench_dir).glob("BENCH_*.json")):
                try:
                    registry.ingest_bench(path)
                except ExperimentError as exc:
                    print(f"  skipping {path}: {exc}", file=sys.stderr)
        records = registry.list(workload=args.workload,
                                policy=args.policy_filter,
                                fingerprint=args.fingerprint,
                                since=args.since, kind=args.kind)
        if args.json:
            print(json.dumps([r.to_payload() for r in records],
                             indent=2, sort_keys=True))
        else:
            print(reg.render_records(records))
        return 0

    if args.runs_command == "show":
        try:
            record = registry.get(args.run_id)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(record.to_payload(), indent=2,
                             sort_keys=True))
        else:
            print(reg.render_record(record))
        return 0

    if args.runs_command == "compare":
        try:
            a = registry.get(args.a)
            b = registry.get(args.b)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        diff = reg.compare_records(a, b)
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(reg.render_compare(diff))
        return 1 if diff["fingerprint_drift"] else 0

    # gc
    removed = registry.gc(keep=args.keep)
    print(f"removed {removed} record(s), kept the newest {args.keep}")
    return 0


def _trace_simulator(args: argparse.Namespace):
    """A tracing simulator for ``repro trace export/audit``."""
    from repro.sim.engine import Simulator
    (taskset, processor, model, faults,
     horizon, margin) = _resolve_workload(args)
    policy = _build_policy(args, args.policy, margin)
    return Simulator(taskset, processor, policy, model,
                     arrival_model=_make_arrival_model(args),
                     idle_policy=_make_idle_policy(args),
                     horizon=horizon, record_trace=True,
                     allow_misses=args.allow_misses, faults=faults)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command in ("export", "audit"):
        if args.policy not in ALL_POLICY_NAMES:
            print(f"unknown policy {args.policy!r}; known: "
                  f"{', '.join(ALL_POLICY_NAMES)}", file=sys.stderr)
            return 2
        try:
            sim = _trace_simulator(args)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if args.trace_command == "export":
        from repro.trace import export_chrome_trace, write_trace_jsonl
        result = sim.run()
        out = Path(args.out)
        if args.format == "jsonl" or (args.format == "auto"
                                      and out.suffix == ".jsonl"):
            path = write_trace_jsonl(result, out)
        else:
            path = export_chrome_trace(result, out)
        print(f"wrote {path}")
        if args.ledger:
            print(result.energy_ledger().render())
        return 0

    if args.trace_command == "audit":
        from repro.analysis import render_violations, run_and_audit
        result, violations = run_and_audit(sim)
        print(result.summary())
        print(render_violations(violations))
        if violations and args.out:
            from repro.trace import write_trace_jsonl
            path = write_trace_jsonl(result, args.out)
            print(f"wrote violating trace {path}")
        return 1 if violations else 0

    if args.trace_command == "diff":
        from repro.errors import TraceValidationError
        from repro.trace import diff_docs, read_trace_jsonl
        try:
            doc_a = read_trace_jsonl(args.a)
            doc_b = read_trace_jsonl(args.b)
        except TraceValidationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        divergence = diff_docs(doc_a, doc_b)
        if divergence is None:
            print(f"traces identical ({len(doc_a.segments)} segments, "
                  f"{len(doc_a.notes)} notes)")
            return 0
        print(divergence.render())
        return 1

    # timeline
    from repro.errors import ExperimentError
    from repro.trace import export_sweep_timeline
    try:
        path = export_sweep_timeline(args.events, args.out)
    except ExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"wrote {path}")
    return 0


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    """The ad-hoc workload flags shared by ``simulate`` and ``trace``."""
    parser.add_argument("--benchmark", default=None,
                        choices=sorted(BENCHMARK_TASKSETS))
    parser.add_argument("--tasks", type=int, default=5)
    parser.add_argument("--utilization", type=float, default=0.8)
    parser.add_argument("--bcwc", type=float, default=0.5,
                        help="best-case/worst-case execution ratio")
    parser.add_argument("--processor", default="ideal",
                        choices=sorted(PROCESSOR_PROFILES))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--horizon", type=float, default=None)
    parser.add_argument("--overhead-aware", action="store_true")
    parser.add_argument("--critical-speed", action="store_true",
                        help="clamp to the leakage-aware critical speed")
    parser.add_argument("--arrivals", default="periodic",
                        choices=("periodic", "jitter", "exponential",
                                 "bursty"),
                        help="arrival process (sporadic variants respect "
                             "the minimum separation)")
    parser.add_argument("--jitter", type=float, default=0.5,
                        help="jitter/extra-gap parameter for sporadic "
                             "arrival processes")
    parser.add_argument("--idle", default="default",
                        choices=("default", "sleep", "procrastinate"),
                        help="idle-time management")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject faults, e.g. 'overrun:1.5' or "
                             "'overrun:1.4:0.3,jitter:0.2,stuck:0.1' "
                             "(kinds: overrun, jitter, burst, drift, "
                             "stuck, delay, quantize)")
    parser.add_argument("--governed", action="store_true",
                        help="wrap the policy in the runtime safety "
                             "governor (slack-based feasibility floor)")
    parser.add_argument("--governor-margin", type=float, default=None,
                        help="WCET margin the governor provisions for "
                             "(default: the overrun factor of --faults, "
                             "else 1.0)")
    parser.add_argument("--allow-misses", action="store_true",
                        help="record deadline misses instead of aborting")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DVS-EDF slack-time-analysis simulator (DATE 2002 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show available components")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a reproduced experiment")
    p_run.add_argument("experiment",
                       help="table1..table3, fig1..fig12, or all")
    p_run.add_argument("--quick", action="store_true",
                       help="shrunken sweeps for a fast smoke run")
    p_run.add_argument("--out", default=None,
                       help="directory for CSV/JSON export")
    p_run.add_argument("--chart", action="store_true",
                       help="also draw an ASCII chart for figures")
    p_run.add_argument("--checkpoint-dir", default=None,
                       help="persist per-cell sweep checkpoints here "
                            "(experiments that support it)")
    p_run.add_argument("--resume", action="store_true",
                       help="resume a killed sweep from its checkpoints")
    p_run.add_argument("--unit-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline per (cell, seed) unit: "
                            "hung units are interrupted and retried, "
                            "wedged workers killed and replaced")
    p_run.add_argument("--quarantine", action="store_true",
                       help="survive poison units: a unit that still "
                            "fails after its retries is recorded under "
                            "<checkpoint-dir>/quarantine/ and the sweep "
                            "completes with a declared-partial result "
                            "instead of dying")
    p_run.add_argument("--workers", type=int, default=1, metavar="N",
                       help="fan sweep cells out over N worker "
                            "processes (results are byte-identical to "
                            "a serial run; experiments that sweep)")
    p_run.add_argument("--batch", default=None,
                       choices=("auto", "on", "off"),
                       help="vectorized multi-seed batch engine for "
                            "batch-eligible sweeps (default auto: "
                            "batch when the policy suite and run "
                            "flags allow it and enough seeds miss the "
                            "cache; results are byte-identical to the "
                            "scalar engine either way)")
    p_run.add_argument("--no-compiled", action="store_true",
                       help="force the interpreted engine even when the "
                            "compiled core extension is built (results "
                            "are byte-identical either way; equivalent "
                            "to REPRO_COMPILED=0)")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       default=os.environ.get("REPRO_CACHE_DIR"),
                       help="persistent content-addressed suite cache: "
                            "completed (cell, seed) suites are reused "
                            "across runs, byte-identically (default: "
                            "$REPRO_CACHE_DIR; experiments that sweep)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir/$REPRO_CACHE_DIR and "
                            "recompute every suite")
    p_run.add_argument("--policy", default=None, metavar="LIST",
                       help="comma-separated policy subset to sweep "
                            "(validated against the registry before "
                            "anything runs; experiments that accept a "
                            "policy list)")
    p_run.add_argument("--telemetry-dir", default=None, metavar="DIR",
                       help="enable telemetry: structured JSONL events "
                            "and per-sweep run manifests land here "
                            "(inspect with 'repro stats DIR')")
    p_run.add_argument("--metrics-json", default=None, metavar="FILE",
                       help="enable telemetry and dump the final "
                            "counter/histogram snapshot to FILE")
    p_run.add_argument("--registry-dir", metavar="DIR",
                       default=os.environ.get("REPRO_REGISTRY_DIR"),
                       help="cross-run registry: every run manifest "
                            "this run writes is also ingested here, "
                            "queryable with 'repro runs' (default: "
                            "$REPRO_REGISTRY_DIR)")
    p_run.add_argument("--profile", action="store_true",
                       help="enable the phase profiler: every run "
                            "manifest this run writes carries a "
                            "'profile' time-budget block (results "
                            "stay byte-identical; DESIGN.md §15)")
    p_run.set_defaults(func=_cmd_run)

    p_sim = sub.add_parser("simulate", help="one ad-hoc simulation")
    p_sim.add_argument("--policy", default="lpSTA",
                       help="policy name, or a comma-separated list to "
                            "run several on the same workload (see "
                            "'repro list')")
    p_sim.add_argument("--workers", type=int, default=1, metavar="N",
                       help="with a multi-policy --policy list, run up "
                            "to N policies in parallel worker processes")
    _add_workload_args(p_sim)
    p_sim.add_argument("--gantt", action="store_true",
                       help="print an ASCII Gantt strip")
    p_sim.add_argument("--no-compiled", action="store_true",
                       help="force the interpreted engine even when the "
                            "compiled core extension is built "
                            "(equivalent to REPRO_COMPILED=0)")
    p_sim.set_defaults(func=_cmd_simulate)

    p_trace = sub.add_parser(
        "trace", help="export, audit and compare schedule traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)

    p_texp = trace_sub.add_parser(
        "export", help="run one traced simulation and export the "
                       "schedule (Chrome trace JSON for Perfetto, or "
                       "compact JSONL)")
    p_texp.add_argument("--policy", default="lpSTA",
                        help="policy name (see 'repro list')")
    _add_workload_args(p_texp)
    p_texp.add_argument("--out", required=True, metavar="FILE",
                        help="output path (load .json in "
                             "https://ui.perfetto.dev)")
    p_texp.add_argument("--format", default="auto",
                        choices=("auto", "chrome", "jsonl"),
                        help="auto picks jsonl for .jsonl paths, "
                             "chrome otherwise")
    p_texp.add_argument("--ledger", action="store_true",
                        help="also print the per-task energy ledger")
    p_texp.set_defaults(func=_cmd_trace)

    p_taud = trace_sub.add_parser(
        "audit", help="run one traced simulation and check the "
                      "schedule invariants (exit 1 on violations)")
    p_taud.add_argument("--policy", default="lpSTA",
                        help="policy name (see 'repro list')")
    _add_workload_args(p_taud)
    p_taud.add_argument("--out", default=None, metavar="FILE",
                        help="dump the trace as JSONL when violations "
                             "are found")
    p_taud.set_defaults(func=_cmd_trace)

    p_tdiff = trace_sub.add_parser(
        "diff", help="first divergent segment between two JSONL traces "
                     "(exit 1 when they differ)")
    p_tdiff.add_argument("a", help="baseline trace (.jsonl)")
    p_tdiff.add_argument("b", help="candidate trace (.jsonl)")
    p_tdiff.set_defaults(func=_cmd_trace)

    p_ttl = trace_sub.add_parser(
        "timeline", help="fold a sweep's telemetry events.jsonl into "
                         "a worker-lane Chrome trace")
    p_ttl.add_argument("events", help="telemetry events.jsonl of a run")
    p_ttl.add_argument("--out", required=True, metavar="FILE",
                       help="output Chrome trace JSON path")
    p_ttl.set_defaults(func=_cmd_trace)

    p_rep = sub.add_parser("report",
                           help="build a markdown report from exported "
                                "results")
    p_rep.add_argument("results", help="directory of JSON exports")
    p_rep.add_argument("--out", default=None,
                       help="write to this file instead of stdout")
    p_rep.add_argument("--title", default=None)
    p_rep.set_defaults(func=_cmd_report)

    p_diff = sub.add_parser("diff",
                            help="compare two exported result sets")
    p_diff.add_argument("before", help="baseline results directory")
    p_diff.add_argument("after", help="candidate results directory")
    p_diff.add_argument("--rel-tol", type=float, default=1e-6)
    p_diff.set_defaults(func=_cmd_diff)

    p_stats = sub.add_parser("stats",
                             help="render a telemetry run manifest")
    p_stats.add_argument("manifest",
                         help="a manifest_*.json file, or a directory "
                              "(renders the newest manifest in it)")
    p_stats.add_argument("--all", action="store_true",
                         help="with a directory, render every manifest "
                              "instead of only the newest")
    p_stats.add_argument("--follow", action="store_true",
                         help="with a directory, watch the live "
                              "progress stream until the sweep "
                              "finishes, then render its manifest")
    p_stats.add_argument("--interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="--follow refresh interval")
    p_stats.set_defaults(func=_cmd_stats)

    p_watch = sub.add_parser(
        "watch", help="attach to a sweep's live progress stream "
                      "(written next to its checkpoints / telemetry)")
    p_watch.add_argument("target",
                         help="a sweep directory (checkpoint or "
                              "telemetry dir), or a progress.jsonl")
    p_watch.add_argument("--json", action="store_true",
                         help="print one machine-readable snapshot "
                              "and exit")
    p_watch.add_argument("--once", action="store_true",
                         help="render one frame and exit")
    p_watch.add_argument("--interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="refresh interval (default 1s)")
    p_watch.add_argument("--stall-after", type=float, default=None,
                         metavar="SECONDS",
                         help="declare a silent stream stalled after "
                              "this long (default: 5x the writer's "
                              "heartbeat interval, at least 10s)")
    p_watch.set_defaults(func=_cmd_watch)

    p_runs = sub.add_parser(
        "runs", help="query the cross-run registry (list/show/compare/"
                     "gc ingested run records)")
    p_runs.add_argument("--registry-dir", default=None, metavar="DIR",
                        help="registry location (default: "
                             "$REPRO_REGISTRY_DIR)")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    p_rlist = runs_sub.add_parser("list", help="list ingested runs, "
                                               "newest first")
    p_rlist.add_argument("--workload", default=None,
                         help="substring match on the workload id")
    p_rlist.add_argument("--policy", dest="policy_filter", default=None,
                         help="only runs that swept this policy")
    p_rlist.add_argument("--fingerprint", default=None, metavar="PREFIX",
                         help="only runs whose fingerprint digest "
                              "starts with PREFIX")
    p_rlist.add_argument("--since", default=None, metavar="DATE",
                         help="only runs created on/after this ISO date")
    p_rlist.add_argument("--kind", default=None,
                         choices=("sweep", "bench"))
    p_rlist.add_argument("--bench", action="store_true",
                         help="first ingest the checked-in BENCH_*.json "
                              "perf records (the repo's recorded perf "
                              "trajectory) from --bench-dir")
    p_rlist.add_argument("--bench-dir", default=".", metavar="DIR",
                         help="where --bench looks for BENCH_*.json "
                              "(default: current directory)")
    p_rlist.add_argument("--json", action="store_true")
    p_rlist.set_defaults(func=_cmd_runs)

    p_rshow = runs_sub.add_parser("show", help="show one run record")
    p_rshow.add_argument("run_id", help="full run id, or an "
                                        "unambiguous prefix")
    p_rshow.add_argument("--json", action="store_true")
    p_rshow.set_defaults(func=_cmd_runs)

    p_rcmp = runs_sub.add_parser(
        "compare", help="diff two runs' energy/miss/timing summaries "
                        "(exit 1 on fingerprint drift)")
    p_rcmp.add_argument("a", help="baseline run id (or prefix)")
    p_rcmp.add_argument("b", help="candidate run id (or prefix)")
    p_rcmp.add_argument("--json", action="store_true")
    p_rcmp.set_defaults(func=_cmd_runs)

    p_rgc = runs_sub.add_parser(
        "gc", help="drop all but the newest N run records")
    p_rgc.add_argument("--keep", type=int, default=50, metavar="N",
                       help="records to keep (default 50)")
    p_rgc.set_defaults(func=_cmd_runs)

    p_ring = runs_sub.add_parser(
        "ingest", help="ingest manifests / BENCH_*.json records "
                       "(files or directories)")
    p_ring.add_argument("paths", nargs="+",
                        help="manifest_*.json, BENCH_*.json, or "
                             "directories to scan for both")
    p_ring.set_defaults(func=_cmd_runs)

    p_prof = sub.add_parser(
        "profile",
        help="phase profiling: where a sweep's wall time goes "
             "(time budget, flamegraph, attribution diff)")
    prof_sub = p_prof.add_subparsers(dest="profile_cmd", required=True)
    p_prun = prof_sub.add_parser(
        "run",
        help="run an instrumented EXP-F1 mini sweep: prints the time "
             "budget, writes a manifest with a profile block, a "
             "collapsed-stack flamegraph input and a Perfetto-loadable "
             "phase trace")
    p_prun.add_argument("--out", default="profile_out", metavar="DIR",
                        help="output directory (manifest, "
                             "profile.folded, profile_trace.json)")
    p_prun.add_argument("--cells", type=int, default=2,
                        help="utilization cells, spread over "
                             "[0.3, 0.8] (default 2)")
    p_prun.add_argument("--seeds", type=int, default=3,
                        help="task sets per cell (default 3)")
    p_prun.add_argument("--tasks", type=int, default=6,
                        help="tasks per generated set (default 6)")
    p_prun.add_argument("--bcwc", type=float, default=0.5,
                        help="bc/wc execution ratio (default 0.5)")
    p_prun.add_argument("--policies", default="none,static,lpSTA",
                        metavar="LIST",
                        help="comma-separated policies "
                             "(default none,static,lpSTA)")
    p_prun.add_argument("--horizon", type=float, default=2000.0,
                        help="simulation horizon; long enough that the "
                             "stack sampler lands a useful number of "
                             "samples (default 2000)")
    p_prun.add_argument("--workers", type=int, default=1,
                        help="parallel workers; >1 exercises the "
                             "fork-safe profile fold (default 1)")
    p_prun.add_argument("--label", default="profile",
                        help="workload id / manifest label")
    p_prun.add_argument("--no-sample", action="store_true",
                        help="phase timers only: skip the stack "
                             "sampler (no flamegraph output)")
    p_prun.add_argument("--sample-interval", type=float, default=0.001,
                        dest="sample_interval", metavar="S",
                        help="stack sampling period in seconds "
                             "(default 0.001)")
    p_prun.add_argument("--registry-dir", metavar="DIR",
                        default=os.environ.get("REPRO_REGISTRY_DIR"),
                        help="also ingest the manifest into this "
                             "cross-run registry, so 'repro runs "
                             "compare' shows attribution deltas")
    p_prun.set_defaults(func=_cmd_profile)
    p_prep = prof_sub.add_parser(
        "report", help="render the profile block of a run manifest")
    p_prep.add_argument("manifest",
                        help="manifest file, or a directory holding "
                             "manifest_*.json (newest wins)")
    p_prep.set_defaults(func=_cmd_profile)
    p_pflame = prof_sub.add_parser(
        "flame", help="render a collapsed-stack file (profile.folded) "
                      "as a terminal flame tree")
    p_pflame.add_argument("folded", help="collapsed-stack file")
    p_pflame.add_argument("--min-share", type=float, default=0.01,
                          dest="min_share", metavar="FRAC",
                          help="hide frames below this sample share "
                               "(default 0.01)")
    p_pflame.set_defaults(func=_cmd_profile)
    p_pdiff = prof_sub.add_parser(
        "diff", help="attribution deltas between two profiled "
                     "manifests")
    p_pdiff.add_argument("a", help="baseline manifest file or dir")
    p_pdiff.add_argument("b", help="comparison manifest file or dir")
    p_pdiff.set_defaults(func=_cmd_profile)

    p_doc = sub.add_parser("doctor",
                           help="report the execution backends this "
                                "install will use (numpy, batch "
                                "engine, compiled core, workers, "
                                "profiling)")
    p_doc.set_defaults(func=_cmd_doctor)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
