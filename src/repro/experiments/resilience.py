"""Resilience layer for the sweep execution stack.

The paper's premise — a hard real-time system must keep its guarantees
when runtime behaviour deviates from the worst case — applied to our
own harness: an hours-long sweep must survive its *own* faults.  This
module collects the primitives the runner and the parallel executor
build that survival from:

* **failure classification** (:func:`classify`, :func:`is_transient`)
  — deterministic failures (a policy bug, an infeasible cell: pure
  functions of the seed) fail identically every time, so burning
  ``max_retries`` exponential-backoff attempts on them is pure waste;
  only transient failures (I/O hiccups, OOM kills, timeouts) are worth
  retrying.  Retry loops consult :func:`retry_budget` and fail
  deterministic units fast — straight to quarantine when enabled.
* **per-unit deadlines** (:func:`unit_deadline`) — a SIGALRM-based
  wall-clock budget around one (cell, seed) unit, raising
  :class:`~repro.errors.UnitTimeoutError` the moment it expires, so a
  hung cell is killed and retried instead of stalling the sweep
  forever.
* **poison-cell quarantine** (:class:`QuarantinedCell`,
  :class:`QuarantineStore`) — a unit that still fails after its retry
  budget becomes a structured record (exception, attempts,
  fingerprint, artifact path) persisted next to the checkpoints, and
  the sweep *completes* with a partial result that declares exactly
  what is missing, instead of dying at 95%.  Bounded, declared
  degradation — the (m,k)-firm idea applied to the harness itself.
* **graceful shutdown** (:class:`GracefulShutdown`) — SIGINT/SIGTERM
  request a drain instead of killing the process mid-checkpoint: in-
  flight units finish, completed cells are checkpointed, the manifest
  is flushed, and :class:`~repro.errors.SweepInterrupted` tells the
  caller the run is resumable.

Everything surfaces through ``resilience.*`` telemetry counters and
the MANIFEST_SCHEMA 3 ``resilience`` block, and is exercised end to
end by the deterministic chaos harness
(:mod:`repro.experiments.chaos`).
"""

from __future__ import annotations

import datetime as _dt
import json
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import (
    ExperimentError,
    ReproError,
    SweepInterrupted,
    UnitTimeoutError,
    WorkerCrashError,
)
from repro.telemetry import TELEMETRY
from repro.telemetry import progress as _progress

#: Exception types a retry (with backoff) can genuinely cure: external
#: conditions, not properties of the unit itself.  ``OSError`` covers
#: disk/network hiccups, ``MemoryError`` pressure-induced allocation
#: failure, ``UnitTimeoutError`` load-induced slowness and
#: ``WorkerCrashError`` OOM-killed workers.
_TRANSIENT_TYPES = (OSError, MemoryError, UnitTimeoutError,
                    WorkerCrashError)


def is_transient(exc: BaseException) -> bool:
    """Whether a retry could plausibly cure *exc*.

    Walks the cause/context chain: a
    :class:`~repro.errors.SuiteExecutionError` *wrapping* an
    ``OSError`` is as transient as the ``OSError`` itself.
    Library errors (:class:`~repro.errors.ReproError`) without a
    transient cause are deterministic — a sweep unit is a pure
    function of its seed, so an engine/policy failure reproduces
    identically on every attempt.  Unknown exception types default to
    transient (retrying an unknown failure is wasteful at worst;
    failing fast on a curable one loses results).
    """
    seen: set[int] = set()
    node: BaseException | None = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, _TRANSIENT_TYPES):
            return True
        if isinstance(node, ReproError):
            node = node.__cause__ or node.__context__
            continue
        # Non-library, non-transient-listed: assume the environment
        # could be at fault.
        return True
    return False


def classify(exc: BaseException) -> str:
    """``"transient"`` or ``"deterministic"`` — for records and logs."""
    return "transient" if is_transient(exc) else "deterministic"


def retry_budget(exc: BaseException, max_retries: int) -> int:
    """How many retries *exc* deserves: 0 when deterministic."""
    return max_retries if is_transient(exc) else 0


# -- per-unit deadlines ------------------------------------------------


@contextmanager
def unit_deadline(timeout: float | None, *, x: float | None = None,
                  seed: int | None = None) -> Iterator[None]:
    """A wall-clock budget around one (cell, seed) unit.

    Arms ``ITIMER_REAL`` for *timeout* seconds; expiry raises
    :class:`~repro.errors.UnitTimeoutError` inside the running unit.
    A no-op when *timeout* is falsy or when not on the main thread
    (signal handlers can only be installed there — the parallel
    executor's parent-side watchdog covers that case instead).
    """
    if not timeout or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - exercised via sweep
        raise UnitTimeoutError(
            f"unit x={x} seed={seed} exceeded its {timeout:g}s "
            f"wall-clock deadline", x=x, workload_seed=seed,
            timeout=timeout)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- quarantine --------------------------------------------------------


@dataclass
class QuarantinedCell:
    """Structured record of one (cell, seed) unit given up on.

    Everything needed to reproduce and triage the failure offline: the
    cell position and parameter value, the seed, how many attempts
    were burned, the failure class and message, the unit's cache
    fingerprint (when the sweep was caching) and the path the record
    itself was persisted to.
    """

    index: int
    x: float
    seed: int
    seed_pos: int
    attempts: int
    error_type: str
    error_message: str
    classification: str = "deterministic"
    policy: str | None = None
    fingerprint: str | None = None
    artifact: str | None = None
    created: str = ""

    def __post_init__(self) -> None:
        if not self.created:
            self.created = _dt.datetime.now().isoformat(timespec="seconds")

    @classmethod
    def from_failure(cls, exc: BaseException, *, index: int, x: float,
                     seed: int, seed_pos: int, attempts: int,
                     fingerprint: str | None = None) -> "QuarantinedCell":
        return cls(
            index=index, x=float(x), seed=int(seed), seed_pos=seed_pos,
            attempts=attempts, error_type=type(exc).__name__,
            error_message=str(exc), classification=classify(exc),
            policy=getattr(exc, "policy", None),
            fingerprint=fingerprint)

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "x": self.x,
            "seed": self.seed,
            "seed_pos": self.seed_pos,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "classification": self.classification,
            "policy": self.policy,
            "fingerprint": self.fingerprint,
            "artifact": self.artifact,
            "created": self.created,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QuarantinedCell":
        return cls(
            index=int(payload["index"]), x=float(payload["x"]),
            seed=int(payload["seed"]),
            seed_pos=int(payload["seed_pos"]),
            attempts=int(payload["attempts"]),
            error_type=str(payload["error_type"]),
            error_message=str(payload["error_message"]),
            classification=str(payload.get("classification",
                                           "deterministic")),
            policy=payload.get("policy"),
            fingerprint=payload.get("fingerprint"),
            artifact=payload.get("artifact"),
            created=str(payload.get("created", "")))

    def describe(self) -> str:
        return (f"cell {self.index} (x={self.x:g}) seed={self.seed}: "
                f"{self.error_type} after {self.attempts} attempt(s) "
                f"[{self.classification}]: {self.error_message}")


class QuarantineStore:
    """Per-sweep directory of quarantine records.

    One JSON file per quarantined unit under
    ``<checkpoint_dir>/quarantine/``, written atomically like every
    other sweep artifact.  Records survive the run, so a resumed sweep
    (and a human) can see exactly which units were given up on;
    deleting a record re-arms the unit for recomputation (quarantined
    cells are never checkpointed as complete).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory) / "quarantine"

    def record(self, cell: QuarantinedCell) -> Path | None:
        path = (self.directory /
                f"unit_{cell.index:04d}_{cell.seed_pos:04d}.json")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            cell.artifact = str(path)
            tmp.write_text(json.dumps(cell.to_payload(), indent=2))
            tmp.replace(path)
        except OSError:
            # Degraded I/O: the in-memory record still reaches the
            # sweep result; losing the artifact must not kill the run.
            cell.artifact = None
            TELEMETRY.inc("resilience.quarantine_write_errors")
            return None
        TELEMETRY.emit("resilience.quarantine", index=cell.index,
                       x=cell.x, seed=cell.seed,
                       error=cell.error_type, path=str(path))
        _progress.emit("resilience.quarantine", index=cell.index,
                       x=cell.x, seed=cell.seed,
                       error_type=cell.error_type,
                       classification=cell.classification,
                       path=str(path))
        return path

    def load_all(self) -> list[QuarantinedCell]:
        records = []
        for path in sorted(self.directory.glob("unit_*.json")):
            try:
                records.append(QuarantinedCell.from_payload(
                    json.loads(path.read_text())))
            except (OSError, ValueError, KeyError):
                continue  # a torn record is not worth dying over
        return records


def quarantine_report(checkpoint_dir: str | Path) -> str:
    """Human rendering of a sweep's quarantine records (may be empty)."""
    records = QuarantineStore(checkpoint_dir).load_all()
    if not records:
        return "no quarantined units"
    lines = [f"{len(records)} quarantined unit(s):"]
    lines += [f"  {record.describe()}" for record in records]
    return "\n".join(lines)


# -- graceful shutdown -------------------------------------------------


class GracefulShutdown:
    """Drain-on-signal: SIGINT/SIGTERM request a stop, not a kill.

    Installed (main thread only) around a sweep's execution phase.
    The first signal sets :attr:`requested`; execution loops check it
    between units/chunks, finish what is in flight, flush checkpoints
    and manifests, and raise :class:`~repro.errors.SweepInterrupted`.
    A second signal of the same kind falls through to the previous
    handler — an impatient operator can still kill a stuck drain.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested = False
        self.signal_number: int | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # Second signal: restore and re-deliver to the old handler.
            self._restore()
            signal.raise_signal(signum)
            return
        self.requested = True
        self.signal_number = signum
        TELEMETRY.inc("resilience.drain_requests")
        TELEMETRY.emit("resilience.drain", signal=signum)

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for signum in self._SIGNALS:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            self._installed = True
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        installed = self._installed
        self._restore()
        if (installed and self.requested and exc_type is None
                and self.signal_number is not None):
            # The request landed after the last between-units check, so
            # this sweep completed anyway.  Re-deliver to the restored
            # handler rather than swallowing the interrupt: a
            # multi-sweep driver must still stop.
            signal.raise_signal(self.signal_number)

    def _restore(self) -> None:
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)
            self._installed = False

    def raise_if_requested(self, *, completed_cells: int,
                           checkpoint_dir: str | Path | None) -> None:
        if not self.requested:
            return
        name = (signal.Signals(self.signal_number).name
                if self.signal_number is not None else "signal")
        where = (f"; resume with resume=True against {checkpoint_dir}"
                 if checkpoint_dir is not None
                 else " (no checkpoint dir: completed cells are lost)")
        raise SweepInterrupted(
            f"sweep drained after {name}: {completed_cells} cell(s) "
            f"completed and checkpointed{where}",
            signal_number=self.signal_number,
            completed_cells=completed_cells,
            checkpoint_dir=(str(checkpoint_dir)
                            if checkpoint_dir is not None else None))


# -- sweep-wide execution defaults -------------------------------------


@dataclass
class ExecutionDefaults:
    """Process-wide defaults for sweep resilience knobs.

    Figure drivers call :func:`~repro.experiments.runner.sweep` with
    their own explicit arguments; the CLI's ``--unit-timeout`` and
    ``--quarantine`` flags apply to *every* sweep a command runs, so
    they are set here once instead of being threaded through every
    driver signature.  Explicit ``sweep()`` arguments always win.
    """

    unit_timeout: float | None = None
    on_failure: str = "raise"


EXECUTION_DEFAULTS = ExecutionDefaults()


def set_execution_defaults(*, unit_timeout: float | None = None,
                           on_failure: str | None = None) -> None:
    """Set the process-wide sweep resilience defaults (CLI entry)."""
    if unit_timeout is not None:
        EXECUTION_DEFAULTS.unit_timeout = unit_timeout
    if on_failure is not None:
        if on_failure not in ("raise", "quarantine"):
            raise ExperimentError(
                f"on_failure must be 'raise' or 'quarantine', "
                f"got {on_failure!r}")
        EXECUTION_DEFAULTS.on_failure = on_failure
