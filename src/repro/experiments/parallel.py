"""Process-parallel sweep execution.

:func:`repro.experiments.runner.sweep` delegates here when asked for
``workers > 1``.  The unit of parallel work is one **(cell, seed)
suite** — the same granularity the serial loop iterates — dispatched
to a pool of forked worker processes; the parent re-assembles each
:class:`~repro.experiments.runner.SweepCell` by folding suite results
in seed order, so a parallel sweep is **byte-identical** to a serial
one (cells are pure functions of their seeds, and the aggregation
order is preserved).

Why ``fork`` and a module global instead of pickling the workload:
experiment drivers pass *closures* (``make_workload``,
``processor_factory``, ``policy_factory``, ``faults_factory``) that
capture figure parameters and cannot be pickled.  Forked children
inherit the parent's address space, so the parent publishes the sweep
spec in :data:`_SPEC` immediately before creating the pool and the
workers read it for free.  On platforms without ``fork`` (Windows,
macOS spawn default) :func:`fork_available` returns ``False`` and the
caller falls back to the serial path — results are identical either
way.

Failure semantics match the serial loop: results are consumed in
submission order (index-major, then seed order), so the first failure
surfaced is the lowest-ordered failing unit, wrapped by
:func:`~repro.experiments.runner.run_suite` in a
:class:`~repro.errors.SuiteExecutionError` that names the policy,
workload seed and horizon and survives the process boundary.  Cells
fully completed before the failing unit are already checkpointed —
exactly the state a killed serial sweep leaves behind.  Retries run
*inside* the worker at (cell, seed) granularity with the same
exponential backoff as the serial per-cell retry.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any

from repro.cpu.profiles import ideal_processor

if TYPE_CHECKING:
    from repro.experiments.runner import SweepCell, SweepCheckpointer

#: Sweep spec published by the parent just before the pool forks;
#: inherited read-only by the workers.  Holds the (unpicklable)
#: workload closures plus the scalar run parameters.
_SPEC: dict[str, Any] | None = None


def fork_available() -> bool:
    """Whether this platform can fork workers (required for closures)."""
    return "fork" in mp.get_all_start_methods()


def default_workers() -> int:
    """Default worker count: one per available CPU."""
    return os.cpu_count() or 1


def _run_unit(unit: tuple[int, float, int]) -> Any:
    """One (cell, seed) suite, executed inside a forked worker."""
    from repro.experiments.runner import run_suite

    index, x, seed = unit
    spec = _SPEC
    if spec is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the sweep spec was set")
    processor_factory = spec["processor_factory"]
    policy_factory = spec["policy_factory"]
    faults_factory = spec["faults_factory"]
    attempt = 0
    while True:
        try:
            taskset, model = spec["make_workload"](x, seed)
            processor = (processor_factory(x) if processor_factory
                         else ideal_processor())
            return run_suite(
                taskset, spec["policy_names"], processor, model,
                horizon=spec["horizon"],
                overhead_aware=spec["overhead_aware"],
                allow_misses=spec["allow_misses"],
                policy_factory=(policy_factory(x)
                                if policy_factory else None),
                faults=(faults_factory(x, seed)
                        if faults_factory else None),
                workload_seed=seed)
        except Exception:
            if attempt >= spec["max_retries"]:
                raise
            _time.sleep(spec["retry_backoff"] * (2.0 ** attempt))
            attempt += 1


#: Thunk table for :func:`map_forked`, inherited by forked workers.
_CALLS: list[Any] | None = None


def _call_indexed(index: int) -> Any:
    calls = _CALLS
    if calls is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the call table was set")
    return calls[index]()


def map_forked(calls: "list[Any]", workers: int) -> list[Any]:
    """Evaluate zero-argument callables on forked workers, in order.

    The generic sibling of :func:`run_cells` for callers (e.g. the
    ``simulate`` CLI running several policies) that just want N
    independent computations fanned out.  Results come back in call
    order; the first failing call's exception propagates.  Falls back
    to a serial loop when forking is unavailable or ``workers <= 1``.
    """
    if workers <= 1 or len(calls) <= 1 or not fork_available():
        return [call() for call in calls]
    global _CALLS
    _CALLS = calls
    try:
        ctx = mp.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_call_indexed, i)
                       for i in range(len(calls))]
            return [future.result() for future in futures]
    finally:
        _CALLS = None


def run_cells(
    pending: list[tuple[int, float]],
    seeds: list[int],
    *,
    spec: dict[str, Any],
    workers: int,
    checkpointer: "SweepCheckpointer | None" = None,
) -> "dict[int, SweepCell]":
    """Compute the *pending* (index, x) cells on a forked worker pool.

    Returns ``{index: SweepCell}`` with each cell's suites folded in
    seed order — the exact aggregation the serial loop performs — and
    checkpoints every completed cell through *checkpointer* as soon as
    its last seed finishes.
    """
    from repro.experiments.runner import SweepCell

    global _SPEC
    units = [(index, x, seed) for index, x in pending for seed in seeds]
    cells: dict[int, SweepCell] = {}
    suites: dict[int, dict[int, Any]] = {index: {} for index, _ in pending}
    xs = dict(pending)
    _SPEC = spec
    try:
        ctx = mp.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [(unit, pool.submit(_run_unit, unit))
                       for unit in units]
            for pos, ((index, _x, _seed), future) in enumerate(futures):
                try:
                    suite = future.result()
                except Exception:
                    for _, later in futures[pos + 1:]:
                        later.cancel()
                    raise
                # Key by seed *position*: taskset_seeds could in
                # principle repeat a seed value, and position is what
                # the serial aggregation order is defined over.
                suites[index][pos % len(seeds)] = suite
                if len(suites[index]) == len(seeds):
                    per_cell = suites.pop(index)
                    cell = SweepCell(x=float(xs[index]))
                    for seed_pos in range(len(seeds)):
                        cell.record(per_cell[seed_pos])
                    if checkpointer is not None:
                        checkpointer.store(index, cell)
                    cells[index] = cell
    finally:
        _SPEC = None
    return cells
