"""Process-parallel sweep execution: chunked dispatch on a warm pool.

:func:`repro.experiments.runner.sweep` delegates here when asked for
``workers > 1``.  The unit of work is one **(cell, seed) suite** — the
same granularity the serial loop iterates — but units are dispatched in
**chunks** (contiguous runs of units, auto-sized so each worker sees a
few chunks; ``chunk_size=`` overrides) so one pool submit amortises the
pickle/IPC and scheduling cost over many ~70 ms suites instead of
paying it per suite.  Workers return compact
:class:`~repro.experiments.cache.PolicySummary` maps rather than full
simulation results, keeping the return pickle small.  The parent
consumes chunks **out of order** (``as_completed`` semantics) and folds
each cell the moment its last seed lands — always in seed order
*within* the cell — so cells, and any checkpoints written, stay
**byte-identical** to a serial run while a slow unit no longer
head-of-line-blocks folding and checkpointing of everything behind it.

Why ``fork`` and a module global instead of pickling the workload:
experiment drivers pass *closures* (``make_workload``,
``processor_factory``, ``policy_factory``, ``faults_factory``) that
capture figure parameters and cannot be pickled.  Forked children
inherit the parent's address space, so the parent publishes the sweep
spec in :data:`_SPEC` before the pool forks and the workers read it
for free.  On platforms without ``fork`` (Windows, macOS spawn
default) :func:`fork_available` returns ``False`` and the caller falls
back to the serial path — results are identical either way.

The pool itself is **warm**: a process-wide :class:`WorkerPool`
created on first use and reused across the multiple ``sweep()`` calls
a figure driver makes, instead of forking a fresh pool per sweep.
Reuse is only sound while the published spec is unchanged — forked
workers snapshot :data:`_SPEC` at fork time — so :meth:`WorkerPool.
acquire` compares a value token of the requested spec against the one
the pool was forked with and explicitly invalidates (shuts down and
re-forks) on any mismatch.

Failure semantics match the serial loop even under out-of-order
consumption: workers report per-unit failures as values (stopping
their chunk at the first one), the parent keeps draining chunks that
could still contain a **lower-ordered** failure, cancels the rest, and
finally shuts the pool down (``cancel_futures=True``) and re-raises
the failure of the lowest-ordered failing unit — the exact unit a
serial sweep would have died on, wrapped by
:func:`~repro.experiments.runner.run_suite` in a
:class:`~repro.errors.SuiteExecutionError` that names the policy,
workload seed and horizon and survives the process boundary.  Cells
fully folded before the failure is surfaced are already checkpointed —
at least the state a killed serial sweep leaves behind.  Retries run
*inside* the worker at (cell, seed) granularity with the same
exponential backoff as the serial per-cell retry.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Any, Callable

from repro.cpu.profiles import ideal_processor
from repro.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:
    from repro.experiments.cache import PolicySummary, SuiteCache
    from repro.experiments.runner import SweepCell, SweepCheckpointer

#: Sweep spec published by the parent before the pool forks; inherited
#: read-only by the workers.  Holds the (unpicklable) workload closures
#: plus the scalar run parameters.  Stays published for the lifetime of
#: the warm pool: the executor forks workers lazily on submit, so a
#: late-forked worker must still see the spec its pool was built for.
_SPEC: dict[str, Any] | None = None

#: Auto-sizing target: chunks per worker.  2 balances amortisation (few
#: submits) against straggler rebalancing (a worker that finishes its
#: first chunk early picks up another instead of idling).
_CHUNKS_PER_WORKER = 2


def fork_available() -> bool:
    """Whether this platform can fork workers (required for closures)."""
    return "fork" in mp.get_all_start_methods()


def default_workers() -> int:
    """Default worker count: one per CPU *this process may run on*.

    Containerised CI typically pins the process to a subset of the
    host's CPUs; ``os.cpu_count()`` reports the host and oversubscribes
    the cgroup, so the scheduling affinity mask is consulted first.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic kernels only
            pass
    return os.cpu_count() or 1


def plan_chunks(n_units: int, workers: int,
                chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(n_units)`` into contiguous ``(start, stop)`` chunks.

    Auto-sizing aims for :data:`_CHUNKS_PER_WORKER` chunks per worker;
    an explicit *chunk_size* overrides it.  Chunks are contiguous in
    unit order, which the failure path relies on: a chunk whose
    ``start`` lies beyond the lowest known failing unit cannot contain
    a lower-ordered failure and is safe to cancel.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(
            n_units / max(1, workers * _CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(n_units, start + chunk_size))
            for start in range(0, n_units, chunk_size)]


def _spec_token(spec: dict[str, Any]) -> tuple:
    """A comparable value token of a sweep spec.

    Scalars compare by value; closures and other rich objects compare
    by identity — the pool keeps a strong reference to its spec, so a
    matching ``id`` genuinely means the same live object, never a
    recycled address.
    """
    def token(value: Any) -> tuple:
        if value is None or isinstance(value, (bool, int, float, str)):
            return ("value", value)
        if isinstance(value, (list, tuple)):
            return ("seq", tuple(token(item) for item in value))
        return ("object", id(value))

    return tuple(sorted((key, token(value)) for key, value in spec.items()))


class WorkerPool:
    """The process-wide warm pool of forked sweep workers.

    Created on first :meth:`acquire` and reused across ``sweep()``
    calls whose spec token and worker count match; any mismatch — a
    different workload closure, policy list, horizon, worker count —
    explicitly invalidates the pool (shutdown + fresh fork), because
    already-forked workers hold a stale snapshot of :data:`_SPEC`.
    """

    _instance: "WorkerPool | None" = None

    def __init__(self, workers: int, token: tuple,
                 spec: dict[str, Any]) -> None:
        global _SPEC
        # Publish before constructing the executor: workers fork lazily
        # on submit, but never before this point.
        _SPEC = spec
        self.workers = workers
        self.token = token
        self.spec = spec  # strong ref keeps the token's ids unambiguous
        self.executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=mp.get_context("fork"))

    @classmethod
    def acquire(cls, workers: int, spec: dict[str, Any]) -> "WorkerPool":
        token = _spec_token(spec)
        pool = cls._instance
        if (pool is not None and pool.workers == workers
                and pool.token == token):
            _TELEMETRY.inc("parallel.pool_reuse")
            return pool
        if pool is not None:
            pool.shutdown()
        pool = cls(workers, token, spec)
        cls._instance = pool
        _TELEMETRY.inc("parallel.pool_forks")
        return pool

    @classmethod
    def current(cls) -> "WorkerPool | None":
        return cls._instance

    def shutdown(self, *, cancel_futures: bool = False) -> None:
        global _SPEC
        if WorkerPool._instance is self:
            WorkerPool._instance = None
            _SPEC = None
        self.executor.shutdown(wait=False, cancel_futures=cancel_futures)


def shutdown_pool() -> None:
    """Explicitly invalidate the warm pool (tests, benchmarks, atexit)."""
    pool = WorkerPool._instance
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_pool)


def _suite_summaries(spec: dict[str, Any], x: float, seed: int,
                     audit: bool = False) -> "dict[str, PolicySummary]":
    """One (cell, seed) suite under *spec*, with in-worker retries."""
    from repro.experiments.runner import run_suite

    processor_factory = spec["processor_factory"]
    policy_factory = spec["policy_factory"]
    faults_factory = spec["faults_factory"]
    attempt = 0
    while True:
        try:
            taskset, model = spec["make_workload"](x, seed)
            processor = (processor_factory(x) if processor_factory
                         else ideal_processor())
            suite = run_suite(
                taskset, spec["policy_names"], processor, model,
                horizon=spec["horizon"],
                overhead_aware=spec["overhead_aware"],
                allow_misses=spec["allow_misses"],
                policy_factory=(policy_factory(x)
                                if policy_factory else None),
                faults=(faults_factory(x, seed)
                        if faults_factory else None),
                workload_seed=seed,
                audit=audit)
            return suite.policy_summaries()
        except Exception:
            if attempt >= spec["max_retries"]:
                raise
            _TELEMETRY.inc("sweep.retries")
            _TELEMETRY.emit("sweep.retry", x=x, seed=seed,
                            attempt=attempt)
            _time.sleep(spec["retry_backoff"] * (2.0 ** attempt))
            attempt += 1


def _run_chunk(
    chunk: list[tuple[int, int, float, int, int]],
) -> tuple[list[tuple[int, Any, Exception | None]], dict | None]:
    """Run one chunk of ``(pos, index, x, seed_pos, seed)`` units.

    Executed inside a forked worker.  Returns ``(outcomes, meta)``:
    ``(pos, summaries, error)`` outcomes in unit order — a unit that
    still fails after its in-worker retries is reported as a *value*
    (so the parent can pick the lowest-ordered failure across all
    chunks) and ends the chunk, as a serial sweep would not have run
    anything after its first failure either — plus, when telemetry is
    enabled (workers inherit the parent's registry state at fork
    time), a meta dict carrying the worker pid, the chunk's wall
    time, and the worker's telemetry *delta* for this chunk, which
    the parent merges in its fold loop so parallel counts equal
    serial counts.
    """
    spec = _SPEC
    if spec is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the sweep spec was set")
    tele = _TELEMETRY
    before = tele.snapshot() if tele.enabled else None
    started = _time.perf_counter()
    t0 = _time.time()
    audit_every = spec.get("audit_every")
    n_seeds = spec.get("n_seeds", 0)
    outcomes: list[tuple[int, Any, Exception | None]] = []
    for pos, index, x, seed_pos, seed in chunk:
        # Same unit positions as the serial loop, so spot-audit
        # selection is identical in both paths.
        audit = (audit_every is not None
                 and (index * n_seeds + seed_pos) % audit_every == 0)
        try:
            summaries = _suite_summaries(spec, x, seed, audit=audit)
        except Exception as exc:
            outcomes.append((pos, None, exc))
            break
        outcomes.append((pos, summaries, None))
    meta = None
    if tele.enabled:
        meta = {
            "pid": os.getpid(),
            "units": len(outcomes),
            "wall_s": _time.perf_counter() - started,
            "t0": t0,
            "t1": _time.time(),
            "telemetry": tele.delta_since(before),
        }
    return outcomes, meta


#: Thunk table for :func:`map_forked`, inherited by forked workers.
_CALLS: list[Any] | None = None


def _call_indexed(index: int) -> Any:
    calls = _CALLS
    if calls is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the call table was set")
    return calls[index]()


def map_forked(calls: "list[Any]", workers: int) -> list[Any]:
    """Evaluate zero-argument callables on forked workers, in order.

    The generic sibling of :func:`run_cells` for callers (e.g. the
    ``simulate`` CLI running several policies) that just want N
    independent computations fanned out.  Results come back in call
    order; the first failing call's exception propagates.  Falls back
    to a serial loop when forking is unavailable or ``workers <= 1``.
    The call table is published and cleared in a shape that cannot
    leak :data:`_CALLS` even when constructing the pool itself raises
    (e.g. fork failure under memory pressure).
    """
    if workers <= 1 or len(calls) <= 1 or not fork_available():
        return [call() for call in calls]
    global _CALLS
    _CALLS = calls
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=mp.get_context("fork"))
    except BaseException:
        _CALLS = None
        raise
    try:
        with pool:
            futures = [pool.submit(_call_indexed, i)
                       for i in range(len(calls))]
            return [future.result() for future in futures]
    finally:
        _CALLS = None


def run_cells(
    pending: list[tuple[int, float]],
    seeds: list[int],
    *,
    spec: dict[str, Any],
    workers: int,
    checkpointer: "SweepCheckpointer | None" = None,
    cache: "SuiteCache | None" = None,
    unit_key: "Callable[[float, int], str] | None" = None,
    chunk_size: int | None = None,
) -> "dict[int, SweepCell]":
    """Compute the *pending* (index, x) cells on the warm worker pool.

    Returns ``{index: SweepCell}`` with each cell's suites folded in
    seed order — the exact aggregation the serial loop performs — and
    checkpoints every completed cell through *checkpointer* as soon as
    its last seed lands, regardless of what order chunks complete in.

    With *cache* (and its *unit_key* fingerprint function) set, every
    unit is looked up before dispatch — hits fold directly in the
    parent, only misses are chunked out to workers, and every computed
    summary is persisted the moment it lands.  A fully cached sweep
    never touches the pool at all.
    """
    from repro.experiments.runner import SweepCell

    xs = dict(pending)
    suites: dict[int, dict[int, Any]] = {index: {} for index, _ in pending}
    cells: dict[int, SweepCell] = {}

    def fold(index: int) -> None:
        per_cell = suites.pop(index)
        cell = SweepCell(x=float(xs[index]))
        for seed_pos in range(len(seeds)):
            cell.record_summaries(per_cell[seed_pos])
        if checkpointer is not None:
            checkpointer.store(index, cell)
        cells[index] = cell

    # Consult the cache before dispatch; positions number only the
    # units that actually need computing, in index-major seed order —
    # the order a serial (cache-consulting) sweep would hit them.
    units: list[tuple[int, int, float, int, int]] = []
    keys: list[str | None] = []
    for index, x in pending:
        for seed_pos, seed in enumerate(seeds):
            summaries = None
            key = None
            if cache is not None and unit_key is not None:
                key = unit_key(x, seed)
                summaries = cache.get(key)
            if summaries is not None:
                suites[index][seed_pos] = summaries
            else:
                units.append((len(units), index, x, seed_pos, seed))
                keys.append(key)
    for index, _x in pending:
        if index in suites and len(suites[index]) == len(seeds):
            fold(index)
    if not units:
        return cells

    pool = WorkerPool.acquire(workers, spec)
    chunk_futures = {
        pool.executor.submit(_run_chunk, units[start:stop]): (start, stop)
        for start, stop in plan_chunks(len(units), workers, chunk_size)}
    if _TELEMETRY.enabled:
        _TELEMETRY.inc("parallel.chunks_submitted", len(chunk_futures))
        _TELEMETRY.emit("parallel.dispatch", chunks=len(chunk_futures),
                        units=len(units), workers=workers)
    not_done = set(chunk_futures)
    best_err: tuple[int, BaseException] | None = None
    while not_done:
        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
        for future in done:
            start, _stop = chunk_futures[future]
            try:
                outcomes, meta = future.result()
            except BaseException as exc:
                # Infrastructure failure (worker killed, broken pool):
                # attribute it to the chunk's first unit.
                if best_err is None or start < best_err[0]:
                    best_err = (start, exc)
                continue
            if meta is not None and _TELEMETRY.enabled:
                # Fold the worker's chunk delta into the parent
                # registry the moment the chunk lands — the telemetry
                # sibling of the in-seed-order cell folding below.
                _TELEMETRY.merge_snapshot(meta["telemetry"])
                _TELEMETRY.record_worker(meta["pid"], chunks=1,
                                         units=meta["units"],
                                         busy_s=meta["wall_s"])
                _TELEMETRY.inc("parallel.chunks_completed")
                _TELEMETRY.inc("parallel.units_computed", meta["units"])
                _TELEMETRY.observe("parallel.chunk_latency_s",
                                   meta["wall_s"])
                # The chunk's wall-clock window, for the sweep
                # timeline's worker lanes (repro.trace.timeline).
                _TELEMETRY.emit("parallel.chunk", pid=meta["pid"],
                                units=meta["units"],
                                wall_s=meta["wall_s"],
                                t0=meta.get("t0"), t1=meta.get("t1"))
            for pos, summaries, err in outcomes:
                if err is not None:
                    if best_err is None or pos < best_err[0]:
                        best_err = (pos, err)
                    break
                if best_err is not None and pos > best_err[0]:
                    # Beyond the failure point: a serial sweep would
                    # never have run this unit; drop the result.
                    continue
                _, index, _x, seed_pos, _seed = units[pos]
                if cache is not None and keys[pos] is not None:
                    cache.put(keys[pos], summaries)
                suites[index][seed_pos] = summaries
                if len(suites[index]) == len(seeds):
                    fold(index)
        if best_err is not None:
            # Chunks starting beyond the lowest known failure cannot
            # lower it: cancel what has not started, keep draining the
            # rest (a still-running earlier chunk may fail lower).
            for future in list(not_done):
                start, _stop = chunk_futures[future]
                if start > best_err[0] and future.cancel():
                    not_done.discard(future)
    if best_err is not None:
        # Cancelling futures never stops already-running workers; the
        # pool itself is shut down (and the warm singleton dropped) so
        # no stale worker outlives the failed sweep.
        pool.shutdown(cancel_futures=True)
        raise best_err[1]
    return cells
