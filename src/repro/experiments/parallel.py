"""Process-parallel sweep execution: chunked dispatch on a warm pool.

:func:`repro.experiments.runner.sweep` delegates here when asked for
``workers > 1``.  The unit of work is one **(cell, seed) suite** — the
same granularity the serial loop iterates — but units are dispatched in
**chunks** (contiguous runs of units, auto-sized so each worker sees a
few chunks; ``chunk_size=`` overrides) so one pool submit amortises the
pickle/IPC and scheduling cost over many ~70 ms suites instead of
paying it per suite.  Workers return compact
:class:`~repro.experiments.cache.PolicySummary` maps rather than full
simulation results, keeping the return pickle small.  The parent
consumes chunks **out of order** (``as_completed`` semantics) and folds
each cell the moment its last seed lands — always in seed order
*within* the cell — so cells, and any checkpoints written, stay
**byte-identical** to a serial run while a slow unit no longer
head-of-line-blocks folding and checkpointing of everything behind it.

Why ``fork`` and a module global instead of pickling the workload:
experiment drivers pass *closures* (``make_workload``,
``processor_factory``, ``policy_factory``, ``faults_factory``) that
capture figure parameters and cannot be pickled.  Forked children
inherit the parent's address space, so the parent publishes the sweep
spec in :data:`_SPEC` before the pool forks and the workers read it
for free.  On platforms without ``fork`` (Windows, macOS spawn
default) :func:`fork_available` returns ``False`` and the caller falls
back to the serial path — results are identical either way.

The pool itself is **warm**: a process-wide :class:`WorkerPool`
created on first use and reused across the multiple ``sweep()`` calls
a figure driver makes, instead of forking a fresh pool per sweep.
Reuse is only sound while the published spec is unchanged — forked
workers snapshot :data:`_SPEC` at fork time — so :meth:`WorkerPool.
acquire` compares a value token of the requested spec against the one
the pool was forked with and explicitly invalidates (shuts down and
re-forks) on any mismatch.

Failure semantics match the serial loop even under out-of-order
consumption: workers report per-unit failures as values (stopping
their chunk at the first one), the parent keeps draining chunks that
could still contain a **lower-ordered** failure, cancels the rest, and
finally shuts the pool down (``cancel_futures=True``) and re-raises
the failure of the lowest-ordered failing unit — the exact unit a
serial sweep would have died on, wrapped by
:func:`~repro.experiments.runner.run_suite` in a
:class:`~repro.errors.SuiteExecutionError` that names the policy,
workload seed and horizon and survives the process boundary.  Cells
fully folded before the failure is surfaced are already checkpointed —
at least the state a killed serial sweep leaves behind.  Retries run
*inside* the worker at (cell, seed) granularity with the same
exponential backoff as the serial per-unit retry — classified, so
deterministic failures skip the ladder.

On top of that sits **supervision** (DESIGN.md §11): a worker *death*
(not a reported failure — an OOM kill, segfault or injected chaos
crash, which breaks the whole ``ProcessPoolExecutor``) triggers a
pool rebuild and re-dispatch of only the unresolved units, with the
dispatch shape escalating chunked → isolated → solo until the crash
is attributable to one unit; a ``unit_timeout`` in the spec arms both
an in-worker SIGALRM deadline and a parent-side stall watchdog that
kills wedged workers.  Under ``on_failure="quarantine"`` exhausted
units become structured quarantine records and the sweep completes
partial instead of dying.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import os
import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    TimeoutError as _FuturesTimeout,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable

from repro.cpu.profiles import ideal_processor
from repro.errors import UnitTimeoutError, WorkerCrashError
from repro.experiments import chaos as _chaos
from repro.experiments.resilience import (
    QuarantinedCell,
    retry_budget,
    unit_deadline,
)
from repro.profiling import PROFILER as _PROFILER
from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.telemetry import progress as _progress

if TYPE_CHECKING:
    from repro.experiments.cache import PolicySummary, SuiteCache
    from repro.experiments.resilience import (
        GracefulShutdown,
        QuarantineStore,
    )
    from repro.experiments.runner import SweepCell, SweepCheckpointer

#: Sweep spec published by the parent before the pool forks; inherited
#: read-only by the workers.  Holds the (unpicklable) workload closures
#: plus the scalar run parameters.  Stays published for the lifetime of
#: the warm pool: the executor forks workers lazily on submit, so a
#: late-forked worker must still see the spec its pool was built for.
_SPEC: dict[str, Any] | None = None

#: Auto-sizing target: chunks per worker.  2 balances amortisation (few
#: submits) against straggler rebalancing (a worker that finishes its
#: first chunk early picks up another instead of idling).
_CHUNKS_PER_WORKER = 2


def fork_available() -> bool:
    """Whether this platform can fork workers (required for closures)."""
    return "fork" in mp.get_all_start_methods()


def default_workers() -> int:
    """Default worker count: one per CPU *this process may run on*.

    Containerised CI typically pins the process to a subset of the
    host's CPUs; ``os.cpu_count()`` reports the host and oversubscribes
    the cgroup, so the scheduling affinity mask is consulted first.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic kernels only
            pass
    return os.cpu_count() or 1


def plan_chunks(n_units: int, workers: int,
                chunk_size: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(n_units)`` into contiguous ``(start, stop)`` chunks.

    Auto-sizing aims for :data:`_CHUNKS_PER_WORKER` chunks per worker;
    an explicit *chunk_size* overrides it.  Chunks are contiguous in
    unit order, which the failure path relies on: a chunk whose
    ``start`` lies beyond the lowest known failing unit cannot contain
    a lower-ordered failure and is safe to cancel.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(
            n_units / max(1, workers * _CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(n_units, start + chunk_size))
            for start in range(0, n_units, chunk_size)]


def _spec_token(spec: dict[str, Any]) -> tuple:
    """A comparable value token of a sweep spec.

    Scalars compare by value; closures and other rich objects compare
    by identity — the pool keeps a strong reference to its spec, so a
    matching ``id`` genuinely means the same live object, never a
    recycled address.
    """
    def token(value: Any) -> tuple:
        if value is None or isinstance(value, (bool, int, float, str)):
            return ("value", value)
        if isinstance(value, (list, tuple)):
            return ("seq", tuple(token(item) for item in value))
        return ("object", id(value))

    return tuple(sorted((key, token(value)) for key, value in spec.items()))


class WorkerPool:
    """The process-wide warm pool of forked sweep workers.

    Created on first :meth:`acquire` and reused across ``sweep()``
    calls whose spec token and worker count match; any mismatch — a
    different workload closure, policy list, horizon, worker count —
    explicitly invalidates the pool (shutdown + fresh fork), because
    already-forked workers hold a stale snapshot of :data:`_SPEC`.
    """

    _instance: "WorkerPool | None" = None

    def __init__(self, workers: int, token: tuple,
                 spec: dict[str, Any]) -> None:
        global _SPEC
        # Publish before constructing the executor: workers fork lazily
        # on submit, but never before this point.
        _SPEC = spec
        self.workers = workers
        self.token = token
        self.spec = spec  # strong ref keeps the token's ids unambiguous
        #: True until the pool has completed its first dispatch: a
        #: fresh pool still has to fork and warm its workers, so the
        #: first generation runs its first chunk inline in the parent
        #: (see run_cells) instead of idling behind the fork latency.
        self.fresh = True
        self.executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=mp.get_context("fork"))

    @classmethod
    def acquire(cls, workers: int, spec: dict[str, Any]) -> "WorkerPool":
        token = _spec_token(spec)
        pool = cls._instance
        if (pool is not None and pool.workers == workers
                and pool.token == token):
            _TELEMETRY.inc("parallel.pool_reuse")
            return pool
        if pool is not None:
            pool.shutdown()
        pool = cls(workers, token, spec)
        cls._instance = pool
        _TELEMETRY.inc("parallel.pool_forks")
        return pool

    @classmethod
    def current(cls) -> "WorkerPool | None":
        return cls._instance

    def shutdown(self, *, cancel_futures: bool = False) -> None:
        global _SPEC
        if WorkerPool._instance is self:
            WorkerPool._instance = None
            _SPEC = None
        self.executor.shutdown(wait=False, cancel_futures=cancel_futures)


def shutdown_pool() -> None:
    """Explicitly invalidate the warm pool (tests, benchmarks, atexit)."""
    pool = WorkerPool._instance
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_pool)


def _suite_summaries(spec: dict[str, Any], x: float, seed: int,
                     audit: bool = False) -> "dict[str, PolicySummary]":
    """One (cell, seed) suite under *spec*, with in-worker retries.

    The worker-side twin of the runner's ``compute_unit``: the chaos
    hook fires before the suite, the per-unit SIGALRM deadline (when
    ``unit_timeout`` is in the spec) bounds its wall clock — pool
    workers run tasks on their main thread, so the alarm is armable —
    and retries are *classified*: deterministic failures get a zero
    budget and fail fast.
    """
    from repro.experiments.runner import run_suite

    processor_factory = spec["processor_factory"]
    policy_factory = spec["policy_factory"]
    faults_factory = spec["faults_factory"]
    timeout = spec.get("unit_timeout")
    attempt = 0
    while True:
        try:
            with unit_deadline(timeout, x=float(x), seed=seed):
                # Inside the deadline, so an injected hang is
                # interruptible exactly like a real one.
                _chaos.on_unit_start(float(x), seed)
                if _PROFILER.enabled:
                    with _PROFILER.phase("unit.workload"):
                        taskset, model = spec["make_workload"](x, seed)
                else:
                    taskset, model = spec["make_workload"](x, seed)
                processor = (processor_factory(x) if processor_factory
                             else ideal_processor())
                with _PROFILER.sample_unit():
                    suite = run_suite(
                        taskset, spec["policy_names"], processor, model,
                        horizon=spec["horizon"],
                        overhead_aware=spec["overhead_aware"],
                        allow_misses=spec["allow_misses"],
                        policy_factory=(policy_factory(x)
                                        if policy_factory else None),
                        faults=(faults_factory(x, seed)
                                if faults_factory else None),
                        workload_seed=seed,
                        audit=audit)
            return suite.policy_summaries()
        except Exception as exc:
            if isinstance(exc, UnitTimeoutError):
                _TELEMETRY.inc("resilience.unit_timeouts")
            if attempt >= retry_budget(exc, spec["max_retries"]):
                raise
            _TELEMETRY.inc("sweep.retries")
            _TELEMETRY.emit("sweep.retry", x=x, seed=seed,
                            attempt=attempt)
            _time.sleep(spec["retry_backoff"] * (2.0 ** attempt))
            attempt += 1


def _batch_prefetch(
    spec: dict[str, Any],
    chunk: list[tuple[int, int, float, int, int]],
) -> dict[int, Any]:
    """Vectorize a chunk's same-cell unit groups; ``{pos: summaries}``.

    Only fires when the sweep spec decided the run is batch-eligible
    (``spec["batch"]``), and only for groups of units sharing one
    (cell, x) with at least ``spec["batch_min_seeds"]`` members — the
    measured crossover below which numpy dispatch overhead beats the
    vectorization win.  Returns only the seeds the batch engine
    reproduced bitwise; everything else (including any error raised
    inside the batch engine — an optimisation must never take a chunk
    down) is left for the scalar per-unit path.
    """
    from repro.sim.batch import run_batch_suites

    min_seeds = spec.get("batch_min_seeds", 2)
    groups: dict[tuple[int, float], list[tuple[int, int]]] = {}
    for pos, index, x, _seed_pos, seed in chunk:
        groups.setdefault((index, x), []).append((pos, seed))
    processor_factory = spec["processor_factory"]
    prefetched: dict[int, Any] = {}
    for (_index, x), members in groups.items():
        if len(members) < min_seeds:
            continue
        try:
            processor = (processor_factory(x) if processor_factory
                         else ideal_processor())
            rows = run_batch_suites(
                x, [seed for _pos, seed in members],
                make_workload=spec["make_workload"],
                policy_names=spec["policy_names"],
                processor=processor, horizon=spec["horizon"],
                allow_misses=spec["allow_misses"])
        except Exception:
            continue
        if rows is None:
            continue
        for (pos, _seed), row in zip(members, rows):
            if row is not None:
                prefetched[pos] = row
    return prefetched


def _run_chunk(
    chunk: list[tuple[int, int, float, int, int]],
) -> tuple[list[tuple[int, Any, Exception | None]], dict | None]:
    """Run one chunk of ``(pos, index, x, seed_pos, seed)`` units.

    Executed inside a forked worker.  Returns ``(outcomes, meta)``:
    ``(pos, summaries, error)`` outcomes in unit order — a unit that
    still fails after its in-worker retries is reported as a *value*
    (so the parent can pick the lowest-ordered failure across all
    chunks) and ends the chunk, as a serial sweep would not have run
    anything after its first failure either — plus, when telemetry or
    profiling is enabled (workers inherit the parent's registry state
    at fork time), a meta dict carrying the worker pid, the chunk's
    wall time, and the worker's telemetry/profile *deltas* for this
    chunk, which the parent merges in its fold loop so parallel
    counts and phase attributions equal serial ones.
    """
    spec = _SPEC
    if spec is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the sweep spec was set")
    tele = _TELEMETRY
    before = tele.snapshot() if tele.enabled else None
    prof = _PROFILER
    prof_before = None
    if prof.enabled:
        # The chunk envelope is this worker's root frame: everything
        # the worker does nests inside it, and its *self* time (spec
        # lookup, prefetch plumbing, outcome packing) is the chunk's
        # IPC overhead.  For an inline chunk (run in the parent) the
        # frame nests under the parent's ``sweep.execute`` instead and
        # the delta below is skipped by ``merge_meta(inline=True)``.
        prof_before = prof.snapshot()
        prof.push("worker.chunk")
    started = _time.perf_counter()
    t0 = _time.time()
    audit_every = spec.get("audit_every")
    n_seeds = spec.get("n_seeds", 0)
    quarantining = spec.get("on_failure") == "quarantine"
    prefetched = _batch_prefetch(spec, chunk) if spec.get("batch") else {}
    outcomes: list[tuple[int, Any, Exception | None]] = []
    for pos, index, x, seed_pos, seed in chunk:
        # Same unit positions as the serial loop, so spot-audit
        # selection is identical in both paths.
        audit = (audit_every is not None
                 and (index * n_seeds + seed_pos) % audit_every == 0)
        if pos in prefetched and not audit:
            outcomes.append((pos, prefetched[pos], None))
            continue
        try:
            summaries = _suite_summaries(spec, x, seed, audit=audit)
        except Exception as exc:
            outcomes.append((pos, None, exc))
            if quarantining:
                # The parent will quarantine this unit and keep the
                # sweep going, so the chunk keeps going too.
                continue
            break
        outcomes.append((pos, summaries, None))
    if prof.enabled:
        prof.pop()
    meta = None
    if tele.enabled or prof.enabled:
        meta = {
            "pid": os.getpid(),
            "units": len(outcomes),
            "wall_s": _time.perf_counter() - started,
            "t0": t0,
            "t1": _time.time(),
        }
        if tele.enabled:
            meta["telemetry"] = tele.delta_since(before)
        if prof.enabled:
            meta["profile"] = prof.delta_since(prof_before)
    return outcomes, meta


#: Thunk table for :func:`map_forked`, inherited by forked workers.
_CALLS: list[Any] | None = None


def _call_indexed(index: int) -> Any:
    calls = _CALLS
    if calls is None:  # pragma: no cover - guards misuse, not a code path
        raise RuntimeError("worker forked before the call table was set")
    return calls[index]()


def map_forked(calls: "list[Any]", workers: int) -> list[Any]:
    """Evaluate zero-argument callables on forked workers, in order.

    The generic sibling of :func:`run_cells` for callers (e.g. the
    ``simulate`` CLI running several policies) that just want N
    independent computations fanned out.  Results come back in call
    order; the first failing call's exception propagates.  Falls back
    to a serial loop when forking is unavailable or ``workers <= 1``.
    The call table is published and cleared in a shape that cannot
    leak :data:`_CALLS` even when constructing the pool itself raises
    (e.g. fork failure under memory pressure).
    """
    if workers <= 1 or len(calls) <= 1 or not fork_available():
        return [call() for call in calls]
    global _CALLS
    _CALLS = calls
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=mp.get_context("fork"))
    except BaseException:
        _CALLS = None
        raise
    try:
        with pool:
            futures = [pool.submit(_call_indexed, i)
                       for i in range(len(calls))]
            return [future.result() for future in futures]
    finally:
        _CALLS = None


def _pool_pids() -> list[int]:
    """The parent pid plus every live pool worker pid — what a
    progress-stream heartbeat liveness-probes while a sweep is
    dispatching (:mod:`repro.telemetry.progress`)."""
    pids = [os.getpid()]
    pool = WorkerPool.current()
    if pool is not None:
        processes = getattr(pool.executor, "_processes", None) or {}
        pids.extend(int(pid) for pid in processes.keys())
    return pids


def _kill_pool_workers(pool: "WorkerPool") -> int:
    """SIGKILL every live worker of *pool* — the watchdog's hammer.

    Reaches into the executor's process table (there is no public kill
    API); the dead workers surface as ``BrokenProcessPool`` on every
    in-flight future, which routes recovery through the same
    supervision path as a genuine worker crash.
    """
    processes = getattr(pool.executor, "_processes", None)
    killed = 0
    for process in list((processes or {}).values()):
        try:
            process.kill()
            killed += 1
        except Exception:  # pragma: no cover - racing an exiting worker
            pass
    return killed


def run_cells(
    pending: list[tuple[int, float]],
    seeds: list[int],
    *,
    spec: dict[str, Any],
    workers: int,
    checkpointer: "SweepCheckpointer | None" = None,
    cache: "SuiteCache | None" = None,
    unit_key: "Callable[[float, int], str] | None" = None,
    chunk_size: int | None = None,
    quarantine_store: "QuarantineStore | None" = None,
    shutdown: "GracefulShutdown | None" = None,
) -> "dict[int, SweepCell]":
    """Compute the *pending* (index, x) cells on the warm worker pool.

    Returns ``{index: SweepCell}`` with each cell's suites folded in
    seed order — the exact aggregation the serial loop performs — and
    checkpoints every completed cell through *checkpointer* as soon as
    its last seed lands, regardless of what order chunks complete in.

    With *cache* (and its *unit_key* fingerprint function) set, every
    unit is looked up before dispatch — hits fold directly in the
    parent, only misses are chunked out to workers, and every computed
    summary is persisted the moment it lands.  A fully cached sweep
    never touches the pool at all.

    The dispatch loop is **supervised**.  A worker death (OOM kill,
    segfault, chaos crash) breaks the whole pool — every in-flight
    future raises ``BrokenProcessPool`` and completed results of the
    dying chunks are lost — so the parent rebuilds the pool and
    re-dispatches only the unresolved units, escalating the dispatch
    shape to attribute the crash:

    1. **chunked** (normal) — re-dispatch lost units in fresh chunks;
    2. **isolated** — one unit per chunk, still parallel: the next
       break narrows the suspects to single units;
    3. **solo** — one unit in flight at a time: a break now names the
       poison unit definitively, and after ``max_retries`` solo
       crashes it fails as :class:`~repro.errors.WorkerCrashError`
       (quarantined under ``on_failure="quarantine"``).

    When the spec carries a ``unit_timeout``, a parent-side watchdog
    backs up the in-worker SIGALRM deadline: if *nothing* completes
    within a stall budget sized to the largest in-flight chunk, the
    workers are presumed wedged beyond the alarm's reach (hung in
    non-Python code) and killed, which routes recovery through the
    same escalation.  Units are pure functions of their seeds, so
    re-dispatched work folds byte-identically.

    *shutdown* (when draining) cancels chunks that have not started,
    finishes the ones in flight, and leaves the rest for a resumed
    run; the caller raises :class:`~repro.errors.SweepInterrupted`.
    """
    from repro.experiments.runner import SweepCell

    # The sweep's live progress stream, when one is attached.  All
    # per-unit events are emitted here in the *parent* (workers cannot
    # write to the pid-pinned stream), which is what keeps the serial
    # and parallel event sets equivalent.
    stream = _progress.current()
    if stream is not None:
        stream.pid_provider = _pool_pids

    xs = dict(pending)
    suites: dict[int, dict[int, Any]] = {index: {} for index, _ in pending}
    quarantined: dict[int, dict[int, dict]] = {
        index: {} for index, _ in pending}
    cells: dict[int, SweepCell] = {}
    on_failure = spec.get("on_failure", "raise")
    max_retries = spec.get("max_retries", 0)
    retry_backoff = spec.get("retry_backoff", 0.25)
    unit_timeout = spec.get("unit_timeout")
    # Effective parallelism.  On a one-CPU host (pinned CI containers)
    # forked workers only timeshare against the parent while still
    # paying fork, pickling and IPC — pure overhead — so dispatch
    # degrades to running every chunk inline in the parent.  A chaos
    # plan forces real dispatch regardless: injected crashes and hangs
    # must land in expendable workers, and the supervision path they
    # exercise is exactly what chaos runs exist to test.
    inline_only = default_workers() <= 1 and spec.get("chaos") is None

    def cell_complete(index: int) -> bool:
        return (index in suites
                and (len(suites[index]) + len(quarantined[index])
                     == len(seeds)))

    def fold(index: int) -> None:
        per_cell = suites.pop(index)
        quar = quarantined.pop(index)
        cell = SweepCell(x=float(xs[index]))
        # Seed order interleaves successes and quarantine records
        # exactly as the serial loop met them, so partial cells fold
        # byte-identically too.
        for seed_pos in range(len(seeds)):
            if seed_pos in per_cell:
                cell.record_summaries(per_cell[seed_pos])
            else:
                cell.quarantined.append(quar[seed_pos])
        if checkpointer is not None:
            checkpointer.store(index, cell)
        cells[index] = cell
        if stream is not None:
            stream.cell_done(index=index, x=float(xs[index]),
                             quarantined=len(cell.quarantined))

    # Consult the cache before dispatch; positions number only the
    # units that actually need computing, in index-major seed order —
    # the order a serial (cache-consulting) sweep would hit them.
    units: list[tuple[int, int, float, int, int]] = []
    keys: list[str | None] = []
    for index, x in pending:
        for seed_pos, seed in enumerate(seeds):
            summaries = None
            key = None
            if cache is not None and unit_key is not None:
                key = unit_key(x, seed)
                summaries = cache.get(key)
            if summaries is not None:
                suites[index][seed_pos] = summaries
                if stream is not None:
                    stream.unit_done(index=index, x=float(x),
                                     seed_pos=seed_pos, seed=seed,
                                     status="cached")
            else:
                units.append((len(units), index, x, seed_pos, seed))
                keys.append(key)
    for index, _x in pending:
        if cell_complete(index):
            fold(index)
    if not units:
        return cells

    remaining: set[int] = set(range(len(units)))
    crash_counts: dict[int, int] = {}
    best_err: tuple[int, BaseException] | None = None

    def stall_budget(max_units: int) -> float | None:
        """How long zero completions can mean 'working' not 'wedged'.

        Worst case for one honest in-flight chunk: every unit burns
        its full deadline on every attempt plus the full backoff
        ladder — beyond that, nothing finishing means no alarm is
        firing, i.e. a worker is hung outside SIGALRM's reach.
        """
        if not unit_timeout:
            return None
        backoff = sum(retry_backoff * 2.0 ** a for a in range(max_retries))
        return (max_units * ((1 + max_retries) * unit_timeout + backoff)
                + 5.0)

    def resolve(pos: int, summaries: Any, err: BaseException | None) -> None:
        """Settle one unit outcome: fold, quarantine, or note failure."""
        nonlocal best_err
        if pos not in remaining:
            return  # stale duplicate from a superseded generation
        _, index, x, seed_pos, seed = units[pos]
        if err is not None:
            if on_failure != "quarantine":
                # Stays unresolved: the sweep dies on the lowest-
                # ordered failure, exactly as the serial loop would.
                if best_err is None or pos < best_err[0]:
                    best_err = (pos, err)
                return
            remaining.discard(pos)
            record = QuarantinedCell.from_failure(
                err, index=index, x=float(x), seed=seed,
                seed_pos=seed_pos,
                attempts=1 + retry_budget(err, max_retries),
                fingerprint=keys[pos])
            if quarantine_store is not None:
                quarantine_store.record(record)
            _TELEMETRY.inc("resilience.quarantined")
            quarantined[index][seed_pos] = record.to_payload()
            if stream is not None:
                stream.unit_done(index=index, x=float(x),
                                 seed_pos=seed_pos, seed=seed,
                                 status="quarantined",
                                 error_type=record.error_type,
                                 classification=record.classification)
        else:
            if best_err is not None and pos > best_err[0]:
                # Beyond the failure point: a serial sweep would never
                # have run this unit; drop the result.
                return
            remaining.discard(pos)
            if cache is not None and keys[pos] is not None:
                cache.put(keys[pos], summaries)
            suites[index][seed_pos] = summaries
            if stream is not None:
                stream.unit_done(index=index, x=float(x),
                                 seed_pos=seed_pos, seed=seed,
                                 status="computed")
        if cell_complete(index):
            fold(index)

    def merge_meta(meta: dict, *, inline: bool = False) -> None:
        # Fold the worker's chunk deltas into the parent registries the
        # moment the chunk lands — the telemetry sibling of the
        # in-seed-order cell folding.  An *inline* chunk ran in the
        # parent process, so its counters and phase frames already
        # landed in the parent registries directly; merging its deltas
        # again would double count — only the chunk bookkeeping folds.
        if not inline:
            if _PROFILER.enabled and "profile" in meta:
                _PROFILER.merge_snapshot(meta["profile"])
            if _TELEMETRY.enabled and "telemetry" in meta:
                _TELEMETRY.merge_snapshot(meta["telemetry"])
        if not _TELEMETRY.enabled:
            return
        _TELEMETRY.record_worker(meta["pid"], chunks=1,
                                 units=meta["units"],
                                 busy_s=meta["wall_s"])
        _TELEMETRY.inc("parallel.chunks_completed")
        _TELEMETRY.inc("parallel.units_computed", meta["units"])
        _TELEMETRY.observe("parallel.chunk_latency_s", meta["wall_s"])
        # The chunk's wall-clock window, for the sweep timeline's
        # worker lanes (repro.trace.timeline).
        _TELEMETRY.emit("parallel.chunk", pid=meta["pid"],
                        units=meta["units"], wall_s=meta["wall_s"],
                        t0=meta.get("t0"), t1=meta.get("t1"),
                        inline=inline)

    def consume(pool: WorkerPool,
                chunk_futures: "dict[Any, int]",
                budget: float | None) -> bool:
        """Drain one generation's futures; True if the pool broke."""
        broke = False
        not_done = set(chunk_futures)
        while not_done:
            if _PROFILER.enabled:
                # Parent-side blocking on worker results is the
                # sweep's idle budget — kept distinct from the fold
                # work below so "waiting on the pool" never masquerades
                # as orchestration cost.
                _PROFILER.push("pool.idle")
                try:
                    done, not_done = wait(not_done, timeout=budget,
                                          return_when=FIRST_COMPLETED)
                finally:
                    _PROFILER.pop()
            else:
                done, not_done = wait(not_done, timeout=budget,
                                      return_when=FIRST_COMPLETED)
            if not done:
                # Watchdog: nothing landed inside the stall budget
                # even though every unit carries a deadline — a worker
                # is wedged beyond SIGALRM's reach.  Kill the workers;
                # the dead pool surfaces as BrokenProcessPool on the
                # next wait and recovery escalates like any crash.
                killed = _kill_pool_workers(pool)
                _TELEMETRY.inc("resilience.watchdog_kills")
                _TELEMETRY.emit("resilience.watchdog_kill",
                                killed=killed, budget=budget)
                if stream is not None:
                    stream.emit("resilience.watchdog_kill",
                                killed=killed, budget=budget,
                                mode=mode)
                continue
            with _PROFILER.phase("ipc.fold"):
                for future in done:
                    try:
                        outcomes, meta = future.result()
                    except BaseException as exc:
                        # Worker death: the chunk's results are gone;
                        # its units stay unresolved for the next
                        # generation.
                        broke = True
                        if stream is not None:
                            stream.emit("resilience.worker_crash",
                                        mode=mode,
                                        error_type=type(exc).__name__)
                        continue
                    if meta is not None:
                        merge_meta(meta)
                    for pos, summaries, err in outcomes:
                        resolve(pos, summaries, err)
            if shutdown is not None and shutdown.requested:
                # Draining: drop whatever has not started (their units
                # stay unresolved, for the resumed run) but finish
                # what is in flight.
                for future in list(not_done):
                    if future.cancel():
                        not_done.discard(future)
            if best_err is not None:
                # Chunks starting beyond the lowest known failure
                # cannot lower it: cancel what has not started, keep
                # draining the rest (a still-running earlier chunk may
                # fail lower).
                for future in list(not_done):
                    if (chunk_futures[future] > best_err[0]
                            and future.cancel()):
                        not_done.discard(future)
        return broke

    mode = "chunked"
    while remaining:
        if shutdown is not None:
            shutdown.raise_if_requested(
                completed_cells=len(cells),
                checkpoint_dir=(checkpointer.directory
                                if checkpointer is not None else None))
        todo = sorted(remaining)
        if best_err is not None:
            # Only units below the failure point can still matter (a
            # lower-ordered unit may fail lower); everything else is
            # moot — the sweep is going to raise.
            todo = [pos for pos in todo if pos < best_err[0]]
        if not todo:
            break

        pool = WorkerPool.acquire(workers, spec)
        broke = False
        if mode == "solo":
            # One unit in flight at a time: a pool break now names the
            # poison unit definitively, so crashes are counted against
            # its (transient) retry budget and then given up on.
            budget = stall_budget(1)
            for pos in todo:
                if pos not in remaining:
                    continue
                if shutdown is not None and shutdown.requested:
                    break
                if best_err is not None and pos > best_err[0]:
                    break
                pool = WorkerPool.acquire(workers, spec)
                try:
                    with _PROFILER.phase("ipc.dispatch"):
                        future = pool.executor.submit(_run_chunk,
                                                      [units[pos]])
                    with _PROFILER.phase("pool.idle"):
                        outcomes, meta = future.result(timeout=budget)
                except _FuturesTimeout:
                    killed = _kill_pool_workers(pool)
                    _TELEMETRY.inc("resilience.watchdog_kills")
                    _TELEMETRY.emit("resilience.watchdog_kill",
                                    killed=killed, budget=budget)
                    if stream is not None:
                        stream.emit("resilience.watchdog_kill",
                                    killed=killed, budget=budget,
                                    mode="solo")
                    crashed = True
                except BaseException as exc:
                    crashed = True
                    if stream is not None:
                        stream.emit("resilience.worker_crash",
                                    mode="solo",
                                    error_type=type(exc).__name__)
                else:
                    crashed = False
                    if meta is not None:
                        merge_meta(meta)
                    for outcome in outcomes:
                        resolve(*outcome)
                if crashed:
                    pool.shutdown(cancel_futures=True)
                    _TELEMETRY.inc("resilience.pool_rebuilds")
                    if stream is not None:
                        stream.emit("resilience.pool_rebuild",
                                    mode="solo",
                                    unresolved=len(remaining))
                    crash_counts[pos] = crash_counts.get(pos, 0) + 1
                    if crash_counts[pos] > max_retries:
                        _, index, x, seed_pos, seed = units[pos]
                        resolve(pos, None, WorkerCrashError(
                            f"unit x={float(x):g} seed={seed} took its "
                            f"worker down {crash_counts[pos]} time(s) "
                            f"in solo dispatch",
                            x=float(x), workload_seed=seed,
                            crashes=crash_counts[pos]))
                    # Under budget: the unit stays in `remaining` and
                    # the outer loop re-dispatches it (chaos-injected
                    # crashes are at-most-once, so the re-run is the
                    # recovery).
            continue

        size = 1 if mode == "isolated" else chunk_size
        plans = plan_chunks(len(todo), workers, size)
        inline_plans: list[list[int]] = []
        if inline_only:
            # Serial-first crossover, degenerate case: with one
            # schedulable CPU the crossover point is never reached —
            # forked workers would only timeshare against the parent —
            # so every chunk runs inline and the pool never forks.
            inline_plans = [todo[start:stop] for start, stop in plans]
            plans = []
        elif (pool.fresh and len(plans) > 1
                and spec.get("chaos") is None):
            # Cold pool: the workers still have to fork and warm up
            # (interpreter pages, first-submit latency), time a serial
            # sweep would already spend computing.  The parent runs the
            # first chunk itself while the pool warms behind it, so a
            # cold parallel sweep is never slower than the serial loop.
            # Skipped under an installed chaos plan — injected crashes
            # must land in (expendable) workers, never in the parent.
            inline_plans = [todo[plans[0][0]:plans[0][1]]]
            plans = plans[1:]
        pool.fresh = False
        chunk_futures: dict[Any, int] = {}
        try:
            with _PROFILER.phase("ipc.dispatch"):
                for start, stop in plans:
                    positions = todo[start:stop]
                    chunk_futures[pool.executor.submit(
                        _run_chunk,
                        [units[p] for p in positions])] = positions[0]
        except BrokenProcessPool:
            broke = True  # pool died mid-submit; drain what went out
        if _TELEMETRY.enabled:
            _TELEMETRY.inc("parallel.chunks_submitted",
                           len(chunk_futures))
            _TELEMETRY.emit("parallel.dispatch",
                            chunks=len(chunk_futures), units=len(todo),
                            workers=workers, mode=mode,
                            inline_units=sum(map(len, inline_plans)))
        if stream is not None:
            stream.emit("chunk.dispatch", chunks=len(chunk_futures),
                        units=len(todo), workers=workers, mode=mode,
                        inline_units=sum(map(len, inline_plans)))
        for positions in inline_plans:
            # _SPEC is published (the pool was just acquired), so the
            # worker entry point runs unchanged in the parent process;
            # its telemetry delta merges like any worker chunk's.
            # Chunk granularity keeps drain and lowest-failure
            # semantics: a requested shutdown or a known lower-ordered
            # failure stops the inline stream between chunks, exactly
            # where the serial loop would stop.
            if shutdown is not None and shutdown.requested:
                break
            if best_err is not None and positions[0] > best_err[0]:
                break
            outcomes, meta = _run_chunk([units[p] for p in positions])
            if meta is not None:
                merge_meta(meta, inline=True)
            for pos, summaries, err in outcomes:
                resolve(pos, summaries, err)
        max_units = max((len(todo[start:stop]) for start, stop in plans),
                        default=1)
        broke = consume(pool, chunk_futures, stall_budget(max_units)) or broke
        if broke:
            # The broken executor is unusable; drop it (a fresh pool
            # forks on the next acquire) and tighten the dispatch
            # shape so repeated breaks converge on the culprit.
            pool.shutdown(cancel_futures=True)
            _TELEMETRY.inc("resilience.pool_rebuilds")
            _TELEMETRY.emit("resilience.pool_rebuild", mode=mode,
                            unresolved=len(remaining))
            next_mode = "isolated" if mode == "chunked" else "solo"
            if stream is not None:
                stream.emit("resilience.pool_rebuild", mode=mode,
                            unresolved=len(remaining))
                stream.emit("resilience.escalation", from_mode=mode,
                            to_mode=next_mode,
                            unresolved=len(remaining))
            mode = next_mode

    if best_err is not None:
        # Cancelling futures never stops already-running workers; the
        # pool itself is shut down (and the warm singleton dropped) so
        # no stale worker outlives the failed sweep.
        pool = WorkerPool.current()
        if pool is not None:
            pool.shutdown(cancel_futures=True)
        raise best_err[1]
    return cells
