"""Markdown report generation from exported experiment results.

``repro run all --out results/`` leaves one JSON per experiment; this
module folds them back into a single human-readable markdown report —
the artifact a reproduction hand-off actually wants.  Only the JSON
payloads are read, so a report can be rebuilt long after the runs.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.io import read_json

#: Display order for known experiments; unknown ids sort after these.
_CANONICAL_ORDER = [
    "EXP-T1", "EXP-T2", "EXP-T3",
    "EXP-F1", "EXP-F2", "EXP-F3", "EXP-F4", "EXP-F5", "EXP-F6",
    "EXP-F7", "EXP-F8", "EXP-F9", "EXP-F10", "EXP-F11", "EXP-F12",
]


def _order_key(experiment_id: str) -> tuple:
    try:
        return (0, _CANONICAL_ORDER.index(experiment_id))
    except ValueError:
        return (1, experiment_id)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _figure_section(payload: dict) -> list[str]:
    """Render a figure payload (series over x) as a pivoted table."""
    rows = payload["rows"]
    series_names: list[str] = []
    xs: list[float] = []
    cells: dict[tuple[float, str], float] = {}
    for row in rows:
        name = row["series"]
        x = float(row["x"])
        if name not in series_names:
            series_names.append(name)
        if x not in xs:
            xs.append(x)
        cells[(x, name)] = row["mean"]
    xs.sort()
    lines = ["| x | " + " | ".join(series_names) + " |",
             "|---" * (len(series_names) + 1) + "|"]
    for x in xs:
        values = [
            _format_value(cells[(x, name)]) if (x, name) in cells else ""
            for name in series_names]
        lines.append(f"| {x:g} | " + " | ".join(values) + " |")
    return lines


def _table_section(payload: dict) -> list[str]:
    """Render a table payload's rows directly."""
    rows = payload["rows"]
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key != "experiment" and key not in columns:
                columns.append(key)
    lines = ["| " + " | ".join(columns) + " |",
             "|---" * len(columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(
            _format_value(row.get(c, "")) for c in columns) + " |")
    return lines


def build_report(results_dir: str | Path, *, title: str | None = None) -> str:
    """Assemble a markdown report from every ``*.json`` in *results_dir*."""
    directory = Path(results_dir)
    payloads = []
    for path in sorted(directory.glob("*.json")):
        payload = read_json(path)
        if "experiment" in payload and "rows" in payload:
            payloads.append(payload)
    if not payloads:
        raise ExperimentError(
            f"no experiment JSON exports found in {directory}")
    payloads.sort(key=lambda p: _order_key(p["experiment"]))

    lines = [f"# {title or 'Reproduction results'}", ""]
    lines.append(f"{len(payloads)} experiments; regenerate with "
                 f"`repro run all --out <dir>`.")
    lines.append("")
    for payload in payloads:
        lines.append(f"## {payload['experiment']} — {payload['title']}")
        lines.append("")
        is_figure = payload["rows"] and "series" in payload["rows"][0]
        section = (_figure_section(payload) if is_figure
                   else _table_section(payload))
        lines.extend(section)
        for note in payload.get("notes", []):
            lines.append("")
            lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir: str | Path, output: str | Path,
                 *, title: str | None = None) -> Path:
    """Build the report and write it to *output*."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(build_report(results_dir, title=title))
    return output
