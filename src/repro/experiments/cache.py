"""Persistent content-addressed cache of completed suite results.

A sweep is a pure function of its seeds: one **(cell, seed) suite** is
fully determined by the workload, the parameter value ``x``, the seed,
the policy set, the run scalars and the fault plan.  This module gives
that purity teeth — every completed suite is summarised into the exact
aggregate :class:`~repro.experiments.runner.SweepCell` consumes
(:class:`PolicySummary` per policy) and persisted under a SHA-256
fingerprint of everything that determines it, so re-running a sweep —
or a *different* sweep sharing cells, or the same sweep after a crash
on another machine — replays cache hits instead of re-simulating.

The fingerprint (:func:`suite_fingerprint`) covers:

* a caller-supplied **workload id** naming the workload closure and any
  parameterisation not captured by the keyed scalars (figure drivers
  pass e.g. ``"EXP-F1:u:n=8:bcwc=0.5"``; anything that changes the
  workload, the processor factory or the policy factory MUST change
  the id — closures cannot be hashed, so this is the caller's contract);
* the sweep scalars: ``x``, ``seed``, the policy name list, ``horizon``,
  ``overhead_aware``, ``allow_misses``;
* the full fault plan for the unit (``dataclasses.asdict`` of the
  seeded :class:`~repro.faults.FaultPlan`, or ``None``);
* a **code epoch** — ``repro.__version__`` by default — so a release
  that changes simulation behaviour invalidates every entry at once.

Entries are one JSON file each, sharded by the first two hex digits,
written atomically (temp file + rename) so a killed run never leaves a
readable-but-corrupt entry; unreadable entries read as misses and are
recomputed.  Because :class:`PolicySummary` floats round-trip exactly
through JSON, a cache-hit replay folds into byte-identical cells —
``tests/test_cell_cache.py`` pins that against serial cold runs.

The cache also degrades instead of dying (DESIGN.md §11): a *corrupt*
entry is unlinked on detection (self-healed — it would otherwise
re-hit, and re-count ``cache.corrupt``, on every subsequent run), and
a *failing write* (ENOSPC, permissions) switches the cache to
read-only with a single warning rather than crashing the sweep —
results are recomputed, never lost.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.experiments import chaos as _chaos
from repro.profiling import PROFILER as _PROFILER
from repro.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:
    from repro.faults import FaultPlan

#: Bumped whenever the entry layout or fingerprint payload changes;
#: part of the fingerprint, so old caches read as misses, not errors.
CACHE_SCHEMA = 1


@dataclass(frozen=True)
class PolicySummary:
    """Everything a sweep aggregates from one policy's simulation.

    The serialisable projection of one
    :class:`~repro.sim.results.SimulationResult` that
    :meth:`~repro.experiments.runner.SweepCell.record_summaries`
    consumes — and the unit of both the persistent cache and the
    worker→parent IPC of the parallel executor (returning summaries
    instead of full results keeps the per-chunk pickle tiny).
    """

    normalized: float
    misses: int
    switches: int
    overruns: int
    released: int
    interventions: int
    dispatches: int

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PolicySummary":
        return cls(
            normalized=float(payload["normalized"]),
            misses=int(payload["misses"]),
            switches=int(payload["switches"]),
            overruns=int(payload["overruns"]),
            released=int(payload["released"]),
            interventions=int(payload["interventions"]),
            dispatches=int(payload["dispatches"]),
        )


def fault_plan_payload(plan: "FaultPlan | None") -> dict | None:
    """A stable, JSON-safe rendering of a fault plan (or ``None``)."""
    return None if plan is None else asdict(plan)


def suite_fingerprint(
    *,
    workload_id: str,
    x: float,
    seed: int,
    policies: Sequence[str],
    horizon: float,
    overhead_aware: bool = False,
    allow_misses: bool = False,
    faults: "FaultPlan | None" = None,
    code_epoch: str | None = None,
) -> tuple[str, dict]:
    """Content address of one (cell, seed) suite.

    Returns ``(digest, payload)``: the SHA-256 hex digest used as the
    cache key, and the canonical payload it hashes (embedded in the
    entry for post-mortem inspection).
    """
    if code_epoch is None:
        from repro import __version__ as code_epoch
    payload = {
        "schema": CACHE_SCHEMA,
        "code_epoch": str(code_epoch),
        "workload_id": str(workload_id),
        "x": float(x),
        "seed": int(seed),
        "policies": [str(name) for name in policies],
        "horizon": float(horizon),
        "overhead_aware": bool(overhead_aware),
        "allow_misses": bool(allow_misses),
        "faults": fault_plan_payload(faults),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest, payload


class SuiteCache:
    """Directory of content-addressed suite summaries.

    ``get``/``put`` are the whole interface the sweep paths use; both
    are safe under concurrent sweeps sharing a directory (entries are
    immutable once written, writes are atomic renames, and two writers
    racing on one key write identical bytes by construction).  The
    ``hits``/``misses``/``writes`` counters make cache behaviour
    assertable in tests and visible in benchmarks.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.self_healed = 0
        self.write_errors = 0
        #: Set after the first failed write: the cache keeps serving
        #: hits but stops persisting — degraded, not dead.
        self.read_only = False

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict[str, PolicySummary] | None:
        """The cached suite summaries for *digest*, or ``None``."""
        prof = _PROFILER
        if not prof.enabled:
            return self._get(digest)
        prof.push("cache.lookup")
        try:
            return self._get(digest)
        finally:
            prof.pop()

    def _get(self, digest: str) -> dict[str, PolicySummary] | None:
        path = self._path(digest)
        try:
            text = path.read_text()
        except OSError:
            # Simply absent (or unreadable): the ordinary miss.
            self.misses += 1
            _TELEMETRY.inc("cache.misses")
            return None
        try:
            payload = json.loads(text)
            suite = payload["suite"]
            summaries = {
                str(name): PolicySummary.from_payload(fields)
                for name, fields in suite}
        except (ValueError, KeyError, TypeError):
            # Present but torn or foreign: still a miss, never an
            # error — the suite is recomputed (and rewritten) — but
            # counted separately so a corrupted cache is visible.
            # The shard itself is unlinked (self-healed): left on
            # disk it would re-hit, and re-count as corrupt, on every
            # subsequent run.
            self.misses += 1
            self.corrupt += 1
            _TELEMETRY.inc("cache.misses")
            _TELEMETRY.inc("cache.corrupt")
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # read-only cache dir: stay a per-run miss
            else:
                self.self_healed += 1
                _TELEMETRY.inc("cache.self_healed")
                _TELEMETRY.emit("cache.self_heal", path=str(path))
            return None
        self.hits += 1
        _TELEMETRY.inc("cache.hits")
        return summaries

    def put(self, digest: str,
            summaries: Mapping[str, PolicySummary],
            key_payload: Mapping | None = None) -> None:
        """Persist *summaries* under *digest*, atomically.

        The policy order is stored as an explicit list of pairs — it is
        the fold order :meth:`SweepCell.record_summaries` replays, so
        it must survive serialisation exactly.

        A failing write (full disk, permissions) degrades the cache to
        read-only — one warning, one ``resilience.cache_degraded``
        count — instead of killing the sweep: a cache is an
        accelerator, never a correctness dependency.
        """
        prof = _PROFILER
        if not prof.enabled:
            return self._put(digest, summaries, key_payload)
        prof.push("cache.write")
        try:
            return self._put(digest, summaries, key_payload)
        finally:
            prof.pop()

    def _put(self, digest: str,
             summaries: Mapping[str, PolicySummary],
             key_payload: Mapping | None = None) -> None:
        if self.read_only:
            return
        path = self._path(digest)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": dict(key_payload) if key_payload is not None else None,
            "suite": [[name, summary.to_payload()]
                      for name, summary in summaries.items()],
        }
        tmp = path.with_name(path.name + ".tmp")
        try:
            _chaos.on_artifact_write("cache", path)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry))
            tmp.replace(path)
        except OSError as exc:
            self.write_errors += 1
            self.read_only = True
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            _TELEMETRY.inc("resilience.cache_degraded")
            _TELEMETRY.emit("resilience.cache_degraded", path=str(path),
                            error=str(exc))
            print(f"warning: suite cache degraded to read-only "
                  f"({exc}); results are recomputed, not lost",
                  file=sys.stderr)
            return
        self.writes += 1
        _TELEMETRY.inc("cache.writes")

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.directory.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
