"""Seeded experiment execution: one workload, many policies.

Every experiment in :mod:`repro.experiments.figures` reduces to the
same inner loop — generate (or load) a task set, run the same seeded
workload under every policy, normalise to the no-DVS baseline, and
aggregate across task sets.  That loop lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cpu.processor import Processor
from repro.cpu.profiles import ideal_processor
from repro.errors import ExperimentError
from repro.experiments.config import EXPERIMENT_PERIOD_CHOICES
from repro.policies.base import DvsPolicy
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.tasks.execution import ExecutionModel, model_for_bcwc_ratio
from repro.tasks.generators import generate_taskset
from repro.tasks.taskset import TaskSet
from repro.types import Time


@dataclass
class SuiteResult:
    """Per-policy results for one workload, with the no-DVS baseline."""

    results: dict[str, SimulationResult]
    baseline: SimulationResult

    def normalized(self, policy: str) -> float:
        return self.results[policy].normalized_energy(self.baseline)

    def miss_count(self, policy: str) -> int:
        return len(self.results[policy].deadline_misses)


def run_suite(
    taskset: TaskSet,
    policy_names: Sequence[str],
    processor: Processor,
    execution_model: ExecutionModel,
    horizon: Time,
    *,
    overhead_aware: bool = False,
    allow_misses: bool = False,
    policy_factory: Callable[[str], DvsPolicy] | None = None,
) -> SuiteResult:
    """Run one workload under every policy (plus the no-DVS baseline)."""
    factory = policy_factory or (
        lambda name: make_policy(name, overhead_aware=overhead_aware))
    results: dict[str, SimulationResult] = {}
    baseline = simulate(taskset, processor, make_policy("none"),
                        execution_model, horizon=horizon,
                        allow_misses=allow_misses)
    results["none"] = baseline
    for name in policy_names:
        if name == "none":
            continue
        results[name] = simulate(taskset, processor, factory(name),
                                 execution_model, horizon=horizon,
                                 allow_misses=allow_misses)
    return SuiteResult(results=results, baseline=baseline)


@dataclass
class SweepCell:
    """Aggregated normalised energies for one parameter value."""

    x: float
    normalized: dict[str, list[float]] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    switches: dict[str, list[int]] = field(default_factory=dict)

    def record(self, suite: SuiteResult) -> None:
        for name, result in suite.results.items():
            self.normalized.setdefault(name, []).append(
                suite.normalized(name))
            self.misses[name] = (self.misses.get(name, 0)
                                 + len(result.deadline_misses))
            self.switches.setdefault(name, []).append(result.switch_count)


def taskset_seeds(master_seed: int, count: int) -> list[int]:
    """Derive *count* independent task-set seeds from one master seed."""
    rng = np.random.default_rng(master_seed)
    return [int(s) for s in rng.integers(0, 2**62, size=count)]


def standard_taskset(n_tasks: int, utilization: float, seed: int) -> TaskSet:
    """The experiment workload generator: UUniFast on the period grid."""
    return generate_taskset(
        n_tasks, utilization, np.random.default_rng(seed),
        period_choices=EXPERIMENT_PERIOD_CHOICES)


def sweep(
    xs: Sequence[float],
    make_workload: Callable[[float, int], tuple[TaskSet, ExecutionModel]],
    policy_names: Sequence[str],
    *,
    n_tasksets: int = 10,
    master_seed: int = 2002,
    horizon: Time,
    processor_factory: Callable[[float], Processor] | None = None,
    overhead_aware: bool = False,
    allow_misses: bool = False,
) -> list[SweepCell]:
    """The generic experiment sweep.

    For each value in *xs*, *make_workload(x, seed)* builds a seeded
    (task set, execution model) pair; the same pair runs under every
    policy; aggregation across ``n_tasksets`` seeds fills one
    :class:`SweepCell`.  *processor_factory* may vary the processor
    with ``x`` (used by the discrete-levels and overhead figures).
    """
    if not xs:
        raise ExperimentError("sweep needs at least one x value")
    cells = []
    for x in xs:
        cell = SweepCell(x=float(x))
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset, model = make_workload(float(x), seed)
            processor = (processor_factory(float(x))
                         if processor_factory else ideal_processor())
            suite = run_suite(taskset, policy_names, processor, model,
                              horizon=horizon,
                              overhead_aware=overhead_aware,
                              allow_misses=allow_misses)
            cell.record(suite)
        cells.append(cell)
    return cells


def bcwc_model(bcwc: float, seed: int) -> ExecutionModel:
    """The canonical execution model for a bc/wc ratio and seed."""
    return model_for_bcwc_ratio(bcwc, seed=seed)
