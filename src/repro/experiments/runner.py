"""Seeded experiment execution: one workload, many policies.

Every experiment in :mod:`repro.experiments.figures` reduces to the
same inner loop — generate (or load) a task set, run the same seeded
workload under every policy, normalise to the no-DVS baseline, and
aggregate across task sets.  That loop lives here.

Long sweeps are additionally *robust*: :func:`sweep` can checkpoint
each completed cell to disk (atomically), retry transiently failing
cells with exponential backoff, and resume a killed sweep from its
checkpoints — producing results identical to an uninterrupted run,
because every cell is a pure function of its seeds.

On top of that sits the resilience layer (DESIGN.md §11,
:mod:`repro.experiments.resilience`): per-unit wall-clock deadlines
(``unit_timeout=``), transient-vs-deterministic retry classification
(deterministic failures skip the backoff ladder entirely),
poison-unit quarantine (``on_failure="quarantine"`` completes the
sweep with structured :class:`~repro.experiments.resilience.
QuarantinedCell` records instead of dying), graceful SIGINT/SIGTERM
drain (checkpoints and manifests flushed, then
:class:`~repro.errors.SweepInterrupted`), and degraded I/O — a full
disk turns checkpointing/caching off with a warning, never crashes
the sweep.
"""

from __future__ import annotations

import json
import sys
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.cpu.processor import Processor
from repro.cpu.profiles import ideal_processor
from repro.errors import (
    ExperimentError,
    SuiteExecutionError,
    SweepInterrupted,
    UnitTimeoutError,
)
from repro.experiments import chaos as _chaos
from repro.experiments.cache import (
    PolicySummary,
    SuiteCache,
    suite_fingerprint,
)
from repro.experiments.resilience import (
    EXECUTION_DEFAULTS,
    GracefulShutdown,
    QuarantinedCell,
    QuarantineStore,
    retry_budget,
    unit_deadline,
)
from repro.experiments.config import EXPERIMENT_PERIOD_CHOICES
from repro.faults import FaultPlan
from repro.policies.base import DvsPolicy
from repro.policies.registry import make_policy
from repro.sim.batch import (
    BATCH_MODES,
    decide_batch,
    run_batch_suites,
)
from repro.profiling import PROFILER
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.telemetry import TELEMETRY
from repro.telemetry import progress as _progress
from repro.telemetry.manifest import (
    RunManifest,
    git_revision,
    next_manifest_path,
)
from repro.tasks.execution import ExecutionModel, model_for_bcwc_ratio
from repro.tasks.generators import generate_taskset
from repro.tasks.taskset import TaskSet
from repro.types import Time


@dataclass
class SuiteResult:
    """Per-policy results for one workload, with the no-DVS baseline."""

    results: dict[str, SimulationResult]
    baseline: SimulationResult

    def _lookup(self, policy: str) -> SimulationResult:
        try:
            return self.results[policy]
        except KeyError:
            known = ", ".join(sorted(self.results))
            raise ExperimentError(
                f"no results for policy {policy!r}; suite ran: {known}"
            ) from None

    def normalized(self, policy: str) -> float:
        return self._lookup(policy).normalized_energy(self.baseline)

    def miss_count(self, policy: str) -> int:
        return len(self._lookup(policy).deadline_misses)

    def policy_summaries(self) -> dict[str, PolicySummary]:
        """The per-policy aggregates a sweep folds (and caches).

        Exactly the projection :meth:`SweepCell.record_summaries`
        consumes, in the suite's policy order — compact enough to ship
        over worker IPC and persist in the suite cache, rich enough
        that folding it is byte-identical to folding the full suite.
        """
        summaries: dict[str, PolicySummary] = {}
        for name, result in self.results.items():
            metrics = result.policy_metrics
            summaries[name] = PolicySummary(
                normalized=result.normalized_energy(self.baseline),
                misses=len(result.deadline_misses),
                switches=result.switch_count,
                overruns=result.overrun_jobs,
                released=result.jobs_released,
                interventions=int(metrics.get("interventions", 0)),
                dispatches=int(metrics.get("dispatches", 0)))
        return summaries


def run_suite(
    taskset: TaskSet,
    policy_names: Sequence[str],
    processor: Processor,
    execution_model: ExecutionModel,
    horizon: Time,
    *,
    overhead_aware: bool = False,
    allow_misses: bool = False,
    policy_factory: Callable[[str], DvsPolicy] | None = None,
    faults: FaultPlan | None = None,
    workload_seed: int | None = None,
    audit: bool = False,
) -> SuiteResult:
    """Run one workload under every policy (plus the no-DVS baseline).

    Any failure inside :func:`~repro.sim.engine.simulate` is re-raised
    as :class:`~repro.errors.SuiteExecutionError` carrying the policy
    name, the workload seed and the horizon, so one bad cell in a long
    sweep names its own reproduction instead of surfacing a bare
    engine exception with no context.

    ``audit=True`` records a trace for every run and puts it through
    :func:`repro.analysis.audit_trace`; any violation raises a
    :class:`~repro.errors.SuiteExecutionError` naming the broken
    invariants.  Per-policy summaries are unaffected by tracing, so an
    audited suite folds byte-identically to an unaudited one.
    """
    factory = policy_factory or (
        lambda name: make_policy(name, overhead_aware=overhead_aware))

    def run_one(name: str, policy: DvsPolicy) -> SimulationResult:
        try:
            if audit:
                return _audited_run(
                    taskset, processor, policy, execution_model,
                    horizon=horizon, allow_misses=allow_misses,
                    faults=faults, policy_name=name,
                    workload_seed=workload_seed)
            return simulate(taskset, processor, policy,
                            execution_model, horizon=horizon,
                            allow_misses=allow_misses, faults=faults)
        except SuiteExecutionError:
            raise
        except Exception as exc:
            raise SuiteExecutionError(
                f"policy {name!r} failed on workload seed={workload_seed} "
                f"horizon={horizon:g}: {exc}",
                policy=name, workload_seed=workload_seed,
                horizon=float(horizon)) from exc

    results: dict[str, SimulationResult] = {}
    baseline = run_one("none", make_policy("none"))
    results["none"] = baseline
    for name in policy_names:
        if name == "none":
            continue
        results[name] = run_one(name, factory(name))
    if audit:
        TELEMETRY.inc("audit.units")
    return SuiteResult(results=results, baseline=baseline)


def _audited_run(
    taskset: TaskSet,
    processor: Processor,
    policy: DvsPolicy,
    execution_model: ExecutionModel,
    *,
    horizon: Time,
    allow_misses: bool,
    faults: FaultPlan | None,
    policy_name: str,
    workload_seed: int | None,
) -> SimulationResult:
    """One traced run put through the schedule invariant auditor.

    The audit consumes the simulator's own (possibly fault-wrapped)
    workload models, so demands and arrivals are exactly what the
    engine sampled.  On violation the offending trace is dumped as a
    JSONL artifact next to the telemetry manifests (when a manifest
    directory is configured) before the error propagates.
    """
    from repro.analysis.audit import audit_trace, render_violations
    from repro.sim.engine import Simulator

    sim = Simulator(taskset, processor, policy, execution_model,
                    horizon=horizon, record_trace=True,
                    allow_misses=allow_misses, faults=faults)
    result = sim.run()
    violations = audit_trace(result, sim.taskset, sim.processor,
                             sim.execution_model, sim.arrival_model)
    TELEMETRY.inc("audit.runs")
    if violations:
        TELEMETRY.inc("audit.violations", len(violations))
        artifact = ""
        if TELEMETRY.manifest_dir is not None:
            from repro.trace.jsonl import write_trace_jsonl
            path = (TELEMETRY.manifest_dir / "traces" /
                    f"violation_{policy_name}_seed{workload_seed}.jsonl")
            write_trace_jsonl(result, path,
                              label=f"{policy_name} seed={workload_seed}")
            TELEMETRY.emit("audit.violation_trace", path=str(path),
                           policy=policy_name)
            artifact = f" (trace dumped to {path})"
        raise SuiteExecutionError(
            f"schedule audit failed for policy {policy_name!r} "
            f"seed={workload_seed}: "
            f"{render_violations(violations)}{artifact}",
            policy=policy_name, workload_seed=workload_seed,
            horizon=float(horizon))
    return result


@dataclass
class SweepCell:
    """Aggregated normalised energies for one parameter value."""

    x: float
    normalized: dict[str, list[float]] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    switches: dict[str, list[int]] = field(default_factory=dict)
    overruns: dict[str, int] = field(default_factory=dict)
    interventions: dict[str, int] = field(default_factory=dict)
    dispatches: dict[str, int] = field(default_factory=dict)
    released: dict[str, int] = field(default_factory=dict)
    #: Structured records of (cell, seed) units given up on under
    #: ``on_failure="quarantine"`` — the cell's aggregates then cover
    #: only the surviving seeds, and the missing ones are *declared*
    #: here instead of silently absent.  Empty on a clean run.
    quarantined: list[dict] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        """Whether any of this cell's seeds were quarantined."""
        return bool(self.quarantined)

    def record(self, suite: SuiteResult) -> None:
        self.record_summaries(suite.policy_summaries())

    def record_summaries(
            self, summaries: dict[str, PolicySummary]) -> None:
        """Fold one suite's per-policy summaries into the cell.

        The single aggregation path shared by the serial loop, the
        parallel executor's out-of-order folding and cache-hit
        replays — which is what makes all three byte-identical.
        """
        for name, summary in summaries.items():
            self.normalized.setdefault(name, []).append(
                summary.normalized)
            self.misses[name] = (self.misses.get(name, 0)
                                 + summary.misses)
            self.switches.setdefault(name, []).append(summary.switches)
            self.overruns[name] = (self.overruns.get(name, 0)
                                   + summary.overruns)
            self.released[name] = (self.released.get(name, 0)
                                   + summary.released)
            self.interventions[name] = (
                self.interventions.get(name, 0) + summary.interventions)
            self.dispatches[name] = (
                self.dispatches.get(name, 0) + summary.dispatches)

    # -- checkpoint (de)serialisation ----------------------------------

    def to_payload(self) -> dict:
        payload = {
            "x": self.x,
            "normalized": self.normalized,
            "misses": self.misses,
            "switches": self.switches,
            "overruns": self.overruns,
            "interventions": self.interventions,
            "dispatches": self.dispatches,
            "released": self.released,
        }
        if self.quarantined:
            # Only present on partial cells, so clean-run payloads
            # stay byte-identical across versions.
            payload["quarantined"] = self.quarantined
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepCell":
        return cls(
            x=float(payload["x"]),
            normalized={k: [float(v) for v in vs]
                        for k, vs in payload["normalized"].items()},
            misses={k: int(v) for k, v in payload["misses"].items()},
            switches={k: [int(v) for v in vs]
                      for k, vs in payload["switches"].items()},
            overruns={k: int(v)
                      for k, v in payload.get("overruns", {}).items()},
            interventions={k: int(v)
                           for k, v in payload.get("interventions",
                                                   {}).items()},
            dispatches={k: int(v)
                        for k, v in payload.get("dispatches", {}).items()},
            released={k: int(v)
                      for k, v in payload.get("released", {}).items()},
            quarantined=[dict(record)
                         for record in payload.get("quarantined", [])],
        )


def taskset_seeds(master_seed: int, count: int) -> list[int]:
    """Derive *count* independent task-set seeds from one master seed."""
    rng = np.random.default_rng(master_seed)
    return [int(s) for s in rng.integers(0, 2**62, size=count)]


def standard_taskset(n_tasks: int, utilization: float, seed: int) -> TaskSet:
    """The experiment workload generator: UUniFast on the period grid."""
    return generate_taskset(
        n_tasks, utilization, np.random.default_rng(seed),
        period_choices=EXPERIMENT_PERIOD_CHOICES)


class SweepCheckpointer:
    """Atomic per-cell checkpoints for resumable sweeps.

    One JSON file per cell, written to a temporary name and renamed
    into place, so a kill mid-write never leaves a readable-but-corrupt
    checkpoint.  A fingerprint of the sweep parameters is embedded in
    every file; resuming against checkpoints from a *different* sweep
    fails loudly instead of silently mixing results.

    A failing checkpoint write (ENOSPC, permissions) *degrades* the
    checkpointer — one warning, further stores skipped — instead of
    crashing a sweep that can still compute its results in memory.
    """

    def __init__(self, directory: str | Path, fingerprint: dict,
                 resume: bool) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.degraded = False
        if not resume:
            for stale in self.directory.glob("cell_*.json"):
                stale.unlink()

    def _path(self, index: int) -> Path:
        return self.directory / f"cell_{index:04d}.json"

    def load(self, index: int, x: float) -> SweepCell | None:
        path = self._path(index)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # unreadable checkpoint: recompute the cell
        if payload.get("fingerprint") != self.fingerprint:
            raise ExperimentError(
                f"checkpoint {path} belongs to a different sweep "
                f"(fingerprint {payload.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to resume")
        if abs(float(payload["cell"]["x"]) - x) > 1e-9:
            raise ExperimentError(
                f"checkpoint {path} is for x={payload['cell']['x']}, "
                f"expected x={x}; refusing to resume")
        return SweepCell.from_payload(payload["cell"])

    def store(self, index: int, cell: SweepCell) -> None:
        prof = PROFILER
        if not prof.enabled:
            return self._store(index, cell)
        prof.push("supervision.checkpoint")
        try:
            return self._store(index, cell)
        finally:
            prof.pop()

    def _store(self, index: int, cell: SweepCell) -> None:
        if self.degraded:
            return
        if cell.is_partial:
            # A quarantined cell is incomplete by construction; never
            # checkpoint it as done — a resume (after the operator
            # clears the quarantine records) recomputes it.
            return
        path = self._path(index)
        tmp = path.with_suffix(".json.tmp")
        try:
            _chaos.on_artifact_write("checkpoint", path)
            # No sort_keys: the per-policy dicts keep their run order,
            # so a resumed sweep renders policies in exactly the same
            # order as the uninterrupted run.
            tmp.write_text(json.dumps(
                {"fingerprint": self.fingerprint,
                 "cell": cell.to_payload()}))
            tmp.replace(path)
        except OSError as exc:
            self.degraded = True
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            TELEMETRY.inc("resilience.checkpoint_degraded")
            TELEMETRY.emit("resilience.checkpoint_degraded",
                           path=str(path), error=str(exc))
            print(f"warning: checkpointing degraded to off ({exc}); "
                  f"the sweep continues but is no longer resumable",
                  file=sys.stderr)
            return
        TELEMETRY.inc("sweep.checkpoint_writes")
        TELEMETRY.emit("sweep.checkpoint", index=index, x=cell.x)


#: Process-wide default batch mode, set by the CLI's ``--batch`` flag
#: (the batch sibling of ``EXECUTION_DEFAULTS``).  ``sweep(batch=None)``
#: resolves to this.
_BATCH_DEFAULT = "auto"


def set_batch_default(mode: str) -> None:
    """Set the process-wide default batch mode ("auto", "on", "off")."""
    if mode not in BATCH_MODES:
        raise ExperimentError(
            f"batch mode must be one of {BATCH_MODES}, got {mode!r}")
    global _BATCH_DEFAULT
    _BATCH_DEFAULT = mode


def batch_default() -> str:
    """The process-wide default batch mode."""
    return _BATCH_DEFAULT


def sweep(
    xs: Sequence[float],
    make_workload: Callable[[float, int], tuple[TaskSet, ExecutionModel]],
    policy_names: Sequence[str],
    *,
    n_tasksets: int = 10,
    master_seed: int = 2002,
    horizon: Time,
    processor_factory: Callable[[float], Processor] | None = None,
    overhead_aware: bool = False,
    allow_misses: bool = False,
    policy_factory: Callable[[float], Callable[[str], DvsPolicy]] | None = None,
    faults_factory: Callable[[float, int], FaultPlan | None] | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 0,
    retry_backoff: float = 0.25,
    workers: int = 1,
    chunk_size: int | None = None,
    cache_dir: str | Path | None = None,
    workload_id: str | None = None,
    audit_every: int | None = None,
    unit_timeout: float | None = None,
    on_failure: str | None = None,
    batch: str | None = None,
    progress_dir: str | Path | None = None,
) -> list[SweepCell]:
    """The generic experiment sweep.

    For each value in *xs*, *make_workload(x, seed)* builds a seeded
    (task set, execution model) pair; the same pair runs under every
    policy; aggregation across ``n_tasksets`` seeds fills one
    :class:`SweepCell`.  *processor_factory* may vary the processor
    with ``x`` (used by the discrete-levels and overhead figures);
    *policy_factory(x)* may vary how policies are instantiated with
    ``x`` (used by the fault matrix to set the governor margin);
    *faults_factory(x, seed)* injects a per-cell fault plan.

    With *checkpoint_dir* set, every completed cell is persisted
    atomically; ``resume=True`` loads existing checkpoints and skips
    their cells, so a killed sweep continues where it stopped and —
    cells being pure functions of their seeds — produces results
    identical to an uninterrupted run.  Cells that fail are retried up
    to *max_retries* times with exponential backoff before the failure
    propagates.

    ``workers > 1`` fans the (cell, seed) units out in chunks over a
    warm pool of that many forked worker processes (see
    :mod:`repro.experiments.parallel`); *chunk_size* overrides the
    auto-sized units-per-submit.  Aggregation order is preserved, so
    the cells — and any checkpoints written — are byte-identical to a
    ``workers=1`` run.  On platforms without ``fork`` the sweep
    silently runs serially.

    With *cache_dir* set, every completed (cell, seed) suite is also
    persisted in a content-addressed
    :class:`~repro.experiments.cache.SuiteCache` and consulted before
    any simulation runs — in the serial path and before parallel
    dispatch alike — so re-runs (and other sweeps sharing cells)
    replay hits instead of re-simulating, byte-identically.  The
    mandatory *workload_id* names the workload closure in the cache
    fingerprint: it MUST encode every parameter that changes
    *make_workload*, *processor_factory* or *policy_factory* beyond
    the keyed scalars (x, seed, policies, horizon, flags, faults),
    because closures themselves cannot be fingerprinted.

    *audit_every* turns on spot-auditing: every N-th **(cell, seed)
    unit** — counted in index-major seed order, the same positions in
    the serial and parallel paths — runs with tracing enabled and its
    schedule is checked by :func:`repro.analysis.audit_trace`; any
    violation aborts the sweep with a
    :class:`~repro.errors.SuiteExecutionError` naming the invariant.
    Cache hits replay without re-auditing (their suites never re-run),
    and audited summaries are byte-identical to unaudited ones.

    *unit_timeout* puts a wall-clock deadline (seconds) on every
    (cell, seed) unit: a hung unit is interrupted with
    :class:`~repro.errors.UnitTimeoutError`, retried like any
    transient failure, and — in the parallel path — a worker wedged
    beyond the in-worker alarm is killed and replaced by the parent
    watchdog.  *on_failure* selects what happens when a unit exhausts
    its retries: ``"raise"`` (default) propagates the failure as
    before; ``"quarantine"`` records a structured
    :class:`~repro.experiments.resilience.QuarantinedCell` (persisted
    under ``<checkpoint_dir>/quarantine/`` when checkpointing) and
    **completes the sweep**, returning partial cells whose
    ``quarantined`` payloads declare exactly which seeds are missing.
    Both default to the process-wide
    :data:`~repro.experiments.resilience.EXECUTION_DEFAULTS` set by
    the CLI's ``--unit-timeout`` / ``--quarantine`` flags.

    Deterministic failures (engine/policy errors: pure functions of
    the seed) skip the retry ladder entirely — retries with backoff
    are reserved for transient ones (I/O hiccups, OOM kills,
    timeouts) that a retry genuinely can cure.

    SIGINT/SIGTERM no longer kill a sweep mid-checkpoint: in-flight
    units drain, completed cells are checkpointed, the run manifest
    is flushed, and :class:`~repro.errors.SweepInterrupted` reports
    the sweep resumable.

    *batch* selects the execution strategy for each cell's uncached
    seeds (default: the process-wide mode set by ``repro run
    --batch``): ``"auto"`` runs batch-eligible cells on the vectorized
    multi-seed engine (:mod:`repro.sim.batch`) when nothing in the
    sweep needs per-run instrumentation — see
    :func:`repro.sim.batch.decide_batch` — and enough seeds miss the
    cache to clear the measured crossover; ``"on"`` forces batching
    (raising with the blocking reasons when the sweep is ineligible);
    ``"off"`` always uses the scalar engine.  Batching is purely an
    execution strategy: summaries, cache payloads, checkpoints,
    manifests and telemetry counters are byte-identical to a scalar
    run (seeds the batch engine cannot reproduce bitwise fall back to
    the scalar engine automatically, as does any error raised inside
    the batch engine itself).

    *progress_dir* names where the live ``progress.jsonl`` event
    stream (DESIGN.md §14, :mod:`repro.telemetry.progress`) is
    written; when ``None`` it defaults to the telemetry manifest
    directory (telemetry on) and else to *checkpoint_dir*, so every
    checkpointed sweep is ``repro watch``-able with no extra flags.
    With no directory at all the sweep runs unnarrated — the stream
    never touches the compute path, so summaries, cells and
    checkpoints are byte-identical with it on or off.
    """
    if not xs:
        raise ExperimentError("sweep needs at least one x value")
    if audit_every is not None and audit_every < 1:
        raise ExperimentError(
            f"audit_every must be >= 1, got {audit_every}")
    if max_retries < 0:
        raise ExperimentError(
            f"max_retries must be >= 0, got {max_retries}")
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ExperimentError(
            f"chunk_size must be >= 1, got {chunk_size}")
    if unit_timeout is None:
        unit_timeout = EXECUTION_DEFAULTS.unit_timeout
    if unit_timeout is not None and unit_timeout <= 0:
        raise ExperimentError(
            f"unit_timeout must be > 0, got {unit_timeout}")
    if on_failure is None:
        on_failure = EXECUTION_DEFAULTS.on_failure
    if on_failure not in ("raise", "quarantine"):
        raise ExperimentError(
            f"on_failure must be 'raise' or 'quarantine', "
            f"got {on_failure!r}")
    if batch is None:
        batch = _BATCH_DEFAULT
    batch_decision = decide_batch(
        batch,
        policy_names=policy_names,
        overhead_aware=overhead_aware,
        policy_factory=policy_factory,
        faults_factory=faults_factory,
        audit_every=audit_every,
        unit_timeout=unit_timeout,
        chaos=_chaos.current(),
        telemetry_enabled=TELEMETRY.enabled)
    cache = None
    unit_key = None
    if cache_dir is not None:
        if workload_id is None:
            raise ExperimentError(
                "cache_dir needs a workload_id naming the workload "
                "closure (and any parameterisation beyond the keyed "
                "scalars); refusing to cache unidentifiable suites")
        try:
            cache = SuiteCache(cache_dir)
        except OSError as exc:
            # Degraded I/O: an unusable cache directory turns the
            # cache off for this run, never kills it.
            TELEMETRY.inc("resilience.cache_degraded")
            print(f"warning: cache dir {cache_dir} unusable ({exc}); "
                  f"running without the suite cache", file=sys.stderr)

    if cache is not None:

        def unit_key(x: float, seed: int) -> str:
            digest, _ = suite_fingerprint(
                workload_id=workload_id, x=float(x), seed=seed,
                policies=list(policy_names), horizon=float(horizon),
                overhead_aware=overhead_aware,
                allow_misses=allow_misses,
                faults=(faults_factory(float(x), seed)
                        if faults_factory else None))
            return digest

    checkpointer = None
    quarantine_store = None
    if checkpoint_dir is not None:
        fingerprint = {
            "xs": [float(x) for x in xs],
            "policies": list(policy_names),
            "n_tasksets": n_tasksets,
            "master_seed": master_seed,
            "horizon": float(horizon),
        }
        try:
            checkpointer = SweepCheckpointer(checkpoint_dir, fingerprint,
                                             resume=resume)
        except OSError as exc:
            TELEMETRY.inc("resilience.checkpoint_degraded")
            print(f"warning: checkpoint dir {checkpoint_dir} unusable "
                  f"({exc}); running without checkpoints",
                  file=sys.stderr)
        if on_failure == "quarantine":
            quarantine_store = QuarantineStore(checkpoint_dir)

    shutdown = GracefulShutdown()

    # Live progress narration (DESIGN.md §14): explicit directory, else
    # the telemetry manifest dir, else the checkpoint dir.  No
    # directory means no stream — and no overhead.
    stream_dir = progress_dir
    if stream_dir is None and TELEMETRY.enabled:
        stream_dir = TELEMETRY.manifest_dir
    if stream_dir is None:
        stream_dir = checkpoint_dir
    stream = None
    if stream_dir is not None:
        stream = _progress.open_stream(
            stream_dir, cells=len(xs), seeds=n_tasksets,
            workers=workers, workload_id=workload_id)

    def compute_unit(index: int, x: float, seed_pos: int,
                     seed: int) -> dict[str, PolicySummary]:
        """One (cell, seed) suite with classified in-place retries."""
        audit = (audit_every is not None
                 and (index * n_tasksets + seed_pos) % audit_every == 0)
        if stream is not None:
            stream.emit("unit.start", index=index, x=float(x),
                        seed_pos=seed_pos, seed=seed)
        attempt = 0
        while True:
            try:
                with unit_deadline(unit_timeout, x=float(x), seed=seed):
                    # Inside the deadline, so an injected hang is
                    # interruptible exactly like a real one.
                    _chaos.on_unit_start(float(x), seed)
                    if PROFILER.enabled:
                        with PROFILER.phase("unit.workload"):
                            taskset, model = make_workload(float(x),
                                                           seed)
                    else:
                        taskset, model = make_workload(float(x), seed)
                    processor = (processor_factory(float(x))
                                 if processor_factory
                                 else ideal_processor())
                    with PROFILER.sample_unit():
                        suite = run_suite(
                            taskset, policy_names, processor, model,
                            horizon=horizon,
                            overhead_aware=overhead_aware,
                            allow_misses=allow_misses,
                            policy_factory=(policy_factory(float(x))
                                            if policy_factory else None),
                            faults=(faults_factory(float(x), seed)
                                    if faults_factory else None),
                            workload_seed=seed,
                            audit=audit)
                return suite.policy_summaries()
            except Exception as exc:
                if isinstance(exc, UnitTimeoutError):
                    TELEMETRY.inc("resilience.unit_timeouts")
                # Deterministic failures reproduce identically on
                # every attempt — their retry budget is zero, so they
                # fail (or quarantine) fast instead of burning the
                # backoff ladder.
                if attempt >= retry_budget(exc, max_retries):
                    raise
                TELEMETRY.inc("sweep.retries")
                TELEMETRY.emit("sweep.retry", index=index, x=float(x),
                               seed=seed, attempt=attempt)
                if stream is not None:
                    stream.emit("unit.retry", index=index, x=float(x),
                                seed_pos=seed_pos, seed=seed,
                                attempt=attempt,
                                error_type=type(exc).__name__)
                _time.sleep(retry_backoff * (2.0 ** attempt))
                attempt += 1

    def batch_prefetch(x: float, seeds: list[int],
                       cached: list) -> dict[int, dict[str, PolicySummary]]:
        """Vectorize this cell's cache misses; ``{seed_pos: summaries}``.

        Returns only the seeds the batch engine reproduced bitwise —
        everything else (including any error raised inside the batch
        engine, which is an optimisation and must never take a sweep
        down) is left for the scalar per-unit path.
        """
        missing = [i for i, summaries in enumerate(cached)
                   if summaries is None]
        if len(missing) < batch_decision.min_seeds:
            return {}
        try:
            processor = (processor_factory(x) if processor_factory
                         else ideal_processor())
            rows = run_batch_suites(
                x, [seeds[i] for i in missing],
                make_workload=make_workload,
                policy_names=list(policy_names),
                processor=processor, horizon=horizon,
                allow_misses=allow_misses)
        except Exception:
            return {}
        if rows is None:
            return {}
        return {i: row for i, row in zip(missing, rows)
                if row is not None}

    def compute_cell(index: int, x: float) -> SweepCell:
        cell = SweepCell(x=float(x))
        seeds = list(taskset_seeds(master_seed, n_tasksets))
        keys = [unit_key(float(x), seed) if cache is not None else None
                for seed in seeds]
        cached = [cache.get(key) if cache is not None else None
                  for key in keys]
        prefetched = (batch_prefetch(float(x), seeds, cached)
                      if batch_decision.use else {})
        for seed_pos, seed in enumerate(seeds):
            summaries = cached[seed_pos]
            # The batch engine is an execution strategy, not a cache:
            # prefetched units count as computed in the progress stream
            # — the same status the parallel path reports them under.
            status = "cached" if summaries is not None else "computed"
            if summaries is None and seed_pos in prefetched:
                summaries = prefetched[seed_pos]
                if cache is not None:
                    cache.put(keys[seed_pos], summaries)
            if summaries is None:
                try:
                    summaries = compute_unit(index, float(x),
                                             seed_pos, seed)
                except Exception as exc:
                    if on_failure != "quarantine":
                        raise
                    record = QuarantinedCell.from_failure(
                        exc, index=index, x=float(x), seed=seed,
                        seed_pos=seed_pos,
                        attempts=1 + retry_budget(exc, max_retries),
                        fingerprint=keys[seed_pos])
                    if quarantine_store is not None:
                        quarantine_store.record(record)
                    TELEMETRY.inc("resilience.quarantined")
                    cell.quarantined.append(record.to_payload())
                    if stream is not None:
                        stream.unit_done(
                            index=index, x=float(x), seed_pos=seed_pos,
                            seed=seed, status="quarantined",
                            error_type=record.error_type,
                            classification=record.classification)
                    continue
                if cache is not None:
                    cache.put(keys[seed_pos], summaries)
            if stream is not None:
                stream.unit_done(index=index, x=float(x),
                                 seed_pos=seed_pos, seed=seed,
                                 status=status)
            cell.record_summaries(summaries)
        if stream is not None:
            stream.cell_done(index=index, x=float(x),
                             quarantined=len(cell.quarantined))
        return cell

    def execute() -> list[SweepCell]:
        if workers > 1:
            from repro.experiments.parallel import (
                fork_available,
                run_cells,
            )
            if fork_available():
                by_index: dict[int, SweepCell] = {}
                pending: list[tuple[int, float]] = []
                with TELEMETRY.span("sweep.plan"):
                    for index, x in enumerate(xs):
                        cached = (checkpointer.load(index, float(x))
                                  if checkpointer is not None else None)
                        if cached is not None:
                            TELEMETRY.inc("sweep.cells_resumed")
                            if stream is not None:
                                stream.cell_resumed(index=index,
                                                    x=float(x))
                            by_index[index] = cached
                        else:
                            pending.append((index, float(x)))
                if pending:
                    by_index.update(run_cells(
                        pending, taskset_seeds(master_seed, n_tasksets),
                        spec={
                            "make_workload": make_workload,
                            "policy_names": list(policy_names),
                            "horizon": horizon,
                            "processor_factory": processor_factory,
                            "overhead_aware": overhead_aware,
                            "allow_misses": allow_misses,
                            "policy_factory": policy_factory,
                            "faults_factory": faults_factory,
                            "max_retries": max_retries,
                            "retry_backoff": retry_backoff,
                            "audit_every": audit_every,
                            "n_seeds": n_tasksets,
                            "unit_timeout": unit_timeout,
                            "on_failure": on_failure,
                            "batch": batch_decision.use,
                            "batch_min_seeds": batch_decision.min_seeds,
                            # Workers snapshot the installed chaos
                            # plan at fork time; a plan change must
                            # invalidate the warm pool like any other
                            # spec change.
                            "chaos": _chaos.current(),
                        },
                        workers=workers, checkpointer=checkpointer,
                        cache=cache, unit_key=unit_key,
                        chunk_size=chunk_size,
                        quarantine_store=quarantine_store,
                        shutdown=shutdown))
                return [by_index[index] for index in range(len(xs))]

        cells = []
        for index, x in enumerate(xs):
            shutdown.raise_if_requested(
                completed_cells=len(cells),
                checkpoint_dir=checkpoint_dir)
            if checkpointer is not None:
                cached = checkpointer.load(index, float(x))
                if cached is not None:
                    TELEMETRY.inc("sweep.cells_resumed")
                    if stream is not None:
                        stream.cell_resumed(index=index, x=float(x))
                    cells.append(cached)
                    continue
            cell = compute_cell(index, float(x))
            if checkpointer is not None:
                checkpointer.store(index, cell)
            cells.append(cell)
        return cells

    # Attach the stream as the process-current one so the parallel
    # executor and the resilience layer can emit without it being
    # threaded through their signatures.  Restored on every exit path.
    prev_stream = _progress.attach(stream)

    def finish_stream(status: str = "completed",
                      error: BaseException | None = None) -> None:
        if stream is not None:
            if (status == "interrupted"
                    and shutdown.signal_number is not None):
                # The drain fact itself, emitted from normal (not
                # signal-handler) context so it can take the stream
                # lock safely.
                stream.emit("resilience.drain",
                            signal=shutdown.signal_number)
            stream.close(status=status, error=error)

    # Profiling root: every phase frame this sweep opens — engine
    # runs, slack walks, cache I/O, dispatch, idle — nests under
    # ``sweep.execute``, whose self time is the orchestration
    # residual.  Cut as a delta so co-resident sweeps stay separate,
    # exactly like the telemetry registry below.
    profile_before = PROFILER.snapshot() if PROFILER.enabled else None

    def run_profiled() -> list[SweepCell]:
        if not PROFILER.enabled:
            return execute()
        PROFILER.push("sweep.execute")
        try:
            return execute()
        finally:
            PROFILER.pop()

    if not TELEMETRY.enabled:
        try:
            with shutdown:
                cells = run_profiled()
        except SweepInterrupted as exc:
            finish_stream("interrupted", exc)
            raise
        except BaseException as exc:
            finish_stream("failed", exc)
            raise
        finally:
            _progress.attach(prev_stream)
        finish_stream()
        return cells

    # Telemetry is on: cut this sweep's metrics as a delta against the
    # registry (other sweeps in the same process keep their counts),
    # time the compute phase, and drop a run manifest next to the
    # checkpoints (or into the configured manifest directory).
    before = TELEMETRY.snapshot()
    TELEMETRY.inc("sweep.runs")
    TELEMETRY.inc("sweep.cells", len(xs))
    TELEMETRY.emit("sweep.start",
                   workload_id=workload_id, cells=len(xs),
                   seeds=n_tasksets, workers=workers)

    def write_manifest() -> None:
        _write_sweep_manifest(
            before=before,
            fingerprint={
                "xs": [float(x) for x in xs],
                "policies": list(policy_names),
                "n_tasksets": n_tasksets,
                "master_seed": master_seed,
                "horizon": float(horizon),
                "workload_id": workload_id,
                "workers": workers,
                "overhead_aware": overhead_aware,
                "allow_misses": allow_misses,
            },
            workers=workers,
            faults_injected=faults_factory is not None,
            audit_every=audit_every,
            checkpoint_dir=checkpoint_dir,
            workload_id=workload_id,
            unit_timeout=unit_timeout,
            on_failure=on_failure,
            progress=(stream.summary() if stream is not None else None),
            profile_before=profile_before)

    try:
        with shutdown, TELEMETRY.span("sweep.compute"):
            cells = run_profiled()
    except SweepInterrupted as exc:
        # The drain already checkpointed everything complete; close
        # the stream and flush the manifest too, so the interrupted
        # run leaves a full record before the interrupt propagates.
        finish_stream("interrupted", exc)
        write_manifest()
        raise
    except BaseException as exc:
        finish_stream("failed", exc)
        raise
    finally:
        _progress.attach(prev_stream)
    # Close before the manifest is cut, so the manifest's ``progress``
    # block repeats exactly the terminal ``sweep.done`` summary — the
    # equality scripts/progress_gate.py enforces.
    finish_stream()
    write_manifest()
    return cells


def _write_sweep_manifest(
    *,
    before: dict,
    fingerprint: dict,
    workers: int,
    faults_injected: bool,
    audit_every: int | None,
    checkpoint_dir: str | Path | None,
    workload_id: str | None,
    unit_timeout: float | None = None,
    on_failure: str = "raise",
    progress: dict | None = None,
    profile_before: dict | None = None,
) -> Path | None:
    """Write one run manifest for a completed sweep (telemetry on).

    The manifest lands in ``TELEMETRY.manifest_dir`` when configured
    (``repro run --telemetry-dir``), else next to the sweep's
    checkpoints; with neither destination it is skipped.  Its numbers
    are the sweep's *delta* — counters, phase spans, per-worker chunk
    accounting — so concurrent-in-process sweeps never bleed into each
    other's manifests.
    """
    directory = TELEMETRY.manifest_dir or (
        Path(checkpoint_dir) if checkpoint_dir is not None else None)
    if directory is None:
        return None
    delta = TELEMETRY.delta_since(before)
    counters = delta["counters"]
    label = workload_id or "sweep"
    profile = None
    if profile_before is not None and PROFILER.enabled:
        from repro.profiling import report as _profile_report
        profile = _profile_report.profile_block(
            PROFILER.delta_since(profile_before),
            timeline_dropped=PROFILER.timeline_dropped)
    manifest = RunManifest(
        label=label,
        fingerprint=fingerprint,
        phases=delta["spans"],
        counters=counters,
        histograms=delta["histograms"],
        cache={
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "writes": counters.get("cache.writes", 0),
            "corrupt": counters.get("cache.corrupt", 0),
        },
        workers={"pool_workers": workers,
                 "per_worker": delta["workers"]},
        faults={"injected": faults_injected},
        resilience={
            "unit_timeout": unit_timeout,
            "on_failure": on_failure,
            "pool_rebuilds": counters.get("resilience.pool_rebuilds", 0),
            "watchdog_kills": counters.get(
                "resilience.watchdog_kills", 0),
            "unit_timeouts": counters.get("resilience.unit_timeouts", 0),
            "quarantined": counters.get("resilience.quarantined", 0),
            "cache_self_healed": counters.get("cache.self_healed", 0),
            "degraded_writes": (
                counters.get("resilience.cache_degraded", 0)
                + counters.get("resilience.checkpoint_degraded", 0)),
            "drain_requests": counters.get(
                "resilience.drain_requests", 0),
        },
        audit=(None if audit_every is None else {
            "every": audit_every,
            "units": counters.get("audit.units", 0),
            "runs": counters.get("audit.runs", 0),
            "violations": counters.get("audit.violations", 0),
        }),
        progress=progress,
        profile=profile,
        git_rev=git_revision(),
    )
    path = manifest.write(next_manifest_path(directory, label))
    TELEMETRY.emit("sweep.manifest", path=str(path))
    return path


def bcwc_model(bcwc: float, seed: int) -> ExecutionModel:
    """The canonical execution model for a bc/wc ratio and seed."""
    return model_for_bcwc_ratio(bcwc, seed=seed)
