"""Instrumented policies used by the ablation experiments."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.slack import exact_slack, heuristic_slack
from repro.policies.slack_sta import LpStaPolicy
from repro.tasks.job import Job
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class SlackProbePolicy(LpStaPolicy):
    """lpSTA that also records the heuristic estimate at each analysis.

    Used by EXP-F6 to quantify how much slack the O(n) heuristic gives
    up relative to the exact analysis on identical scheduling states.
    Samples are ``(exact, heuristic)`` pairs in scaled wall time.
    """

    name = "slack-probe"

    def __init__(self, window_cap_periods: float | None = 2.0) -> None:
        super().__init__(window_cap_periods=window_cap_periods)
        self.samples: list[tuple[float, float]] = []

    def reset(self) -> None:
        super().reset()
        self.samples = []

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        remaining = job.remaining_wcet
        if remaining > 1e-12:
            state = ctx.slack_state(baseline_speed=self._baseline_speed,
                                    scaled_tasks=self._scaled_tasks)
            exact = exact_slack(
                state, window_cap_periods=self.window_cap_periods)
            heuristic = heuristic_slack(state)
            self.samples.append((exact, heuristic))
        return super().select_speed(job, ctx)
