"""Per-figure experiment drivers (EXP-F1 .. EXP-F10).

Each function regenerates one figure of the reconstructed evaluation
(see DESIGN.md §5 and EXPERIMENTS.md) and returns a
:class:`~repro.experiments.config.FigureData` ready to render as an
ASCII table or export to CSV.  ``quick=True`` shrinks the sweeps for
smoke runs; the defaults match the recorded EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.errors import ExperimentError
from repro.faults import FaultPlan, OverrunFault
from repro.cpu.profiles import ideal_processor, uniform_discrete_processor
from repro.cpu.transition import VoltageSwitchOverhead
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.cpu.power import PolynomialPowerModel
from repro.experiments.config import (
    DEFAULT_POLICIES,
    EXPERIMENT_HORIZON,
    FigureData,
    SeriesPoint,
)
from repro.experiments.probes import SlackProbePolicy
from repro.experiments.runner import (
    bcwc_model,
    standard_taskset,
    sweep,
    taskset_seeds,
)
from repro.policies.registry import make_policy
from repro.policies.slack_sta import LpStaPolicy
from repro.sim.engine import simulate


def _aggregate(figure: FigureData, cells, policy_names) -> FigureData:
    """Fold sweep cells into figure series (mean ± CI per policy)."""
    for cell in cells:
        for name in policy_names:
            values = cell.normalized.get(name)
            if not values:
                continue
            summary = summarize(values)
            switch_summary = summarize(cell.switches[name])
            figure.add_point(name, SeriesPoint(
                x=cell.x, mean=summary.mean, ci95=summary.ci95,
                count=summary.count,
                extra={"misses": cell.misses.get(name, 0),
                       "mean_switches": switch_summary.mean}))
    total_misses = sum(sum(c.misses.values()) for c in cells)
    figure.notes.append(f"total deadline misses across all runs: "
                        f"{total_misses}")
    return figure


def energy_vs_utilization(
    *,
    utilizations: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                     0.7, 0.8, 0.9, 1.0),
    n_tasks: int = 8,
    n_tasksets: int = 10,
    bcwc: float = 0.5,
    policies: Sequence[str] = DEFAULT_POLICIES,
    master_seed: int = 2002,
    quick: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-F1: normalized energy vs worst-case utilization."""
    if quick:
        utilizations = (0.3, 0.6, 0.9)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F1",
        title=f"Normalized energy vs worst-case utilization "
              f"(n={n_tasks}, bc/wc={bcwc})",
        x_label="utilization",
        y_label="energy normalized to no-DVS")

    def workload(u: float, seed: int):
        return (standard_taskset(n_tasks, u, seed),
                bcwc_model(bcwc, seed))

    cells = sweep(utilizations, workload, policies,
                  n_tasksets=n_tasksets, master_seed=master_seed,
                  horizon=EXPERIMENT_HORIZON, workers=workers,
                  cache_dir=cache_dir,
                  workload_id=f"EXP-F1:u:n={n_tasks}:bcwc={bcwc:g}")
    return _aggregate(figure, cells, policies)


def energy_vs_bcwc(
    *,
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5,
                               0.6, 0.7, 0.8, 0.9, 1.0),
    utilization: float = 0.9,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    policies: Sequence[str] = DEFAULT_POLICIES,
    master_seed: int = 2002,
    quick: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-F2: normalized energy vs bc/wc execution-time ratio."""
    if quick:
        ratios = (0.2, 0.5, 1.0)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F2",
        title=f"Normalized energy vs bc/wc ratio (U={utilization}, "
              f"n={n_tasks})",
        x_label="bc/wc ratio",
        y_label="energy normalized to no-DVS")

    def workload(ratio: float, seed: int):
        return (standard_taskset(n_tasks, utilization, seed),
                bcwc_model(ratio, seed))

    cells = sweep(ratios, workload, policies,
                  n_tasksets=n_tasksets, master_seed=master_seed,
                  horizon=EXPERIMENT_HORIZON, workers=workers,
                  cache_dir=cache_dir,
                  workload_id=f"EXP-F2:bcwc:n={n_tasks}:u={utilization:g}")
    return _aggregate(figure, cells, policies)


def energy_vs_ntasks(
    *,
    task_counts: Sequence[int] = (2, 4, 6, 8, 12, 16),
    utilization: float = 0.9,
    bcwc: float = 0.5,
    n_tasksets: int = 10,
    policies: Sequence[str] = DEFAULT_POLICIES,
    master_seed: int = 2002,
    quick: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-F3: normalized energy vs number of tasks."""
    if quick:
        task_counts = (3, 8)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F3",
        title=f"Normalized energy vs task-set size (U={utilization}, "
              f"bc/wc={bcwc})",
        x_label="tasks",
        y_label="energy normalized to no-DVS")

    def workload(n: float, seed: int):
        return (standard_taskset(int(n), utilization, seed),
                bcwc_model(bcwc, seed))

    cells = sweep([float(n) for n in task_counts], workload, policies,
                  n_tasksets=n_tasksets, master_seed=master_seed,
                  horizon=EXPERIMENT_HORIZON, workers=workers,
                  cache_dir=cache_dir,
                  workload_id=f"EXP-F3:n:u={utilization:g}:bcwc={bcwc:g}")
    return _aggregate(figure, cells, policies)


def energy_vs_levels(
    *,
    level_counts: Sequence[int] = (2, 3, 4, 6, 8, 16, 0),
    utilization: float = 0.7,
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    policies: Sequence[str] = ("static", "ccEDF", "lpSEH", "lpSTA"),
    master_seed: int = 2002,
    quick: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-F4: effect of discrete speed levels (0 = continuous)."""
    if quick:
        level_counts = (2, 4, 0)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F4",
        title=f"Normalized energy vs number of speed levels "
              f"(U={utilization}, bc/wc={bcwc}; x=0 is continuous)",
        x_label="speed levels",
        y_label="energy normalized to no-DVS")

    def workload(levels: float, seed: int):
        return (standard_taskset(n_tasks, utilization, seed),
                bcwc_model(bcwc, seed))

    def processor_for(levels: float) -> Processor:
        if int(levels) == 0:
            return ideal_processor(min_speed=0.1)
        return uniform_discrete_processor(int(levels), min_speed=0.1)

    cells = sweep([float(n) for n in level_counts], workload, policies,
                  n_tasksets=n_tasksets, master_seed=master_seed,
                  horizon=EXPERIMENT_HORIZON,
                  processor_factory=processor_for, workers=workers,
                  cache_dir=cache_dir,
                  workload_id=f"EXP-F4:levels:u={utilization:g}"
                              f":bcwc={bcwc:g}:n={n_tasks}")
    return _aggregate(figure, cells, policies)


def overhead_sensitivity(
    *,
    switch_times: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.5, 1.0),
    utilization: float = 0.7,
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    policies: Sequence[str] = ("static", "ccEDF", "lpSEH", "lpSTA"),
    master_seed: int = 2002,
    quick: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-F5: transition-overhead sensitivity (overhead-aware policies).

    Switch times are in the same milliseconds as task periods
    (10-200 ms grid); 0.14 ms corresponds to the SA-1100's 140 µs.
    All policies run wrapped in the overhead-aware guard so deadlines
    stay hard; the ``mean_switches`` extra records how aggressively
    each policy still switches.
    """
    if quick:
        switch_times = (0.0, 0.5)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F5",
        title=f"Normalized energy vs speed-switch time "
              f"(U={utilization}, bc/wc={bcwc}, overhead-aware)",
        x_label="switch time",
        y_label="energy normalized to no-DVS (same overhead)")

    def workload(switch_time: float, seed: int):
        return (standard_taskset(n_tasks, utilization, seed),
                bcwc_model(bcwc, seed))

    def processor_for(switch_time: float) -> Processor:
        return Processor(
            scale=ContinuousScale(min_speed=0.05),
            power_model=PolynomialPowerModel(alpha=3.0),
            transition_model=VoltageSwitchOverhead(
                switch_time=switch_time, eta=0.9, c_dd=0.05),
            name=f"ideal+switch{switch_time:g}",
        )

    cells = sweep(switch_times, workload, policies,
                  n_tasksets=n_tasksets, master_seed=master_seed,
                  horizon=EXPERIMENT_HORIZON,
                  processor_factory=processor_for,
                  overhead_aware=True, workers=workers,
                  cache_dir=cache_dir,
                  workload_id=f"EXP-F5:switch:u={utilization:g}"
                              f":bcwc={bcwc:g}:n={n_tasks}")
    return _aggregate(figure, cells, policies)


def slack_accuracy(
    *,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 5,
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F6: how much slack the O(n) heuristic gives up vs exact.

    Two workload families per utilization: implicit deadlines (the
    standard grid sets, where the heuristic turns out to be empirically
    exact — its linear bound coincides with the true demand at every
    binding candidate) and constrained deadlines (where the unconditional
    correction term makes it genuinely conservative).  Series: mean
    heuristic/exact slack ratio over analyses with positive exact slack;
    the ``zero_fraction`` extra records how often the heuristic found
    zero where the exact analysis found slack.
    """
    if quick:
        utilizations = (0.5, 0.9)
        n_tasksets = 2
    figure = FigureData(
        experiment_id="EXP-F6",
        title=f"lpSEH slack-estimate accuracy vs exact analysis "
              f"(bc/wc={bcwc}, n={n_tasks})",
        x_label="utilization",
        y_label="heuristic/exact slack ratio")
    import numpy as np

    from repro.tasks.generators import generate_taskset
    from repro.experiments.config import EXPERIMENT_PERIOD_CHOICES

    families = {
        "implicit": dict(),
        "constrained": dict(deadline_range=(0.6, 0.95)),
    }
    for family, extra_kwargs in families.items():
        for u in utilizations:
            ratios: list[float] = []
            zero_misses = 0
            positive_exact = 0
            for seed in taskset_seeds(master_seed, n_tasksets):
                taskset = generate_taskset(
                    n_tasks, u, np.random.default_rng(seed),
                    period_choices=EXPERIMENT_PERIOD_CHOICES,
                    **extra_kwargs)
                model = bcwc_model(bcwc, seed)
                probe = SlackProbePolicy()
                simulate(taskset, ideal_processor(), probe, model,
                         horizon=EXPERIMENT_HORIZON)
                for exact, heuristic in probe.samples:
                    if exact > 1e-9:
                        positive_exact += 1
                        ratios.append(heuristic / exact)
                        if heuristic <= 1e-9:
                            zero_misses += 1
            if ratios:
                summary = summarize(ratios)
                figure.add_point(family, SeriesPoint(
                    x=float(u), mean=summary.mean, ci95=summary.ci95,
                    count=summary.count,
                    extra={"zero_fraction": zero_misses / positive_exact}))
    figure.notes.append(
        "ratio <= 1 by construction (heuristic is a safe under-estimate)")
    return figure


def baseline_ablation(
    *,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F7 (ablation): static-baseline vs greedy full-speed slack.

    Both variants are safe; the greedy one hands the dispatched job all
    the system slack including the static headroom, producing a
    slow-then-fast profile that convex power punishes.  This figure
    quantifies the design choice DESIGN.md calls out.
    """
    if quick:
        utilizations = (0.5, 0.9)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F7",
        title=f"lpSTA baseline ablation: static vs greedy slack "
              f"(bc/wc={bcwc}, n={n_tasks})",
        x_label="utilization",
        y_label="energy normalized to no-DVS")
    variants = {
        "lpSTA(static)": lambda: LpStaPolicy(baseline="static"),
        "lpSTA(greedy)": lambda: LpStaPolicy(baseline="full"),
    }

    def workload(u: float, seed: int):
        return (standard_taskset(n_tasks, u, seed), bcwc_model(bcwc, seed))

    for u in utilizations:
        values: dict[str, list[float]] = {name: [] for name in variants}
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset, model = workload(float(u), seed)
            baseline = simulate(taskset, ideal_processor(),
                                make_policy("none"), model,
                                horizon=EXPERIMENT_HORIZON)
            for name, factory in variants.items():
                result = simulate(taskset, ideal_processor(), factory(),
                                  model, horizon=EXPERIMENT_HORIZON)
                values[name].append(result.normalized_energy(baseline))
        for name, series in values.items():
            summary = summarize(series)
            figure.add_point(name, SeriesPoint(
                x=float(u), mean=summary.mean, ci95=summary.ci95,
                count=summary.count))
    return figure


def leakage_sensitivity(
    *,
    leakage_ratios: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8),
    utilization: float = 0.5,
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F8 (extension): leakage power and the critical-speed floor.

    The active power becomes ``s^3 + rho`` (idle = deep sleep, free).
    With growing leakage ``rho`` the energy-per-work minimum moves to a
    critical speed above the utilization; running lpSTA below it wastes
    energy.  Series: plain lpSTA vs lpSTA clamped to the critical speed,
    plus the no-DVS reference (always 1.0 by normalisation).
    """
    if quick:
        leakage_ratios = (0.0, 0.4)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F8",
        title=f"Leakage sensitivity: critical-speed floor "
              f"(U={utilization}, bc/wc={bcwc})",
        x_label="leakage/dynamic ratio",
        y_label="energy normalized to no-DVS (same leakage)")

    def processor_for(rho: float) -> Processor:
        return Processor(
            scale=ContinuousScale(min_speed=0.05),
            power_model=PolynomialPowerModel(alpha=3.0, static=rho),
            name=f"cubic+leak{rho:g}")

    for rho in leakage_ratios:
        plain: list[float] = []
        floored: list[float] = []
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset = standard_taskset(n_tasks, utilization, seed)
            model = bcwc_model(bcwc, seed)
            processor = processor_for(float(rho))
            baseline = simulate(taskset, processor, make_policy("none"),
                                model, horizon=EXPERIMENT_HORIZON)
            for name, bucket in (("lpSTA", plain),):
                result = simulate(taskset, processor, make_policy(name),
                                  model, horizon=EXPERIMENT_HORIZON)
                bucket.append(result.normalized_energy(baseline))
            result = simulate(
                taskset, processor,
                make_policy("lpSTA", critical_speed_floor=True),
                model, horizon=EXPERIMENT_HORIZON)
            floored.append(result.normalized_energy(baseline))
        for name, values in (("lpSTA", plain), ("cs-lpSTA", floored)):
            summary = summarize(values)
            figure.add_point(name, SeriesPoint(
                x=float(rho), mean=summary.mean, ci95=summary.ci95,
                count=summary.count))
        critical = processor_for(float(rho)).power_model.critical_speed()
        figure.notes.append(
            f"rho={rho:g}: critical speed = {critical:.3f}")
    return figure


def optimality_gap(
    *,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    bcwc: float = 0.5,
    n_tasks: int = 6,
    n_tasksets: int = 5,
    policies: Sequence[str] = ("ccEDF", "laEDF", "lpSEH", "lpSTA",
                               "clairvoyant"),
    master_seed: int = 2002,
    horizon: float = 1200.0,
    quick: bool = False,
) -> FigureData:
    """EXP-F9 (extension): energy relative to the YDS offline optimum.

    For each workload the YDS-optimal schedule of the *actual* concrete
    job set is computed (:mod:`repro.analysis.yds`) and every policy's
    energy is expressed as a multiple of it: how much of the absolute
    headroom each scheme captures.  Ratios are >= 1 by optimality.
    """
    from repro.analysis.yds import yds_optimal_energy

    if quick:
        utilizations = (0.5, 0.9)
        n_tasksets = 2
    figure = FigureData(
        experiment_id="EXP-F9",
        title=f"Energy relative to the YDS offline optimum "
              f"(bc/wc={bcwc}, n={n_tasks})",
        x_label="utilization",
        y_label="energy / YDS-optimal energy")
    processor = ideal_processor()
    for u in utilizations:
        ratios: dict[str, list[float]] = {name: [] for name in policies}
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset = standard_taskset(n_tasks, float(u), seed)
            model = bcwc_model(bcwc, seed)
            optimal = yds_optimal_energy(taskset, model, processor,
                                         horizon)
            if optimal <= 0:
                continue
            for name in policies:
                result = simulate(taskset, processor, make_policy(name),
                                  model, horizon=horizon)
                ratios[name].append(result.total_energy / optimal)
        for name, values in ratios.items():
            if not values:
                continue
            summary = summarize(values)
            figure.add_point(name, SeriesPoint(
                x=float(u), mean=summary.mean, ci95=summary.ci95,
                count=summary.count))
    figure.notes.append("ratios >= 1 by YDS optimality")
    return figure


def sporadic_sensitivity(
    *,
    jitters: Sequence[float] = (0.0, 0.2, 0.5, 1.0, 2.0),
    utilization: float = 0.8,
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    policies: Sequence[str] = ("static", "ccEDF", "lpSEH", "lpSTA",
                               "clairvoyant"),
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F10 (extension): sporadic arrival jitter.

    Gaps are uniform in ``[T, (1 + jitter) * T]``.  Online policies may
    only assume the minimum separation (the pessimistic view), yet every
    extra gap is real slack: normalized energy should fall with jitter
    for the dynamic policies while ``static`` stays pinned at the
    worst-case utilization.  Deadlines remain hard throughout.
    """
    from repro.tasks.arrivals import UniformJitterArrival

    if quick:
        jitters = (0.0, 1.0)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F10",
        title=f"Sporadic arrival jitter (U={utilization}, bc/wc={bcwc})",
        x_label="max extra gap (fraction of period)",
        y_label="energy normalized to no-DVS (same arrivals)")
    for jitter in jitters:
        values: dict[str, list[float]] = {name: [] for name in policies}
        misses = 0
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset = standard_taskset(n_tasks, utilization, seed)
            model = bcwc_model(bcwc, seed)
            arrivals = UniformJitterArrival(jitter=float(jitter),
                                            seed=seed)
            baseline = simulate(taskset, ideal_processor(),
                                make_policy("none"), model,
                                arrival_model=arrivals,
                                horizon=EXPERIMENT_HORIZON)
            for name in policies:
                result = simulate(taskset, ideal_processor(),
                                  make_policy(name), model,
                                  arrival_model=arrivals,
                                  horizon=EXPERIMENT_HORIZON)
                misses += len(result.deadline_misses)
                values[name].append(result.normalized_energy(baseline))
        for name, series in values.items():
            summary = summarize(series)
            figure.add_point(name, SeriesPoint(
                x=float(jitter), mean=summary.mean, ci95=summary.ci95,
                count=summary.count, extra={"misses": misses}))
    figure.notes.append(
        "policies see only the pessimistic minimum-separation view of "
        "future arrivals")
    return figure


def dpm_sensitivity(
    *,
    wakeup_energies=(0.0, 0.5, 1.0, 2.0, 5.0, 10.0),
    utilization: float = 0.4,
    bcwc: float = 0.5,
    leakage: float = 0.3,
    sleep_power: float = 0.01,
    wakeup_time: float = 0.2,
    n_tasks: int = 6,
    n_tasksets: int = 10,
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F11 (extension): dynamic power management of idle time.

    The physically coherent leaky-platform setup: active power is
    ``s^3 + rho`` and the same leakage ``rho`` is paid while idling —
    only deep sleep (with a wake-up cost) escapes it.  The active parts
    run lpSTA with the critical-speed floor, which deliberately leaves
    idle time rather than stretching into the leakage-losing regime;
    the idle manager then decides what that idle time costs.  Series:
    never sleep, sleep-on-idle, and procrastination (slack-bounded late
    starts that batch idle slivers into long sleeps).  As the wake-up
    gets more expensive, plain sleep-on-idle loses its edge while
    procrastination's batched episodes keep paying.  Deadlines stay
    hard throughout — the vacation bound comes from the same slack
    analysis as the DVS policies.
    """
    from repro.policies.procrastination import (
        NeverSleepIdlePolicy,
        ProcrastinationIdlePolicy,
        SleepOnIdlePolicy,
    )

    if quick:
        wakeup_energies = (0.5, 5.0)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F11",
        title=f"Idle-time management vs wake-up energy "
              f"(U={utilization}, leakage={leakage}, "
              f"sleep P={sleep_power})",
        x_label="wake-up energy",
        y_label="energy normalized to no-DVS never-sleep")

    def processor_for(wakeup_energy: float) -> Processor:
        return Processor(
            scale=ContinuousScale(min_speed=0.05),
            power_model=PolynomialPowerModel(alpha=3.0, static=leakage),
            idle_power=leakage, sleep_power=sleep_power,
            wakeup_time=wakeup_time, wakeup_energy=wakeup_energy,
            name=f"leaky+wake{wakeup_energy:g}")

    managers = {
        "never-sleep": NeverSleepIdlePolicy,
        "sleep-on-idle": SleepOnIdlePolicy,
        "procrastination": ProcrastinationIdlePolicy,
    }
    for wakeup_energy in wakeup_energies:
        values: dict[str, list[float]] = {name: [] for name in managers}
        episodes: dict[str, list[int]] = {name: [] for name in managers}
        misses = 0
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset = standard_taskset(n_tasks, utilization, seed)
            model = bcwc_model(bcwc, seed)
            processor = processor_for(float(wakeup_energy))
            baseline = simulate(taskset, processor, make_policy("none"),
                                model,
                                idle_policy=NeverSleepIdlePolicy(),
                                horizon=EXPERIMENT_HORIZON)
            for name, factory in managers.items():
                result = simulate(taskset, processor,
                                  make_policy("lpSTA",
                                              critical_speed_floor=True),
                                  model, idle_policy=factory(),
                                  horizon=EXPERIMENT_HORIZON)
                misses += len(result.deadline_misses)
                values[name].append(result.normalized_energy(baseline))
                episodes[name].append(result.sleep_episodes)
        for name, series in values.items():
            summary = summarize(series)
            figure.add_point(name, SeriesPoint(
                x=float(wakeup_energy), mean=summary.mean,
                ci95=summary.ci95, count=summary.count,
                extra={"misses": misses,
                       "mean_episodes": summarize(episodes[name]).mean}))
    return figure


def multicore_scaling(
    *,
    core_counts=(1, 2, 3, 4, 6),
    total_utilization: float = 0.9,
    bcwc: float = 0.5,
    n_tasks: int = 12,
    n_tasksets: int = 8,
    policies=("static", "lpSTA"),
    master_seed: int = 2002,
    quick: bool = False,
) -> FigureData:
    """EXP-F12 (extension): partitioned multicore scaling.

    The same total workload (U = 0.9 summed) partitioned onto more
    cores (worst-fit decreasing, per-core DVS-EDF): convex power
    rewards spreading — m cores at U/m each beat one core at U — until
    per-core loads get so light that processor floors bite.  Energy is
    normalized to the 1-core no-DVS run; zero misses on every core.
    """
    from repro.errors import InfeasibleTaskSetError
    from repro.sim.multicore import simulate_partitioned

    if quick:
        core_counts = (1, 4)
        n_tasksets = 3
    figure = FigureData(
        experiment_id="EXP-F12",
        title=f"Partitioned multicore scaling "
              f"(total U={total_utilization}, bc/wc={bcwc})",
        x_label="cores",
        y_label="energy normalized to 1-core no-DVS")
    for cores in core_counts:
        values: dict[str, list[float]] = {name: [] for name in policies}
        misses = 0
        for seed in taskset_seeds(master_seed, n_tasksets):
            taskset = standard_taskset(n_tasks, total_utilization, seed)
            model = bcwc_model(bcwc, seed)
            try:
                baseline = simulate_partitioned(
                    taskset, 1, ideal_processor,
                    lambda: make_policy("none"), model,
                    horizon=EXPERIMENT_HORIZON)
            except InfeasibleTaskSetError:
                continue
            for name in policies:
                try:
                    result = simulate_partitioned(
                        taskset, int(cores), ideal_processor,
                        lambda name=name: make_policy(name), model,
                        horizon=EXPERIMENT_HORIZON)
                except InfeasibleTaskSetError:
                    continue
                misses += result.deadline_miss_count
                values[name].append(result.normalized_energy(baseline))
        for name, series in values.items():
            if not series:
                continue
            summary = summarize(series)
            figure.add_point(name, SeriesPoint(
                x=float(cores), mean=summary.mean, ci95=summary.ci95,
                count=summary.count, extra={"misses": misses}))
    figure.notes.append(
        "idle cores pay no power on the ideal profile; see EXP-F11 for "
        "idle/leakage effects")
    return figure


def fault_matrix(
    *,
    factors: Sequence[float] = (1.0, 1.1, 1.2, 1.3, 1.4),
    utilization: float = 0.65,
    n_tasks: int = 6,
    n_tasksets: int = 5,
    bcwc: float = 0.5,
    overrun_probability: float = 1.0,
    policies: Sequence[str] = ("none", "ccEDF", "DRA", "lpSEH", "lpSTA"),
    master_seed: int = 2002,
    horizon: float = EXPERIMENT_HORIZON,
    quick: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> FigureData:
    """EXP-FM1: miss rate and governor interventions vs overrun severity.

    Every (policy, overrun-factor) cell runs twice on the same seeded
    workloads: *raw* (the policy on its own, misses allowed and
    counted) and *governed* (wrapped in a
    :class:`~repro.policies.governor.SafetyGovernor` with
    ``margin = factor``).  Factors stay below the schedulability limit
    ``1 / U``, so the governed runs must report **zero** misses — the
    hard-real-time guarantee holds by construction — while the raw
    reclaiming policies demonstrate that the injector bites.  The
    energy cost of that guarantee shows up as the governed normalized
    energy and the intervention rate.
    """
    if quick:
        factors = (1.0, 1.3)
        n_tasksets = 2
        horizon = 600.0
    limit = 1.0 / utilization
    if max(factors) > limit + 1e-9:
        raise ExperimentError(
            f"overrun factor {max(factors)} exceeds the schedulability "
            f"limit 1/U = {limit:.3f}; no governor can hold deadlines "
            f"beyond it")
    figure = FigureData(
        experiment_id="EXP-FM1",
        title=f"Deadline-miss rate vs WCET-overrun factor "
              f"(U={utilization}, n={n_tasks}, p_overrun="
              f"{overrun_probability})",
        x_label="overrun factor",
        y_label="raw miss rate (misses per released job)")

    def workload(x: float, seed: int):
        return (standard_taskset(n_tasks, utilization, seed),
                bcwc_model(bcwc, seed))

    def plan_for(x: float, seed: int) -> FaultPlan | None:
        if x <= 1.0 + 1e-12:
            return None
        return FaultPlan(seed=seed, overrun=OverrunFault(
            factor=x, probability=overrun_probability))

    def governed_factory(x: float):
        return lambda name: make_policy(
            name, governed=True, governor_margin=max(1.0, float(x)))

    base_dir = Path(checkpoint_dir) if checkpoint_dir else None
    # The raw and governed sweeps differ only in policy_factory, which
    # the cache fingerprint cannot see — the workload id must carry
    # the distinction (and every other closure parameter).
    id_stem = (f"EXP-FM1:u={utilization:g}:n={n_tasks}:bcwc={bcwc:g}"
               f":p={overrun_probability:g}")
    raw_cells = sweep(
        factors, workload, policies,
        n_tasksets=n_tasksets, master_seed=master_seed, horizon=horizon,
        allow_misses=True, faults_factory=plan_for,
        checkpoint_dir=(base_dir / "raw" if base_dir else None),
        resume=resume, workers=workers, cache_dir=cache_dir,
        workload_id=f"{id_stem}:raw")
    governed_cells = sweep(
        factors, workload, policies,
        n_tasksets=n_tasksets, master_seed=master_seed, horizon=horizon,
        allow_misses=True, faults_factory=plan_for,
        policy_factory=governed_factory,
        checkpoint_dir=(base_dir / "governed" if base_dir else None),
        resume=resume, workers=workers, cache_dir=cache_dir,
        workload_id=f"{id_stem}:governed")

    raw_misses_total = 0
    governed_misses_total = 0
    overruns_total = 0
    for raw, governed in zip(raw_cells, governed_cells):
        for name in raw.normalized:
            released = max(1, raw.released.get(name, 0))
            g_released = max(1, governed.released.get(name, 0))
            dispatches = max(1, governed.dispatches.get(name, 0))
            energy = summarize(raw.normalized[name])
            g_energy = summarize(governed.normalized[name])
            figure.add_point(name, SeriesPoint(
                x=raw.x,
                mean=raw.misses.get(name, 0) / released,
                ci95=0.0,
                count=len(raw.normalized[name]),
                extra={
                    "raw_misses": raw.misses.get(name, 0),
                    "governed_misses": governed.misses.get(name, 0),
                    "governed_miss_rate":
                        governed.misses.get(name, 0) / g_released,
                    "intervention_rate":
                        governed.interventions.get(name, 0) / dispatches,
                    "raw_energy": energy.mean,
                    "governed_energy": g_energy.mean,
                    "overrun_jobs": raw.overruns.get(name, 0),
                }))
            raw_misses_total += raw.misses.get(name, 0)
            governed_misses_total += governed.misses.get(name, 0)
        overruns_total += max(raw.overruns.values(), default=0)
    figure.notes.append(
        f"raw misses: {raw_misses_total}; governed misses: "
        f"{governed_misses_total} (must be 0); overrun jobs injected "
        f"per policy: {overruns_total}")
    return figure


#: Figure id -> driver, in EXPERIMENTS.md order.
FIGURES = {
    "fig1": energy_vs_utilization,
    "fig2": energy_vs_bcwc,
    "fig3": energy_vs_ntasks,
    "fig4": energy_vs_levels,
    "fig5": overhead_sensitivity,
    "fig6": slack_accuracy,
    "fig7": baseline_ablation,
    "fig8": leakage_sensitivity,
    "fig9": optimality_gap,
    "fig10": sporadic_sensitivity,
    "fig11": dpm_sensitivity,
    "fig12": multicore_scaling,
    "faultmatrix": fault_matrix,
}
