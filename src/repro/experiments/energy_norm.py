"""Energy normalisation helpers and analytic lower bounds."""

from __future__ import annotations

from repro.cpu.processor import Processor
from repro.errors import ExperimentError
from repro.tasks.execution import ExecutionModel
from repro.tasks.taskset import TaskSet
from repro.types import Energy, Time


def total_actual_work(taskset: TaskSet, execution_model: ExecutionModel,
                      horizon: Time, *, due_only: bool = False) -> float:
    """Sum of actual demands of jobs released inside ``[0, horizon)``.

    With ``due_only=True`` only jobs whose absolute deadline falls at or
    before *horizon* are counted — the work that any feasible schedule
    is *obliged* to retire inside the horizon (what the lower bound
    needs; jobs released near the end may legally finish afterwards).
    """
    total = 0.0
    for task in taskset:
        index = 0
        while task.release_time(index) < horizon - 1e-9:
            if (not due_only
                    or task.absolute_deadline(index) <= horizon + 1e-9):
                total += execution_model.work(task, index)
            index += 1
    return total


def jensen_lower_bound(taskset: TaskSet, execution_model: ExecutionModel,
                       processor: Processor, horizon: Time) -> Energy:
    """A floor on the energy of *any* feasible schedule of the workload.

    Relax every deadline except the horizon itself: every job due by
    the horizon must be fully retired inside it, and the cheapest way
    to retire total work ``W`` within ``[0, horizon]`` under a convex
    power function is the constant speed ``W / horizon`` for the whole
    horizon (Jensen's inequality), clamped up to the processor's
    minimum speed.  Real schedules respect all the other deadlines too,
    so their energy can only be higher.
    """
    if horizon <= 0:
        raise ExperimentError(f"horizon must be > 0, got {horizon}")
    work = total_actual_work(taskset, execution_model, horizon,
                             due_only=True)
    if work <= 0:
        return 0.0
    speed = max(processor.min_speed, min(1.0, work / horizon))
    busy_time = work / speed
    return processor.active_energy(speed, busy_time)


def normalized(value: Energy, baseline: Energy) -> float:
    """``value / baseline`` with a zero-baseline guard."""
    if baseline <= 0:
        raise ExperimentError(f"baseline energy must be > 0, got {baseline}")
    return value / baseline
