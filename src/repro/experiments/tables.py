"""Per-table experiment drivers (EXP-T1, EXP-T2)."""

from __future__ import annotations

from typing import Sequence

from repro.cpu.profiles import PROCESSOR_PROFILES, ideal_processor
from repro.experiments.config import DEFAULT_POLICIES, TableData
from repro.experiments.runner import run_suite
from repro.tasks.benchmarks import BENCHMARK_TASKSETS
from repro.tasks.execution import model_for_bcwc_ratio


def processor_model_table() -> TableData:
    """EXP-T1: the processor models available to the experiments."""
    table = TableData(
        experiment_id="EXP-T1",
        title="Processor models (speed levels, power law, switching)",
        columns=("profile", "levels", "min_speed", "power_at_min",
                 "power_at_max", "transition"),
    )
    for name, factory in PROCESSOR_PROFILES.items():
        processor = factory()
        scale = processor.scale
        if scale.is_continuous:
            levels = "continuous"
        else:
            levels = str(len(scale.levels))
        table.add_row(
            profile=name,
            levels=levels,
            min_speed=scale.min_speed,
            power_at_min=processor.power(scale.min_speed),
            power_at_max=processor.power(1.0),
            transition=processor.transition_model.describe(),
        )
    table.notes.append(
        "powers are in each profile's native units; experiments only "
        "use ratios, so units never mix across profiles")
    return table


def realworld_table(
    *,
    bcwc: float = 0.5,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 2002,
    quick: bool = False,
) -> TableData:
    """EXP-T2: normalized energy on the real-world benchmark suites."""
    table = TableData(
        experiment_id="EXP-T2",
        title=f"Normalized energy on benchmark task sets (bc/wc={bcwc})",
        columns=("taskset", "n", "U", *policies),
    )
    for name, factory in BENCHMARK_TASKSETS.items():
        taskset = factory()
        horizon = taskset.default_horizon(
            min_jobs_per_task=4 if quick else 10, max_hyperperiods=1)
        model = model_for_bcwc_ratio(bcwc, seed=seed)
        suite = run_suite(taskset, policies, ideal_processor(), model,
                          horizon=horizon)
        row = {"taskset": name, "n": len(taskset),
               "U": taskset.utilization}
        for policy in policies:
            row[policy] = suite.normalized(policy)
        table.add_row(**row)
    table.notes.append(
        "benchmark suites are representative reconstructions "
        "(DESIGN.md §4.5); horizons are per-suite hyperperiod-derived")
    return table


def latency_price_table(
    *,
    utilization: float = 0.7,
    bcwc: float = 0.5,
    n_tasks: int = 8,
    n_tasksets: int = 10,
    policies: Sequence[str] = DEFAULT_POLICIES,
    master_seed: int = 2002,
    quick: bool = False,
) -> TableData:
    """EXP-T3 (extension): the response-time price of saving energy.

    DVS trades latency margin for energy: jobs finish later (though
    never after their deadlines).  For each policy: normalized energy,
    the mean and worst response time as multiples of the no-DVS run's,
    and the mean busy speed.  Makes the quality-of-service cost of each
    scheme explicit — the dimension pure energy plots hide.
    """
    from repro.analysis.stats import summarize
    from repro.experiments.runner import standard_taskset, taskset_seeds
    from repro.tasks.execution import model_for_bcwc_ratio as bcwc_model

    if quick:
        n_tasksets = 3
    table = TableData(
        experiment_id="EXP-T3",
        title=f"Latency price of energy saving (U={utilization}, "
              f"bc/wc={bcwc}, n={n_tasks})",
        columns=("policy", "energy", "mean_resp_x", "max_resp_x",
                 "mean_speed"),
    )
    energy: dict[str, list[float]] = {p: [] for p in policies}
    mean_resp: dict[str, list[float]] = {p: [] for p in policies}
    max_resp: dict[str, list[float]] = {p: [] for p in policies}
    speed: dict[str, list[float]] = {p: [] for p in policies}
    for seed in taskset_seeds(master_seed, n_tasksets):
        taskset = standard_taskset(n_tasks, utilization, seed)
        model = bcwc_model(bcwc, seed)
        suite = run_suite(taskset, policies, ideal_processor(), model,
                          horizon=2400.0)
        base = suite.baseline
        base_mean = {name: stats.mean_response
                     for name, stats in base.task_stats.items()}
        base_max = {name: stats.max_response
                    for name, stats in base.task_stats.items()}
        for policy in policies:
            result = suite.results[policy]
            energy[policy].append(suite.normalized(policy))
            ratios_mean = [
                stats.mean_response / base_mean[name]
                for name, stats in result.task_stats.items()
                if base_mean[name] > 0 and stats.completed > 0]
            ratios_max = [
                stats.max_response / base_max[name]
                for name, stats in result.task_stats.items()
                if base_max[name] > 0 and stats.completed > 0]
            if ratios_mean:
                mean_resp[policy].append(
                    sum(ratios_mean) / len(ratios_mean))
            if ratios_max:
                max_resp[policy].append(max(ratios_max))
            speed[policy].append(result.mean_speed())
    for policy in policies:
        table.add_row(
            policy=policy,
            energy=summarize(energy[policy]).mean,
            mean_resp_x=summarize(mean_resp[policy]).mean,
            max_resp_x=summarize(max_resp[policy]).mean,
            mean_speed=summarize(speed[policy]).mean,
        )
    table.notes.append(
        "resp_x columns are response times as multiples of the no-DVS "
        "run's (deadlines are still always met)")
    return table


#: Table id -> driver, in EXPERIMENTS.md order.
TABLES = {
    "table1": processor_model_table,
    "table2": realworld_table,
    "table3": latency_price_table,
}
