"""Result regression checking: diff two exported result sets.

Experiments are seeded and deterministic, so any drift between two
``repro run all --out <dir>`` exports is a real behavioural change —
an algorithm edit, a generator change, a bug (or a bug fix).  This
module compares two result directories cell by cell and reports every
drift beyond a tolerance, which makes "did my change alter the
evaluation?" a one-command question:

    repro diff results_before/ results_after/
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.io import read_json


@dataclass(frozen=True)
class Drift:
    """One changed cell between two result sets."""

    experiment: str
    key: str
    before: float | str | None
    after: float | str | None

    def describe(self) -> str:
        return (f"{self.experiment} {self.key}: "
                f"{self.before!r} -> {self.after!r}")


def _load_dir(directory: str | Path) -> dict[str, dict]:
    payloads = {}
    for path in sorted(Path(directory).glob("*.json")):
        payload = read_json(path)
        if "experiment" in payload and "rows" in payload:
            payloads[payload["experiment"]] = payload
    if not payloads:
        raise ExperimentError(
            f"no experiment JSON exports found in {directory}")
    return payloads


def _row_key(row: dict) -> str:
    """Stable identity of a row within its experiment."""
    if "series" in row and "x" in row:
        return f"{row['series']}@x={row['x']:g}"
    for candidate in ("policy", "taskset", "profile"):
        if candidate in row:
            return f"{candidate}={row[candidate]}"
    return repr(sorted(row.items()))


def _numeric_fields(row: dict) -> dict[str, float]:
    return {key: value for key, value in row.items()
            if isinstance(value, (int, float)) and key != "x"
            and not isinstance(value, bool)}


def diff_results(before_dir: str | Path, after_dir: str | Path,
                 *, rel_tol: float = 1e-6,
                 abs_tol: float = 1e-9) -> list[Drift]:
    """Every cell that differs between the two exports.

    Missing experiments/rows/fields are reported with ``None`` on the
    absent side.  Numeric cells compare with the given tolerances;
    everything else compares exactly.
    """
    before = _load_dir(before_dir)
    after = _load_dir(after_dir)
    drifts: list[Drift] = []

    for experiment in sorted(set(before) | set(after)):
        if experiment not in before:
            drifts.append(Drift(experiment, "(whole experiment)",
                                None, "present"))
            continue
        if experiment not in after:
            drifts.append(Drift(experiment, "(whole experiment)",
                                "present", None))
            continue
        rows_before = {_row_key(r): r for r in before[experiment]["rows"]}
        rows_after = {_row_key(r): r for r in after[experiment]["rows"]}
        for key in sorted(set(rows_before) | set(rows_after)):
            if key not in rows_before:
                drifts.append(Drift(experiment, key, None, "present"))
                continue
            if key not in rows_after:
                drifts.append(Drift(experiment, key, "present", None))
                continue
            b_fields = _numeric_fields(rows_before[key])
            a_fields = _numeric_fields(rows_after[key])
            for field in sorted(set(b_fields) | set(a_fields)):
                b = b_fields.get(field)
                a = a_fields.get(field)
                if b is None or a is None:
                    drifts.append(Drift(experiment, f"{key}.{field}",
                                        b, a))
                    continue
                if abs(a - b) > abs_tol + rel_tol * max(abs(a), abs(b)):
                    drifts.append(Drift(experiment, f"{key}.{field}",
                                        b, a))
    return drifts


def render_drifts(drifts: list[Drift]) -> str:
    """Human-readable drift report (empty-result friendly)."""
    if not drifts:
        return "no drifts: result sets are equivalent"
    lines = [f"{len(drifts)} drifted cells:"]
    lines.extend(f"  {d.describe()}" for d in drifts)
    return "\n".join(lines)
