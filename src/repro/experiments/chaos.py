"""Deterministic chaos injection into the sweep executor itself.

:mod:`repro.faults` injects faults into the *simulated* system (WCET
overruns, jitter, transition faults); this module is its mirror for
the *execution harness*: seeded injection of worker crashes, hangs and
artifact-write failures into the runner / parallel executor / cache
stack, so the resilience layer (supervision, deadlines, quarantine,
degraded I/O) is proven by tests and the CI chaos gate rather than
trusted.

A :class:`ChaosPlan` is installed process-wide (:func:`install` /
:func:`active`); forked sweep workers inherit it for free, exactly
like the sweep spec.  Every stochastic decision derives from a stable
hash of ``(plan seed, salt, unit key)`` — the same counter-based
scheme the execution models and fault plans use — so a chaos run is
reproducible event for event.

**At-most-once semantics:** a crash or hang that re-fires on every
retry would turn recovery tests into livelocks.  With ``marker_dir``
set, each triggered injection first claims a marker file with an
atomic exclusive create; the retried (or re-dispatched) unit then
runs clean, which is what lets the chaos gate demand byte-identical
results to an uninjected run.  Without a marker dir, injections fire
on every evaluation — the shape quarantine tests want.

Injection points (all no-ops while no plan is installed — one module
attribute check):

* :func:`on_unit_start` — in the worker (or the serial loop), before
  a unit's suite runs: may ``os._exit`` the process (crash) or sleep
  (hang; optionally with SIGALRM blocked, to exercise the parent-side
  watchdog rather than the in-worker deadline).
* :func:`on_artifact_write` — in :meth:`SuiteCache.put` and
  :meth:`SweepCheckpointer.store`, before the write: may raise an
  ``OSError`` (default ``ENOSPC``), to exercise degraded I/O.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigurationError

_CRASH_SALT = 0xC0A1
_HANG_SALT = 0xC0A2
_WRITE_SALT = 0xC0A3


def _draw(seed: int, salt: int, key: str) -> float:
    """Deterministic uniform [0, 1) draw for one (salt, key) decision."""
    digest = hashlib.blake2b(f"{seed}:{salt}:{key}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


@dataclass(frozen=True)
class CrashChaos:
    """Kill the worker process mid-unit with ``os._exit``.

    The hard failure mode: no exception, no cleanup — exactly what an
    OOM kill or segfault looks like from the parent, which sees a
    ``BrokenProcessPool``.
    """

    probability: float = 1.0
    exit_code: int = 137  # what the kernel's OOM killer leaves behind

    def __post_init__(self) -> None:
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError(
                f"crash probability must be in (0, 1], got "
                f"{self.probability}")


@dataclass(frozen=True)
class HangChaos:
    """Stall the worker mid-unit for *duration* seconds.

    With ``block_alarm=True`` the sleep runs with SIGALRM masked, so
    the in-worker unit deadline cannot fire — the shape of a hang in
    non-Python code — and only the parent-side watchdog can recover.
    """

    probability: float = 1.0
    duration: float = 3600.0
    block_alarm: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError(
                f"hang probability must be in (0, 1], got "
                f"{self.probability}")
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"hang duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class WriteChaos:
    """Fail artifact writes (cache entries, checkpoints) with OSError."""

    probability: float = 1.0
    errno_code: int = errno.ENOSPC

    def __post_init__(self) -> None:
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError(
                f"write-failure probability must be in (0, 1], got "
                f"{self.probability}")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded executor-fault configuration, installed process-wide."""

    seed: int
    crash: CrashChaos | None = None
    hang: HangChaos | None = None
    write_error: WriteChaos | None = None
    #: With a directory set, each triggered injection fires at most
    #: once across the whole run (all processes), via atomic marker
    #: files — retried units recover.
    marker_dir: str | None = None

    def describe(self) -> str:
        parts = []
        if self.crash is not None:
            parts.append(f"crash(p={self.crash.probability:g})")
        if self.hang is not None:
            parts.append(f"hang(p={self.hang.probability:g}, "
                         f"{self.hang.duration:g}s"
                         + (", blocking" if self.hang.block_alarm else "")
                         + ")")
        if self.write_error is not None:
            parts.append(f"write_error(p={self.write_error.probability:g})")
        inside = ", ".join(parts) or "no-op"
        once = ", once" if self.marker_dir else ""
        return f"chaos(seed={self.seed}, {inside}{once})"


#: The installed plan; inherited by forked workers.  ``None`` keeps
#: every injection point a single attribute check.
_PLAN: ChaosPlan | None = None


def install(plan: ChaosPlan) -> None:
    """Install *plan* process-wide (call before the pool forks)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    global _PLAN
    _PLAN = None


def current() -> ChaosPlan | None:
    return _PLAN


@contextmanager
def active(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Scoped installation, restoring the previous plan on exit."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def _claim_once(plan: ChaosPlan, kind: str, key: str) -> bool:
    """Whether this injection may fire (claims the at-most-once marker).

    Without a marker dir every evaluation fires.  With one, the first
    process to atomically create the marker wins; everyone else (and
    every retry) sees the injection as already spent.
    """
    if plan.marker_dir is None:
        return True
    token = hashlib.blake2b(f"{kind}:{key}".encode(),
                            digest_size=8).hexdigest()
    marker = Path(plan.marker_dir) / f"fired_{kind}_{token}"
    try:
        marker.parent.mkdir(parents=True, exist_ok=True)
        with open(marker, "x"):
            return True
    except FileExistsError:
        return False
    except OSError:
        return False  # degraded marker I/O: do not fire, do not crash


def on_unit_start(x: float, seed: int) -> None:
    """Chaos hook before one (cell, seed) unit's suite runs."""
    plan = _PLAN
    if plan is None:
        return
    key = f"{x!r}:{seed}"
    if (plan.crash is not None
            and _draw(plan.seed, _CRASH_SALT, key) < plan.crash.probability
            and _claim_once(plan, "crash", key)):
        os._exit(plan.crash.exit_code)
    if (plan.hang is not None
            and _draw(plan.seed, _HANG_SALT, key) < plan.hang.probability
            and _claim_once(plan, "hang", key)):
        if plan.hang.block_alarm:
            previous = signal.pthread_sigmask(
                signal.SIG_BLOCK, {signal.SIGALRM})
            try:
                time.sleep(plan.hang.duration)
            finally:
                signal.pthread_sigmask(signal.SIG_SETMASK, previous)
        else:
            time.sleep(plan.hang.duration)


def on_artifact_write(kind: str, path: str | Path) -> None:
    """Chaos hook before an artifact write (cache entry, checkpoint)."""
    plan = _PLAN
    if plan is None or plan.write_error is None:
        return
    key = f"{kind}:{Path(path).name}"
    if (_draw(plan.seed, _WRITE_SALT, key) < plan.write_error.probability
            and _claim_once(plan, "write", key)):
        code = plan.write_error.errno_code
        raise OSError(code, f"chaos: injected {os.strerror(code)} "
                            f"writing {kind} {path}")
