"""Experiment harness: figure/table drivers, sweeps and exporters."""

from repro.experiments.config import (
    DEFAULT_POLICIES,
    EXPERIMENT_HORIZON,
    EXPERIMENT_PERIOD_CHOICES,
    FigureData,
    SeriesPoint,
    TableData,
)
from repro.experiments.cache import (
    PolicySummary,
    SuiteCache,
    suite_fingerprint,
)
from repro.experiments.runner import (
    SuiteResult,
    SweepCell,
    run_suite,
    standard_taskset,
    sweep,
    taskset_seeds,
    bcwc_model,
)
from repro.experiments.energy_norm import (
    jensen_lower_bound,
    total_actual_work,
    normalized,
)
from repro.experiments.figures import (
    FIGURES,
    energy_vs_utilization,
    energy_vs_bcwc,
    energy_vs_ntasks,
    energy_vs_levels,
    overhead_sensitivity,
    slack_accuracy,
    baseline_ablation,
    leakage_sensitivity,
    optimality_gap,
    sporadic_sensitivity,
    dpm_sensitivity,
    multicore_scaling,
)
from repro.experiments.tables import (
    TABLES,
    processor_model_table,
    realworld_table,
    latency_price_table,
)
from repro.experiments.probes import SlackProbePolicy
from repro.experiments.io import write_csv, write_json, read_json
from repro.experiments.report import build_report, write_report
from repro.experiments.regression import Drift, diff_results, render_drifts

__all__ = [
    "DEFAULT_POLICIES",
    "EXPERIMENT_HORIZON",
    "EXPERIMENT_PERIOD_CHOICES",
    "FigureData",
    "SeriesPoint",
    "TableData",
    "PolicySummary",
    "SuiteCache",
    "suite_fingerprint",
    "SuiteResult",
    "SweepCell",
    "run_suite",
    "standard_taskset",
    "sweep",
    "taskset_seeds",
    "bcwc_model",
    "jensen_lower_bound",
    "total_actual_work",
    "normalized",
    "FIGURES",
    "energy_vs_utilization",
    "energy_vs_bcwc",
    "energy_vs_ntasks",
    "energy_vs_levels",
    "overhead_sensitivity",
    "slack_accuracy",
    "baseline_ablation",
    "leakage_sensitivity",
    "optimality_gap",
    "sporadic_sensitivity",
    "dpm_sensitivity",
    "multicore_scaling",
    "TABLES",
    "processor_model_table",
    "realworld_table",
    "latency_price_table",
    "SlackProbePolicy",
    "write_csv",
    "write_json",
    "read_json",
    "build_report",
    "write_report",
    "Drift",
    "diff_results",
    "render_drifts",
]
