"""Result export: CSV and JSON emitters for figures and tables."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.experiments.config import FigureData, TableData

Exportable = Union[FigureData, TableData]


def write_csv(data: Exportable, path: str | Path) -> Path:
    """Write the flattened rows of a figure/table to *path* as CSV."""
    rows = data.to_rows()
    if not rows:
        raise ExperimentError(f"{data.experiment_id}: nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(data: Exportable, path: str | Path) -> Path:
    """Write a figure/table (rows + metadata) to *path* as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": data.experiment_id,
        "title": data.title,
        "notes": list(data.notes),
        "rows": data.to_rows(),
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_json(path: str | Path) -> dict:
    """Load a previously exported JSON payload."""
    with Path(path).open() as handle:
        return json.load(handle)
