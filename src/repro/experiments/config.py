"""Shared experiment configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExperimentError

#: Period grid used by the experiment workloads.  The least common
#: multiple of every subset divides 1200, so two hyperperiods (2400
#: time units) make an exact, affordable simulation horizon.
EXPERIMENT_PERIOD_CHOICES: tuple[float, ...] = (
    10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0, 120.0, 150.0, 200.0)

#: Default horizon matching the grid above (two hyperperiods).
EXPERIMENT_HORIZON: float = 2400.0

#: Canonical policy order for figures (baseline first, oracle last).
DEFAULT_POLICIES: tuple[str, ...] = (
    "none", "static", "lppsEDF", "ccEDF", "DRA", "laEDF", "feedback",
    "lpSEH", "lpSTA", "clairvoyant")


@dataclass(frozen=True)
class SeriesPoint:
    """One aggregated (x, y) cell of a figure."""

    x: float
    mean: float
    ci95: float
    count: int
    extra: dict = field(default_factory=dict)


@dataclass
class FigureData:
    """All series of one reproduced figure, ready to render or dump."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[SeriesPoint]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_point(self, series_name: str, point: SeriesPoint) -> None:
        self.series.setdefault(series_name, []).append(point)

    def xs(self) -> list[float]:
        """The sorted union of x values across series."""
        values: set[float] = set()
        for points in self.series.values():
            values.update(p.x for p in points)
        return sorted(values)

    def value_at(self, series_name: str, x: float) -> SeriesPoint | None:
        for point in self.series.get(series_name, ()):
            if abs(point.x - x) <= 1e-9:
                return point
        return None

    def render(self, precision: int = 3) -> str:
        """An ASCII table: one row per x, one column per series."""
        if not self.series:
            return f"{self.experiment_id}: (no data)"
        names = list(self.series)
        width = max(8, max(len(n) for n in names) + 1)
        header = f"{self.x_label:>12} " + " ".join(
            f"{n:>{width}}" for n in names)
        lines = [f"== {self.experiment_id}: {self.title} ==",
                 f"   ({self.y_label})", header]
        for x in self.xs():
            cells = []
            for name in names:
                point = self.value_at(name, x)
                cells.append(f"{point.mean:>{width}.{precision}f}"
                             if point else " " * width)
            lines.append(f"{x:>12.3f} " + " ".join(cells))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def to_rows(self) -> list[dict]:
        """Flat row dicts for CSV export."""
        rows = []
        for name, points in self.series.items():
            for p in points:
                row = {"experiment": self.experiment_id, "series": name,
                       "x": p.x, "mean": p.mean, "ci95": p.ci95,
                       "count": p.count}
                row.update(p.extra)
                rows.append(row)
        return rows

    def render_chart(self, width: int = 64, height: int = 16) -> str:
        """An ASCII scatter/line chart of every series.

        Each series gets a marker letter (its legend shows the
        mapping); points are bucketed onto a character grid scaled to
        the data ranges.  Good enough to eyeball monotonicity and
        crossovers straight from the terminal.
        """
        points = [(p.x, p.mean, name)
                  for name, pts in self.series.items() for p in pts]
        if not points:
            return f"{self.experiment_id}: (no data)"
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * width for _ in range(height)]
        markers = {}
        for index, name in enumerate(self.series):
            markers[name] = chr(ord("A") + index % 26)
        for x, y, name in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = "*" if cell not in (" ", markers[name]) \
                else markers[name]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(f"{y_hi:>10.3g} ┤" + "".join(grid[0]))
        for row in grid[1:-1]:
            lines.append(" " * 10 + " │" + "".join(row))
        lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
        lines.append(" " * 12 + "└" + "─" * width)
        lines.append(" " * 12 + f"{x_lo:<.3g}"
                     + " " * max(1, width - 12) + f"{x_hi:>.3g}")
        legend = "  ".join(f"{marker}={name}"
                           for name, marker in markers.items())
        lines.append(f"   legend: {legend}  (*=overlap)")
        return "\n".join(lines)


@dataclass
class TableData:
    """A reproduced table: named columns, list of row dicts."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ExperimentError(
                f"table {self.experiment_id}: row missing columns {missing}")
        self.rows.append(values)

    def render(self, precision: int = 3) -> str:
        widths = {c: max(len(c), 10) for c in self.columns}
        header = " ".join(f"{c:>{widths[c]}}" for c in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header]
        for row in self.rows:
            cells = []
            for c in self.columns:
                v = row[c]
                if isinstance(v, float):
                    cells.append(f"{v:>{widths[c]}.{precision}f}")
                else:
                    cells.append(f"{str(v):>{widths[c]}}")
            lines.append(" ".join(cells))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def to_rows(self) -> list[dict]:
        return [{"experiment": self.experiment_id, **row}
                for row in self.rows]
