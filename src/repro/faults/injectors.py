"""Fault injectors: wrappers that bend the workload models.

Each injector wraps a fault-free model and applies the plan's seeded
perturbations on top, preserving the wrapped model's determinism
contract — ``(seed, task, index)`` fully determines every sample, so
oracle queries (clairvoyant policy) and the engine keep agreeing even
under faults.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.tasks.arrivals import ArrivalModel
from repro.tasks.execution import ExecutionModel
from repro.tasks.task import PeriodicTask
from repro.types import Time, Work


class FaultyExecution(ExecutionModel):
    """Execution model with seeded WCET overruns layered on top.

    A faulted job's demand becomes ``factor * C_i`` — deliberately
    *more* than the worst case every online policy budgets for.  The
    engine admits such jobs only when a fault plan is active, so the
    fault-free invariant ``work <= wcet`` stays enforced everywhere
    else.
    """

    def __init__(self, inner: ExecutionModel, plan: FaultPlan) -> None:
        super().__init__(inner.seed)
        self.inner = inner
        self.plan = plan

    def ratio(self, task: PeriodicTask, index: int) -> float:
        return self.inner.ratio(task, index)

    def work(self, task: PeriodicTask, index: int) -> Work:
        factor = self.plan.overrun_factor(task.name, index)
        if factor <= 1.0:
            return self.inner.work(task, index)
        return task.wcet * factor

    def describe(self) -> str:
        return f"{self.inner.describe()} + {self.plan.describe()}"


class FaultyArrival(ArrivalModel):
    """Arrival model with jitter, burst compression and clock drift.

    Gap pipeline per job: burst blocks collapse the wrapped gap to the
    minimum separation; otherwise seeded jitter stretches it; finally
    clock drift multiplies everything by ``1 + rate``.  Every stage
    maps gaps ``>= period`` to gaps ``>= period``, so the sporadic
    minimum-separation contract — and with it every feasibility bound —
    survives injection.
    """

    def __init__(self, inner: ArrivalModel, plan: FaultPlan) -> None:
        super().__init__(inner.seed)
        self.inner = inner
        self.plan = plan

    def gap(self, task: PeriodicTask, index: int) -> Time:
        gap = self.inner.gap(task, index)
        if self.plan.in_burst(task.name, index):
            gap = task.period
        else:
            gap += self.plan.jitter_stretch(task.name, index) * task.period
        if self.plan.drift is not None:
            gap *= 1.0 + self.plan.drift.rate
        return gap

    @property
    def is_periodic(self) -> bool:
        # Jitter/bursts/drift all make the timeline data-dependent;
        # policies must fall back to the pessimistic sporadic view.
        return False

    def describe(self) -> str:
        return f"{self.inner.describe()} + {self.plan.describe()}"
