"""Declarative fault plans: what goes wrong, when, deterministically.

A :class:`FaultPlan` bundles up to four independent fault classes —
WCET overruns, arrival perturbations (jitter / bursts), release-clock
drift, and DVS transition faults — behind one seeded configuration
object.  Every stochastic decision is derived from a stable hash of
``(seed, salt, key, index)`` (the same counter-based scheme the
execution models use), so two runs under the same plan produce
byte-identical traces regardless of query order, and ``faults=None``
leaves the engine bit-identical to the fault-free code path.

Plans are constructed either directly from the dataclasses below or
parsed from the compact CLI grammar understood by
:func:`parse_fault_plan`::

    overrun:1.5            every job demands 1.5x its WCET
    overrun:1.5:0.3        ... with probability 0.3 per job
    jitter:0.2             release gaps stretch by up to 0.2x the period
    burst:0.25:6           blocks of 6 jobs compress to min separation
    drift:0.01             the release clock runs 1% slow
    stuck:0.2              20% of speed switches fail and hold
    delay:0.05             every switch takes 0.05 extra time units
    quantize:0.1           achieved speeds round up to a 0.1 grid

Multiple clauses combine with commas: ``overrun:1.4,stuck:0.1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tasks.execution import _job_rng
from repro.types import Speed, Time

#: Salts keeping the fault streams independent of the workload streams.
_OVERRUN_SALT = 0x0FA1
_BURST_SALT = 0x0FA2
_JITTER_SALT = 0x0FA3
_STUCK_SALT = 0x0FA4


def _ceil_to_grid(value: float, step: float) -> float:
    """Round *value* up to a multiple of *step*, forgiving float dust."""
    quotient = value / step
    nearest = round(quotient)
    ticks = nearest if abs(quotient - nearest) <= 1e-9 else math.ceil(quotient)
    return step * ticks


@dataclass(frozen=True)
class OverrunFault:
    """Jobs exceed their declared WCET by a fixed factor.

    A faulted job's actual demand becomes ``factor * C_i`` — strictly
    more than the budget every online policy reasons about.  Whether a
    given job is faulted is a seeded per-``(task, index)`` Bernoulli
    draw with *probability*.
    """

    factor: float
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ConfigurationError(
                f"overrun factor must be > 1, got {self.factor}")
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError(
                f"overrun probability must be in (0, 1], got "
                f"{self.probability}")

    def describe(self) -> str:
        return f"overrun(x{self.factor:g}, p={self.probability:g})"


@dataclass(frozen=True)
class ArrivalFault:
    """Release-timeline perturbations layered on an arrival model.

    ``jitter`` stretches each inter-arrival gap by a uniform draw in
    ``[0, jitter] * period`` (releases come late, never early — the
    minimum separation contract survives).  ``burst_probability``
    compresses whole blocks of ``burst_length`` consecutive jobs down
    to the minimum separation, modelling sporadic bursts on top of a
    slack-rich sporadic base.
    """

    jitter: float = 0.0
    burst_probability: float = 0.0
    burst_length: int = 4

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter}")
        if not (0.0 <= self.burst_probability <= 1.0):
            raise ConfigurationError(
                f"burst_probability must be in [0, 1], got "
                f"{self.burst_probability}")
        if self.burst_length < 1:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {self.burst_length}")

    def describe(self) -> str:
        parts = []
        if self.jitter > 0:
            parts.append(f"jitter={self.jitter:g}")
        if self.burst_probability > 0:
            parts.append(f"burst={self.burst_probability:g}"
                         f"x{self.burst_length}")
        return f"arrival({', '.join(parts) or 'noop'})"


@dataclass(frozen=True)
class ClockDriftFault:
    """The release clock runs slow: every gap stretches by ``1 + rate``.

    Only non-negative drift is representable — a *fast* clock would
    release jobs closer together than the declared minimum separation
    and void every feasibility bound, so it is rejected up front rather
    than silently breaking the hard-real-time contract.
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(
                f"drift rate must be >= 0 (a fast release clock would "
                f"violate minimum separations), got {self.rate}")

    def describe(self) -> str:
        return f"drift(rate={self.rate:g})"


@dataclass(frozen=True)
class TransitionFault:
    """DVS speed switches that misbehave.

    ``stuck_probability``: the switch fails outright and the processor
    holds its previous speed (no cost is paid — the request was simply
    dropped).  ``extra_delay``: successful switches take this much
    longer than the transition model says.  ``quantize_step``: the
    achieved speed rounds *up* to the given grid (rounding up keeps the
    fault on the safe side of every feasibility argument).
    """

    stuck_probability: float = 0.0
    extra_delay: Time = 0.0
    quantize_step: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.stuck_probability <= 1.0):
            raise ConfigurationError(
                f"stuck_probability must be in [0, 1], got "
                f"{self.stuck_probability}")
        if self.extra_delay < 0:
            raise ConfigurationError(
                f"extra_delay must be >= 0, got {self.extra_delay}")
        if self.quantize_step < 0 or self.quantize_step > 1.0:
            raise ConfigurationError(
                f"quantize_step must be in [0, 1], got "
                f"{self.quantize_step}")

    def describe(self) -> str:
        parts = []
        if self.stuck_probability > 0:
            parts.append(f"stuck={self.stuck_probability:g}")
        if self.extra_delay > 0:
            parts.append(f"delay={self.extra_delay:g}")
        if self.quantize_step > 0:
            parts.append(f"quantize={self.quantize_step:g}")
        return f"transition({', '.join(parts) or 'noop'})"


@dataclass(frozen=True)
class TransitionOutcome:
    """What one attempted speed switch actually did."""

    achieved: Speed
    extra_time: Time
    faulted: bool


@dataclass(frozen=True)
class FaultPlan:
    """One run's complete fault configuration.

    All fields default to "no fault of this class"; an all-``None``
    plan is behaviourally identical to ``faults=None`` (the engine
    skips wrapping entirely in that case, so the fault-free path stays
    byte-for-byte untouched).
    """

    seed: int = 0
    overrun: OverrunFault | None = None
    arrival: ArrivalFault | None = None
    drift: ClockDriftFault | None = None
    transition: TransitionFault | None = None

    @property
    def affects_execution(self) -> bool:
        return self.overrun is not None

    @property
    def affects_arrivals(self) -> bool:
        return self.arrival is not None or self.drift is not None

    @property
    def affects_transitions(self) -> bool:
        return self.transition is not None

    # -- per-decision seeded draws -------------------------------------

    def overrun_factor(self, task_name: str, index: int) -> float:
        """Demand multiplier for one job (1.0 when not faulted)."""
        if self.overrun is None:
            return 1.0
        if self.overrun.probability < 1.0:
            draw = float(_job_rng(self.seed ^ _OVERRUN_SALT,
                                  task_name, index).random())
            if draw >= self.overrun.probability:
                return 1.0
        return self.overrun.factor

    def in_burst(self, task_name: str, index: int) -> bool:
        """Whether the job falls inside a compressed burst block."""
        arrival = self.arrival
        if arrival is None or arrival.burst_probability <= 0.0:
            return False
        block = index // arrival.burst_length
        draw = float(_job_rng(self.seed ^ _BURST_SALT,
                              task_name, block).random())
        return draw < arrival.burst_probability

    def jitter_stretch(self, task_name: str, index: int) -> float:
        """Extra gap as a fraction of the period, in ``[0, jitter]``."""
        arrival = self.arrival
        if arrival is None or arrival.jitter <= 0.0:
            return 0.0
        draw = float(_job_rng(self.seed ^ _JITTER_SALT,
                              task_name, index).random())
        return arrival.jitter * draw

    def transition_outcome(self, switch_index: int, current: Speed,
                           target: Speed) -> TransitionOutcome:
        """Resolve the *switch_index*-th attempted switch under faults."""
        fault = self.transition
        if fault is None:
            return TransitionOutcome(achieved=target, extra_time=0.0,
                                     faulted=False)
        if fault.stuck_probability > 0.0:
            draw = float(_job_rng(self.seed ^ _STUCK_SALT, "switch",
                                  switch_index).random())
            if draw < fault.stuck_probability:
                return TransitionOutcome(achieved=current, extra_time=0.0,
                                         faulted=True)
        achieved = target
        quantized = False
        if fault.quantize_step > 0.0:
            snapped = min(1.0, _ceil_to_grid(target, fault.quantize_step))
            quantized = snapped > target + 1e-12
            achieved = snapped
        return TransitionOutcome(achieved=achieved,
                                 extra_time=fault.extra_delay,
                                 faulted=quantized or fault.extra_delay > 0)

    def describe(self) -> str:
        parts = [component.describe()
                 for component in (self.overrun, self.arrival, self.drift,
                                   self.transition)
                 if component is not None]
        return (f"faults(seed={self.seed}; {'; '.join(parts)})"
                if parts else "faults(none)")


def parse_fault_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI grammar (see module docstring) into a plan."""
    overrun: OverrunFault | None = None
    jitter = 0.0
    burst_probability = 0.0
    burst_length = 4
    drift: ClockDriftFault | None = None
    stuck = 0.0
    delay = 0.0
    quantize = 0.0
    seen_arrival = False

    for raw_clause in spec.split(","):
        clause = raw_clause.strip()
        if not clause:
            continue
        kind, _, tail = clause.partition(":")
        args = [a for a in tail.split(":") if a] if tail else []
        try:
            values = [float(a) for a in args]
        except ValueError:
            raise ConfigurationError(
                f"fault clause {clause!r}: arguments must be numeric")
        if kind == "overrun":
            if not 1 <= len(values) <= 2:
                raise ConfigurationError(
                    f"overrun takes factor[:probability], got {clause!r}")
            overrun = OverrunFault(
                factor=values[0],
                probability=values[1] if len(values) == 2 else 1.0)
        elif kind == "jitter":
            if len(values) != 1:
                raise ConfigurationError(
                    f"jitter takes one amount, got {clause!r}")
            jitter = values[0]
            seen_arrival = True
        elif kind == "burst":
            if not 1 <= len(values) <= 2:
                raise ConfigurationError(
                    f"burst takes probability[:length], got {clause!r}")
            burst_probability = values[0]
            if len(values) == 2:
                burst_length = int(values[1])
            seen_arrival = True
        elif kind == "drift":
            if len(values) != 1:
                raise ConfigurationError(
                    f"drift takes one rate, got {clause!r}")
            drift = ClockDriftFault(rate=values[0])
        elif kind == "stuck":
            if len(values) != 1:
                raise ConfigurationError(
                    f"stuck takes one probability, got {clause!r}")
            stuck = values[0]
        elif kind == "delay":
            if len(values) != 1:
                raise ConfigurationError(
                    f"delay takes one duration, got {clause!r}")
            delay = values[0]
        elif kind == "quantize":
            if len(values) != 1:
                raise ConfigurationError(
                    f"quantize takes one step, got {clause!r}")
            quantize = values[0]
        else:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; known: overrun, jitter, "
                f"burst, drift, stuck, delay, quantize")

    arrival = (ArrivalFault(jitter=jitter,
                            burst_probability=burst_probability,
                            burst_length=burst_length)
               if seen_arrival else None)
    transition = (TransitionFault(stuck_probability=stuck,
                                  extra_delay=delay,
                                  quantize_step=quantize)
                  if (stuck or delay or quantize) else None)
    return FaultPlan(seed=seed, overrun=overrun, arrival=arrival,
                     drift=drift, transition=transition)
