"""Deterministic fault injection for adversarial-scenario testing.

The paper's guarantee — slack-reclaiming DVS never misses a hard
deadline — is only worth anything if it survives workloads that
misbehave.  This package provides the adversary: seeded, composable
fault injectors for WCET overruns, arrival jitter/bursts, release-clock
drift and DVS transition faults, declared per run via a
:class:`FaultPlan` and wired through :class:`repro.sim.engine.Simulator`
(``faults=`` argument).  The :class:`repro.policies.governor.SafetyGovernor`
is the countermeasure: it clamps any policy's speed to a slack-based
feasibility floor so injected faults degrade energy, never deadlines.
"""

from repro.faults.injectors import FaultyArrival, FaultyExecution
from repro.faults.plan import (
    ArrivalFault,
    ClockDriftFault,
    FaultPlan,
    OverrunFault,
    TransitionFault,
    TransitionOutcome,
    parse_fault_plan,
)

__all__ = [
    "ArrivalFault",
    "ClockDriftFault",
    "FaultPlan",
    "FaultyArrival",
    "FaultyExecution",
    "OverrunFault",
    "TransitionFault",
    "TransitionOutcome",
    "parse_fault_plan",
]
