"""Sweep time-budget profiling (DESIGN.md §15).

``PROFILER`` is the process-global phase profiler; hot-path callers
guard every region with ``if PROFILER.enabled`` so the layer costs one
attribute load when off.  :mod:`repro.profiling.report` turns deltas
into time-budget blocks, flamegraphs, and Chrome traces.
"""

from repro.profiling.core import (  # noqa: F401
    DEFAULT_SAMPLE_INTERVAL_S,
    OVERHEAD_BUDGET,
    PROFILER,
    PhaseProfiler,
    StackSampler,
)
