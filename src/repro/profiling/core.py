"""Phase profiler: where a sweep's wall time actually goes.

The perf work (batch engine, compiled core, warm pool) is guarded by
*ratios* — BENCH anchors say how fast, not *why*.  This module is the
"why": a disabled-by-default phase profiler with the same single-check
fast-path discipline as :mod:`repro.telemetry.core`.  Hot-path callers
guard every region with ``if PROFILER.enabled`` — one attribute load
when off — so the profiler costs nothing unless a run opts in
(``repro profile run``, ``repro run --profile``, or
``PROFILER.configure(enabled=True)`` in a script).

Two instruments live here:

* **Phase timers** — ``perf_counter_ns`` regions pushed/popped around
  the hot-path seams (engine runs, slack walks, policy decide, cache
  I/O, chunk IPC, pool idle, supervision).  Frames form a stack, and
  each pop folds *exact self time* (elapsed minus time attributed to
  child frames) into a per-name registry.  Because every nanosecond of
  a frame is either its own self time or a child's, self times
  telescope: the sum of all ``self_ns`` equals the root frames' total
  to the nanosecond, which is what lets the time-budget report
  (:mod:`repro.profiling.report`) sum to wall time by construction.
* **A stack sampler** — an opt-in daemon thread reading
  ``sys._current_frames()`` for the unit-running thread at a fixed
  interval and folding collapsed call stacks into counts, the input
  format of every flamegraph tool.

Both are fork-safe the same way telemetry is: ``snapshot()`` /
``delta_since()`` / ``merge_snapshot()`` move plain dicts across the
process boundary, workers cut a delta per chunk and ship it in the
chunk's meta envelope, and the parent folds it in — so serial and
parallel attributions are directly comparable.

Nothing here imports from the rest of repro; like the telemetry core
this module stays leaf-level so the simulator, the slack walks, and
the cache can all guard regions without import cycles.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Iterator

#: Declared overhead contract, enforced by ``scripts/profile_gate.py``:
#: with phase timers *on*, the engine anchor workload may take at most
#: this multiple of its timers-off time (min-of-N, plus a small
#: absolute noise floor the gate adds).  Timers *off* must be free —
#: that side is pinned by the existing ``engine_step`` regression
#: guard in ``bench_record.py --check``, which always runs with
#: profiling disabled against the checked-in baseline.
OVERHEAD_BUDGET = 1.5

#: Default sampling period.  5 ms keeps the sampler thread invisible
#: next to unit compute times (tens of ms) while still collecting
#: hundreds of stacks over a mini sweep.
DEFAULT_SAMPLE_INTERVAL_S = 0.005

#: Cap on recorded timeline events (Chrome trace export).  A mini
#: profiling run stays far under this; a huge sweep drops the tail and
#: counts the drops rather than growing without bound.
TIMELINE_CAP = 200_000

#: Deepest Python stack the sampler will record per sample.
_SAMPLE_MAX_DEPTH = 64


class StackSampler:
    """Daemon thread sampling one thread's Python stack.

    Created lazily from the thread it is meant to observe (the thread
    that runs (cell, seed) units — the main thread in the parent and
    in each forked worker), so ``threading.get_ident()`` at
    construction pins the right target.  The thread itself never
    survives a fork; :class:`PhaseProfiler` re-creates a sampler when
    the pid changes.

    Sampling only happens while at least one ``activate()`` is
    outstanding, so stacks are attributed to unit compute and not to
    pool idle or IPC plumbing.
    """

    def __init__(self, interval_s: float = DEFAULT_SAMPLE_INTERVAL_S):
        self.interval_s = max(float(interval_s), 0.0005)
        self.counts: dict[str, int] = {}
        self.samples = 0
        self._active = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._target = threading.get_ident()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profile-sampler", daemon=True)
        self._thread.start()

    def activate(self) -> None:
        with self._lock:
            self._active += 1

    def deactivate(self) -> None:
        with self._lock:
            self._active -= 1

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self._active > 0:
                self._sample()

    def _sample(self) -> None:
        frame = sys._current_frames().get(self._target)
        if frame is None:
            return
        parts: list[str] = []
        depth = 0
        while frame is not None and depth < _SAMPLE_MAX_DEPTH:
            code = frame.f_code
            name = getattr(code, "co_qualname", code.co_name)
            parts.append(f"{os.path.basename(code.co_filename)}:{name}")
            frame = frame.f_back
            depth += 1
        # Collapsed-stack convention: root first, frames joined by ';'.
        key = ";".join(reversed(parts))
        with self._lock:
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    def drain(self) -> dict[str, int]:
        """Copy the folded counts (thread-safe)."""
        with self._lock:
            return dict(self.counts)


class PhaseProfiler:
    """Process-local phase-timer registry with exact self-time folding.

    The fast path is the contract: ``enabled`` is a plain attribute,
    ``False`` by default, and every instrumented seam checks it before
    doing anything else.  When enabled, a region is two
    ``perf_counter_ns`` calls and a handful of list/dict operations.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sampling = False
        self.sample_interval_s = DEFAULT_SAMPLE_INTERVAL_S
        # name -> [count, total_ns, self_ns]
        self._phases: dict[str, list[int]] = {}
        # open frames: [name, start_ns, child_ns]
        self._stack: list[list] = []
        # merged-from-workers collapsed-stack counts
        self._samples: dict[str, int] = {}
        self._sampler: StackSampler | None = None
        self._sampler_pid: int | None = None
        self._timeline: list[tuple] | None = None
        self.timeline_dropped = 0
        self.origin_ns = perf_counter_ns()

    # -- lifecycle -----------------------------------------------------

    def configure(self, *, enabled: bool = True, timeline: bool = False,
                  sample: bool = False,
                  sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                  ) -> None:
        self.enabled = bool(enabled)
        self.sampling = bool(enabled and sample)
        self.sample_interval_s = float(sample_interval_s)
        if enabled and timeline:
            if self._timeline is None:
                self._timeline = []
                self.origin_ns = perf_counter_ns()
        elif not enabled:
            self._close_sampler()

    def reset(self) -> None:
        self._phases.clear()
        self._stack.clear()
        self._samples.clear()
        self._timeline = [] if self._timeline is not None else None
        self.timeline_dropped = 0
        self.origin_ns = perf_counter_ns()
        self._close_sampler()

    def _close_sampler(self) -> None:
        # Joining is safe even for a sampler inherited across fork():
        # the thread did not survive and threading marks it stopped.
        sampler = self._sampler
        self._sampler = None
        self._sampler_pid = None
        if sampler is not None:
            sampler.close()

    # -- phase timers --------------------------------------------------

    def push(self, name: str) -> None:
        """Open a region.  Callers must guard with ``if prof.enabled``."""
        self._stack.append([name, perf_counter_ns(), 0])

    def pop(self) -> None:
        """Close the innermost region and fold its exact self time."""
        end = perf_counter_ns()
        name, start, child_ns = self._stack.pop()
        elapsed = end - start
        rec = self._phases.get(name)
        if rec is None:
            rec = self._phases[name] = [0, 0, 0]
        rec[0] += 1
        rec[1] += elapsed
        rec[2] += elapsed - child_ns
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        timeline = self._timeline
        if timeline is not None:
            if len(timeline) < TIMELINE_CAP:
                timeline.append((name, start, end, len(stack)))
            else:
                self.timeline_dropped += 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Region context manager for coarse (non-hot) seams."""
        if not self.enabled:
            yield
            return
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # -- sampling ------------------------------------------------------

    def _live_sampler(self) -> StackSampler:
        pid = os.getpid()
        if self._sampler is None or self._sampler_pid != pid:
            self._sampler = StackSampler(self.sample_interval_s)
            self._sampler_pid = pid
        return self._sampler

    @contextmanager
    def sample_unit(self) -> Iterator[None]:
        """Sample Python stacks while one (cell, seed) unit computes."""
        if not (self.enabled and self.sampling):
            yield
            return
        sampler = self._live_sampler()
        sampler.activate()
        try:
            yield
        finally:
            sampler.deactivate()

    # -- fork-safe folding (mirrors repro.telemetry.core) --------------

    def snapshot(self) -> dict:
        phases = {name: {"count": rec[0], "total_ns": rec[1],
                         "self_ns": rec[2]}
                  for name, rec in self._phases.items()}
        samples = dict(self._samples)
        sampler = self._sampler
        if sampler is not None and self._sampler_pid == os.getpid():
            for key, n in sampler.drain().items():
                samples[key] = samples.get(key, 0) + n
        return {"phases": phases, "samples": samples}

    def delta_since(self, before: dict) -> dict:
        now = self.snapshot()
        old_phases = before.get("phases", {})
        phases = {}
        for name, rec in now["phases"].items():
            old = old_phases.get(name, {})
            count = rec["count"] - old.get("count", 0)
            total = rec["total_ns"] - old.get("total_ns", 0)
            self_ns = rec["self_ns"] - old.get("self_ns", 0)
            if count or total:
                phases[name] = {"count": count, "total_ns": total,
                                "self_ns": self_ns}
        old_samples = before.get("samples", {})
        samples = {}
        for key, n in now["samples"].items():
            d = n - old_samples.get(key, 0)
            if d > 0:
                samples[key] = d
        return {"phases": phases, "samples": samples}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker's chunk delta into this process's registry."""
        if not self.enabled:
            return
        for name, rec in snap.get("phases", {}).items():
            mine = self._phases.get(name)
            if mine is None:
                mine = self._phases[name] = [0, 0, 0]
            mine[0] += int(rec.get("count", 0))
            mine[1] += int(rec.get("total_ns", 0))
            mine[2] += int(rec.get("self_ns", 0))
        for key, n in snap.get("samples", {}).items():
            self._samples[key] = self._samples.get(key, 0) + int(n)

    # -- timeline (Chrome trace export) --------------------------------

    def timeline_events(self) -> list[tuple]:
        return list(self._timeline or ())


#: Process-global profiler.  Hot-path callers import this and guard
#: every region with ``if PROFILER.enabled`` — one attribute load when
#: profiling is off.
PROFILER = PhaseProfiler()
