"""Time-budget reports, flamegraph export, and the profile trace.

Turns a :class:`~repro.profiling.core.PhaseProfiler` delta into the
artifacts the profiling layer promises:

* :func:`profile_block` — the schema-bumped ``profile`` block attached
  to run manifests: a structural budget (compute / slack / policy /
  cache / ipc / idle / supervision) that **sums to attributed wall
  time by construction**, because each category is built from exact
  phase *self* times and self times telescope (core module docstring).
* :func:`render_budget` / :func:`render_budget_diff` — ASCII
  renderings for ``repro profile report`` / ``repro profile diff``
  and for ``repro stats``.
* :func:`write_collapsed` / :func:`render_flame` — collapsed-stack
  flamegraph output (the ``frame;frame count`` format every
  flamegraph tool ingests) and a terminal flame tree.
* :func:`chrome_profile_trace` — the phase timeline as a Chrome Trace
  Event Format document, reusing :mod:`repro.trace.chrome`'s
  conventions (microsecond ``ts``, ``X`` complete events, ``M``
  process/thread naming) but on its own pid so profile lanes sit next
  to — not on top of — schedule lanes when both are loaded.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

#: Budget categories, in render order.  ``other`` catches any phase
#: name no prefix claims, so the budget always accounts for every
#: attributed nanosecond.
CATEGORY_ORDER = ("compute", "slack", "policy", "cache", "ipc",
                  "idle", "supervision", "other")

#: Longest-prefix-wins mapping from phase names to budget categories.
#: ``worker.chunk`` *self* time is chunk envelope work (spec lookup,
#: outcome packing, meta serialisation) — IPC, not compute; the
#: engine/slack work inside the chunk carries its own phases.
#: ``sweep.execute`` self time is orchestration residual (planning,
#: checkpoint loads, result folding glue) and lands in supervision.
_PREFIX_CATEGORIES = (
    ("engine.", "compute"),
    ("unit.", "compute"),
    ("slack.", "slack"),
    ("policy.", "policy"),
    ("cache.", "cache"),
    ("ipc.", "ipc"),
    ("worker.", "ipc"),
    ("pool.idle", "idle"),
    ("supervision.", "supervision"),
    ("sweep.", "supervision"),
)


def category_of(name: str) -> str:
    for prefix, category in _PREFIX_CATEGORIES:
        if name.startswith(prefix):
            return category
    return "other"


def profile_block(delta: Mapping, *, timeline_dropped: int = 0) -> dict:
    """Build the manifest ``profile`` block from a profiler delta.

    ``wall_s`` is the total attributed time — the sum of every
    phase's self time, which equals the sum of root-frame totals
    across all participating processes (the parent's ``sweep.execute``
    plus each worker's ``worker.chunk``).  For a serial sweep that is
    one process and one root, so ``wall_s`` tracks the measured wall
    clock of the sweep to within instrumentation epsilon; in parallel
    it is aggregate busy time across processes, with the parent's own
    wall kept separately as ``parent_wall_s``.
    """
    phases = delta.get("phases", {})
    budget = {category: 0.0 for category in CATEGORY_ORDER}
    for name, rec in phases.items():
        budget[category_of(name)] += rec.get("self_ns", 0) / 1e9
    wall_s = sum(budget.values())
    parent = phases.get("sweep.execute") or {}
    samples = delta.get("samples", {})
    block = {
        "wall_s": wall_s,
        "parent_wall_s": parent.get("total_ns", 0) / 1e9,
        "budget": budget,
        "phases": {
            name: {"count": rec.get("count", 0),
                   "total_s": rec.get("total_ns", 0) / 1e9,
                   "self_s": rec.get("self_ns", 0) / 1e9}
            for name, rec in sorted(phases.items())
        },
        "sampling": ({"samples": sum(samples.values()),
                      "stacks": len(samples)} if samples else None),
        "timeline_dropped": timeline_dropped,
    }
    return block


def render_budget(block: Mapping, *,
                  measured_wall_s: float | None = None,
                  top: int = 8) -> str:
    """ASCII time-budget report for one profile block."""
    wall = float(block.get("wall_s", 0.0))
    budget = block.get("budget", {})
    lines = [f"time budget (attributed {wall:.3f}s"
             + (f", parent wall {block['parent_wall_s']:.3f}s"
                if block.get("parent_wall_s") else "") + "):"]
    for category in CATEGORY_ORDER:
        sec = float(budget.get(category, 0.0))
        if sec <= 0.0 and category == "other":
            continue
        share = sec / wall if wall > 0 else 0.0
        bar = "#" * int(round(share * 30))
        lines.append(f"  {category:<12} {sec:9.3f}s  {share:6.1%}  {bar}")
    if measured_wall_s is not None and measured_wall_s > 0:
        drift = abs(wall - measured_wall_s) / measured_wall_s
        lines.append(f"  measured wall {measured_wall_s:.3f}s  "
                     f"(attribution drift {drift:.1%})")
    phases = block.get("phases", {})
    if phases:
        lines.append("top phases by self time:")
        ranked = sorted(phases.items(),
                        key=lambda kv: kv[1].get("self_s", 0.0),
                        reverse=True)[:top]
        for name, rec in ranked:
            lines.append(
                f"  {name:<22} x{rec.get('count', 0):<7} "
                f"total {rec.get('total_s', 0.0):9.3f}s  "
                f"self {rec.get('self_s', 0.0):9.3f}s")
    sampling = block.get("sampling")
    if sampling:
        lines.append(f"sampling: {sampling.get('samples', 0)} samples "
                     f"over {sampling.get('stacks', 0)} distinct stacks")
    if block.get("timeline_dropped"):
        lines.append(f"timeline: {block['timeline_dropped']} events "
                     f"dropped past the cap")
    return "\n".join(lines)


def diff_budgets(a: Mapping, b: Mapping) -> dict:
    """Per-category attribution deltas between two profile blocks."""
    out: dict[str, dict] = {}
    budget_a = a.get("budget", {})
    budget_b = b.get("budget", {})
    for category in CATEGORY_ORDER + ("wall_s",):
        va = (float(a.get("wall_s", 0.0)) if category == "wall_s"
              else float(budget_a.get(category, 0.0)))
        vb = (float(b.get("wall_s", 0.0)) if category == "wall_s"
              else float(budget_b.get(category, 0.0)))
        if va == 0.0 and vb == 0.0:
            continue
        out[category] = {
            "a": va, "b": vb, "delta": vb - va,
            "ratio": (vb / va) if va else None,
        }
    return out


def render_budget_diff(diff: Mapping) -> str:
    lines = ["profile attribution deltas (a -> b):"]
    for category, entry in diff.items():
        ratio = entry.get("ratio")
        lines.append(
            f"  {category:<12} {entry['a']:9.3f}s -> {entry['b']:9.3f}s  "
            f"delta {entry['delta']:+9.3f}s"
            + (f"  x{ratio:.2f}" if ratio is not None else ""))
    return "\n".join(lines)


# -- flamegraphs -------------------------------------------------------

def write_collapsed(samples: Mapping[str, int], path: str | Path) -> Path:
    """Write collapsed-stack lines (``frame;frame;frame count``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [f"{stack} {count}"
             for stack, count in sorted(samples.items())]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def read_collapsed(path: str | Path) -> dict[str, int]:
    samples: dict[str, int] = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            continue
        samples[stack] = samples.get(stack, 0) + int(count)
    return samples


def render_flame(samples: Mapping[str, int], *, min_share: float = 0.01,
                 max_depth: int = 20) -> str:
    """Terminal flame tree from collapsed-stack counts."""
    total = sum(samples.values())
    if total == 0:
        return "no samples"
    root: dict = {}
    for stack, count in samples.items():
        node = root
        for frame in stack.split(";")[:max_depth]:
            node = node.setdefault(frame, {"__count__": 0})
            node["__count__"] += count

    lines = [f"flame tree ({total} samples, hiding < {min_share:.0%}):"]

    def walk(node: dict, depth: int) -> None:
        children = [(name, sub) for name, sub in node.items()
                    if name != "__count__"]
        children.sort(key=lambda kv: kv[1]["__count__"], reverse=True)
        for name, sub in children:
            share = sub["__count__"] / total
            if share < min_share:
                continue
            bar = "#" * max(1, int(round(share * 40)))
            lines.append(f"  {'  ' * depth}{share:6.1%} {name}  {bar}")
            walk(sub, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


# -- Chrome trace (repro.trace.chrome conventions) ---------------------

#: Microsecond timestamps, matching ``repro.trace.chrome.TIME_SCALE``'s
#: convention that ``ts``/``dur`` are in trace microseconds.
_PROFILE_PID = 1


def chrome_profile_trace(timeline, *, origin_ns: int) -> dict:
    """Phase timeline as a Chrome Trace Event Format document.

    Same shape :mod:`repro.trace.chrome` emits (``M`` naming metadata,
    ``X`` complete events sorted by ``ts``, a ``traceEvents``
    wrapper), but on pid 1 so a profile trace merged with a schedule
    trace (pid 0) renders as adjacent lanes in Perfetto.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": _PROFILE_PID, "tid": 0,
         "args": {"name": "repro profile"}},
        {"name": "thread_name", "ph": "M", "pid": _PROFILE_PID, "tid": 0,
         "args": {"name": "phases"}},
        {"name": "thread_sort_index", "ph": "M", "pid": _PROFILE_PID,
         "tid": 0, "args": {"sort_index": 0}},
    ]
    for name, start_ns, end_ns, depth in timeline:
        events.append({
            "name": name,
            "cat": "profile",
            "ph": "X",
            "ts": (start_ns - origin_ns) / 1e3,
            "dur": max(end_ns - start_ns, 0) / 1e3,
            "pid": _PROFILE_PID,
            "tid": 0,
            "args": {"depth": depth},
        })
    events.sort(key=lambda event: event.get("ts", 0.0))
    return {"traceEvents": events}


def export_chrome_profile(timeline, path: str | Path, *,
                          origin_ns: int) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_profile_trace(timeline, origin_ns=origin_ns)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path
