"""Task model: periodic tasks, jobs, execution-time models, generators."""

from repro.tasks.task import PeriodicTask
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.tasks.execution import (
    ExecutionModel,
    ConstantExecution,
    WorstCaseExecution,
    UniformExecution,
    TruncatedNormalExecution,
    BimodalExecution,
    SinusoidalExecution,
    MarkovExecution,
    TraceExecution,
    model_for_bcwc_ratio,
)
from repro.tasks.arrivals import (
    ArrivalModel,
    PeriodicArrival,
    UniformJitterArrival,
    ExponentialGapArrival,
    BurstyArrival,
)
from repro.tasks.generators import (
    uunifast,
    uunifast_discard,
    generate_taskset,
    generate_taskset_family,
    log_uniform_periods,
    grid_periods,
    DEFAULT_PERIOD_CHOICES,
)
from repro.tasks.benchmarks import (
    cnc_taskset,
    avionics_taskset,
    ins_taskset,
    load_benchmark,
    BENCHMARK_TASKSETS,
)

__all__ = [
    "PeriodicTask",
    "Job",
    "TaskSet",
    "ExecutionModel",
    "ConstantExecution",
    "WorstCaseExecution",
    "UniformExecution",
    "TruncatedNormalExecution",
    "BimodalExecution",
    "SinusoidalExecution",
    "MarkovExecution",
    "TraceExecution",
    "model_for_bcwc_ratio",
    "ArrivalModel",
    "PeriodicArrival",
    "UniformJitterArrival",
    "ExponentialGapArrival",
    "BurstyArrival",
    "uunifast",
    "uunifast_discard",
    "generate_taskset",
    "generate_taskset_family",
    "log_uniform_periods",
    "grid_periods",
    "DEFAULT_PERIOD_CHOICES",
    "cnc_taskset",
    "avionics_taskset",
    "ins_taskset",
    "load_benchmark",
    "BENCHMARK_TASKSETS",
]
