"""Arrival processes: periodic and sporadic job release patterns.

The paper's model is strictly periodic.  The natural hard-real-time
generalisation is the **sporadic** task: the period becomes a *minimum
inter-arrival separation* and actual gaps may be longer.  All hard
guarantees in this library remain valid because:

* feasibility analysis with minimum separations upper-bounds the demand
  of any actual sporadic arrival sequence, and
* online policies only ever see the *earliest possible* next release
  (``last arrival + period``, clamped to now) — the engine keeps the
  actual sampled arrival times to itself, exposing them solely to the
  clairvoyant oracle.

Like the execution-time models, arrival processes are deterministic
given ``(seed, task, index)`` — gaps are sampled independently per
index and arrival times are cached prefix sums — so runs are exactly
reproducible and oracle queries agree with the engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.tasks.execution import _job_rng
from repro.tasks.task import PeriodicTask
from repro.types import Time


class ArrivalModel(ABC):
    """Maps ``(task, index)`` to the job's actual arrival time."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._prefix: dict[str, list[Time]] = {}

    @abstractmethod
    def gap(self, task: PeriodicTask, index: int) -> Time:
        """Inter-arrival gap between jobs *index* and *index + 1*.

        Must be at least ``task.period`` (the minimum separation) —
        enforced by :meth:`arrival_time`.
        """

    @property
    def is_periodic(self) -> bool:
        """``True`` when every gap equals the period exactly."""
        return False

    def arrival_time(self, task: PeriodicTask, index: int) -> Time:
        """Absolute arrival time of the *index*-th job (0-based)."""
        if index < 0:
            raise ConfigurationError(f"index must be >= 0, got {index}")
        prefix = self._prefix.setdefault(task.name, [task.phase])
        while len(prefix) <= index:
            k = len(prefix) - 1
            gap = self.gap(task, k)
            if gap < task.period - 1e-9:
                raise ConfigurationError(
                    f"gap {gap} of {task.name}#{k} violates the minimum "
                    f"separation {task.period}")
            prefix.append(prefix[-1] + gap)
        return prefix[index]

    def describe(self) -> str:
        return type(self).__name__


class PeriodicArrival(ArrivalModel):
    """Strictly periodic releases — the paper's model and the default."""

    def gap(self, task: PeriodicTask, index: int) -> Time:
        return task.period

    @property
    def is_periodic(self) -> bool:
        return True

    def describe(self) -> str:
        return "periodic"


class UniformJitterArrival(ArrivalModel):
    """Sporadic: gaps uniform in ``[T, (1 + jitter) * T]``."""

    def __init__(self, jitter: float = 0.5, seed: int = 0) -> None:
        super().__init__(seed)
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.jitter = jitter

    def gap(self, task: PeriodicTask, index: int) -> Time:
        if self.jitter == 0:
            return task.period
        rng = _job_rng(self.seed ^ 0x5A5A, task.name, index)
        return task.period * (1.0 + self.jitter * float(rng.random()))

    @property
    def is_periodic(self) -> bool:
        return self.jitter == 0

    def describe(self) -> str:
        return f"uniform-jitter(jitter={self.jitter})"


class ExponentialGapArrival(ArrivalModel):
    """Sporadic: gaps are ``T + Exp(mean_extra * T)`` — long quiet tails."""

    def __init__(self, mean_extra: float = 0.5, seed: int = 0) -> None:
        super().__init__(seed)
        if mean_extra < 0:
            raise ConfigurationError(
                f"mean_extra must be >= 0, got {mean_extra}")
        self.mean_extra = mean_extra

    def gap(self, task: PeriodicTask, index: int) -> Time:
        if self.mean_extra == 0:
            return task.period
        rng = _job_rng(self.seed ^ 0x3C3C, task.name, index)
        return task.period * (
            1.0 + float(rng.exponential(self.mean_extra)))

    def describe(self) -> str:
        return f"exponential-gap(mean_extra={self.mean_extra})"


class BurstyArrival(ArrivalModel):
    """Sporadic bursts: runs of minimum-separation arrivals, then lulls.

    A two-state chain (reconstructed deterministically per index, like
    :class:`~repro.tasks.execution.MarkovExecution`): in the *burst*
    state gaps equal the minimum separation; in the *lull* state gaps
    stretch by ``lull_factor``.
    """

    def __init__(self, lull_factor: float = 3.0, p_stay: float = 0.8,
                 seed: int = 0) -> None:
        super().__init__(seed)
        if lull_factor < 1.0:
            raise ConfigurationError(
                f"lull_factor must be >= 1, got {lull_factor}")
        if not (0.0 <= p_stay <= 1.0):
            raise ConfigurationError(
                f"p_stay must be in [0, 1], got {p_stay}")
        self.lull_factor = lull_factor
        self.p_stay = p_stay
        self._state_cache: dict[tuple[str, int], bool] = {}

    def _in_burst(self, task_name: str, index: int) -> bool:
        key = (task_name, index)
        cached = self._state_cache.get(key)
        if cached is not None:
            return cached
        if index == 0:
            state = bool(
                _job_rng(self.seed ^ 0x7E7E, task_name, 0).random() < 0.5)
        else:
            prev = self._in_burst(task_name, index - 1)
            flip = float(
                _job_rng(self.seed ^ 0x7E7E, task_name, index).random())
            state = prev if flip < self.p_stay else not prev
        self._state_cache[key] = state
        return state

    def gap(self, task: PeriodicTask, index: int) -> Time:
        if self._in_burst(task.name, index):
            return task.period
        return task.period * self.lull_factor

    def describe(self) -> str:
        return (f"bursty(lull_factor={self.lull_factor}, "
                f"p_stay={self.p_stay})")
