"""Runtime job state.

A :class:`Job` is one activation of a :class:`~repro.tasks.task.PeriodicTask`.
It tracks the *actual* execution requirement drawn from the execution-time
model (``work``), the amount executed so far (in max-speed units), and
completion bookkeeping.  DVS policies must only ever look at
:attr:`Job.remaining_wcet` — the worst-case budget still outstanding —
because the actual demand is unknown online; the clairvoyant oracle
policy is the single sanctioned consumer of :attr:`Job.remaining_work`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.tasks.task import PeriodicTask
from repro.types import TIME_EPS, Time, Work, snap_nonnegative


@dataclass
class Job:
    """One released instance of a periodic task."""

    task: PeriodicTask
    index: int
    release: Time
    deadline: Time
    work: Work
    executed: Work = 0.0
    completion_time: Time | None = None
    first_dispatch_time: Time | None = None
    preemption_count: int = 0

    @classmethod
    def from_task(cls, task: PeriodicTask, index: int, work: Work,
                  release: Time | None = None, *,
                  allow_overrun: bool = False) -> "Job":
        """Build the *index*-th job of *task* with actual demand *work*.

        *release* overrides the strictly periodic release time (used by
        sporadic arrival processes); the absolute deadline is always
        ``release + task.deadline``.  ``allow_overrun=True`` admits
        demand beyond the WCET — only the fault-injection layer may do
        this; everywhere else ``work <= wcet`` stays a hard invariant.
        """
        if work <= 0 or (not allow_overrun and work > task.wcet + TIME_EPS):
            raise SimulationError(
                f"job {task.name}#{index}: actual work {work} outside "
                f"(0, wcet={task.wcet}]")
        if release is None:
            release = task.release_time(index)
        return cls(
            task=task,
            index=index,
            release=release,
            deadline=release + task.deadline,
            work=work if allow_overrun else min(work, task.wcet),
        )

    @property
    def overrun(self) -> bool:
        """``True`` when the actual demand exceeds the WCET budget."""
        return self.work > self.task.wcet + TIME_EPS

    @property
    def name(self) -> str:
        """Human-readable job identifier, e.g. ``"T1#3"``."""
        return f"{self.task.name}#{self.index}"

    @property
    def remaining_work(self) -> Work:
        """Actual work still outstanding (oracle-only information)."""
        return snap_nonnegative(self.work - self.executed)

    @property
    def remaining_wcet(self) -> Work:
        """Worst-case budget still outstanding — what online policies see.

        This is ``wcet - executed`` clamped at zero: once a job has
        executed for longer than its WCET budget predicted (possible
        only under fault-injected overruns, where ``work > wcet``) the
        budget is simply exhausted — online analyses keep seeing a
        consistent non-negative budget either way.
        """
        return max(0.0, snap_nonnegative(self.task.wcet - self.executed))

    @property
    def completed(self) -> bool:
        """``True`` once all actual work has been retired."""
        return self.completion_time is not None

    @property
    def response_time(self) -> Time | None:
        """Completion minus release, or ``None`` while incomplete."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release

    @property
    def unused_wcet(self) -> Work:
        """Budget left over at completion (the per-job slack source)."""
        if not self.completed:
            raise SimulationError(f"job {self.name} is not complete")
        return snap_nonnegative(self.task.wcet - self.executed)

    def execute(self, amount: Work) -> None:
        """Retire *amount* of work (max-speed units).

        Raises :class:`SimulationError` if the job would execute beyond
        its actual demand — the engine must never over-run a job.
        """
        if amount < -TIME_EPS:
            raise SimulationError(
                f"job {self.name}: negative execution amount {amount}")
        new_total = self.executed + max(0.0, amount)
        if new_total > self.work + 1e-6:
            raise SimulationError(
                f"job {self.name}: executed {new_total} exceeds actual "
                f"work {self.work}")
        self.executed = min(new_total, self.work)

    def complete(self, t: Time) -> None:
        """Mark the job complete at time *t*."""
        if self.completed:
            raise SimulationError(f"job {self.name} already completed")
        if self.remaining_work > 1e-6:
            raise SimulationError(
                f"job {self.name}: completion with {self.remaining_work} "
                f"work outstanding")
        self.executed = self.work
        self.completion_time = t

    def met_deadline(self, eps: float = TIME_EPS) -> bool:
        """Whether the (completed) job finished by its absolute deadline."""
        if self.completion_time is None:
            raise SimulationError(f"job {self.name} is not complete")
        return self.completion_time <= self.deadline + eps
