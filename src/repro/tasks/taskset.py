"""Task-set container and aggregate properties."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import ConfigurationError, InfeasibleTaskSetError
from repro.tasks.task import PeriodicTask
from repro.types import Time

#: Denominator cap when rationalising float periods for hyperperiod
#: computation.  Periods in the library's experiments are either small
#: integers or simple decimals, well inside this cap.
_MAX_DENOMINATOR = 1_000_000


class TaskSet:
    """An ordered, immutable collection of periodic tasks.

    Task names must be unique.  Iteration order is the construction
    order, which also serves as the deterministic tie-break for
    schedulers.
    """

    def __init__(self, tasks: Sequence[PeriodicTask]) -> None:
        tasks = tuple(tasks)
        if not tasks:
            raise ConfigurationError("a task set must contain at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate task names: {dupes}")
        self._tasks = tasks
        self._by_name = {t.name: t for t in tasks}

    def __iter__(self) -> Iterator[PeriodicTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, item: int | str) -> PeriodicTask:
        if isinstance(item, str):
            try:
                return self._by_name[item]
            except KeyError:
                raise KeyError(f"no task named {item!r}") from None
        return self._tasks[item]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return (f"TaskSet(n={len(self)}, U={self.utilization:.3f}, "
                f"tasks={[t.name for t in self._tasks]})")

    @property
    def tasks(self) -> tuple[PeriodicTask, ...]:
        """The tasks, in construction order."""
        return self._tasks

    @property
    def utilization(self) -> float:
        """Total worst-case utilization ``sum(C_i / P_i)``."""
        return sum(t.utilization for t in self._tasks)

    @property
    def density(self) -> float:
        """Total worst-case density ``sum(C_i / min(D_i, P_i))``."""
        return sum(t.density for t in self._tasks)

    @property
    def implicit_deadlines(self) -> bool:
        """``True`` when every task's deadline equals its period."""
        return all(t.implicit_deadline for t in self._tasks)

    @property
    def max_period(self) -> Time:
        return max(t.period for t in self._tasks)

    @property
    def min_period(self) -> Time:
        return min(t.period for t in self._tasks)

    @property
    def max_phase(self) -> Time:
        return max(t.phase for t in self._tasks)

    def hyperperiod(self) -> Time:
        """Least common multiple of the task periods.

        Float periods are rationalised first; periods that are not
        simple rationals raise :class:`ConfigurationError` instead of
        silently producing an astronomical horizon.
        """
        fractions = []
        for task in self._tasks:
            frac = Fraction(task.period).limit_denominator(_MAX_DENOMINATOR)
            if abs(float(frac) - task.period) > 1e-9 * max(1.0, task.period):
                raise ConfigurationError(
                    f"period {task.period} of task {task.name!r} is not a "
                    f"simple rational; cannot compute a hyperperiod")
            fractions.append(frac)
        numerator_lcm = 1
        denominator_gcd = fractions[0].denominator
        for frac in fractions:
            numerator_lcm = math.lcm(numerator_lcm, frac.numerator)
            denominator_gcd = math.gcd(denominator_gcd, frac.denominator)
        return numerator_lcm / denominator_gcd

    def default_horizon(self, *, min_jobs_per_task: int = 20,
                        max_hyperperiods: int = 20) -> Time:
        """A simulation horizon balancing fidelity and cost.

        A whole number of hyperperiods: enough that the slowest task
        releases *min_jobs_per_task* jobs, at least one hyperperiod,
        and at most *max_hyperperiods* (the runtime-control knob —
        benchmark suites with huge hyperperiods pass 1).  Task sets
        without a rational hyperperiod fall back to the job-count
        horizon directly.
        """
        by_jobs = min_jobs_per_task * self.max_period
        try:
            hp = self.hyperperiod()
        except ConfigurationError:
            return self.max_phase + by_jobs
        periods = max(1, min(max_hyperperiods, math.ceil(by_jobs / hp)))
        return self.max_phase + periods * hp

    def assert_feasible_edf(self) -> None:
        """Raise :class:`InfeasibleTaskSetError` if EDF at max speed fails.

        For implicit deadlines this is the exact ``U <= 1`` test.  For
        constrained deadlines the cheap (sufficient) density test runs
        first and, when it fails, the exact processor-demand test
        delivers the final verdict.
        """
        if self.implicit_deadlines:
            if self.utilization > 1.0 + 1e-9:
                raise InfeasibleTaskSetError(
                    f"utilization {self.utilization:.6f} > 1: not EDF-"
                    f"schedulable even at maximum speed")
            return
        if self.density <= 1.0 + 1e-9:
            return
        from repro.analysis.schedulability import processor_demand_test
        if not processor_demand_test(self):
            raise InfeasibleTaskSetError(
                f"processor-demand test fails (density {self.density:.6f}): "
                f"not EDF-schedulable even at maximum speed")

    def scaled_to_utilization(self, target: float) -> "TaskSet":
        """Return a copy with all WCETs scaled to hit *target* utilization."""
        if target <= 0:
            raise ConfigurationError(f"target utilization must be > 0, got {target}")
        factor = target / self.utilization
        return TaskSet([t.scaled(factor) for t in self._tasks])

    def describe(self) -> str:
        """Multi-line human-readable summary table."""
        lines = [f"TaskSet: {len(self)} tasks, U={self.utilization:.4f}"]
        header = f"  {'name':<10} {'wcet':>10} {'period':>10} {'deadline':>10} {'util':>8}"
        lines.append(header)
        for t in self._tasks:
            lines.append(
                f"  {t.name:<10} {t.wcet:>10.4f} {t.period:>10.4f} "
                f"{t.deadline:>10.4f} {t.utilization:>8.4f}")
        return "\n".join(lines)
