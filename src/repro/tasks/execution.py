"""Actual execution-time models.

DVS energy savings come from the gap between a job's worst-case budget
and its actual demand, so the *distribution* of actual execution times
is the main workload knob in every DVS-EDF evaluation.  Each model maps
``(task, job_index)`` to an actual demand in ``(0, wcet]`` — sampling is
**deterministic given the model seed**, independent of the order in
which jobs are queried.  That property lets the clairvoyant oracle
policy and the simulation engine agree on future demands without
sharing mutable RNG state.

All stochastic models are parameterised in terms of the *bc/wc ratio*:
the fraction of the WCET a job actually uses.  Ratios are clamped to
``[min_ratio, 1.0]`` so demands stay valid.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.types import Work

#: Smallest admissible ratio of actual demand to WCET; demand must stay
#: strictly positive for a job to exist at all.
MIN_RATIO: float = 1e-3


def _job_rng(seed: int, task_name: str, index: int) -> np.random.Generator:
    """Deterministic per-job random generator.

    The stream is derived from a stable hash of ``(seed, task, index)``
    so two queries for the same job always agree, regardless of query
    order or of which other jobs were sampled in between.
    """
    digest = hashlib.blake2b(
        f"{seed}:{task_name}:{index}".encode(), digest_size=8).digest()
    return np.random.default_rng(int.from_bytes(digest, "little"))


def _clamp_ratio(ratio: float) -> float:
    """Clamp a demand ratio into the valid ``[MIN_RATIO, 1.0]`` band."""
    return min(1.0, max(MIN_RATIO, ratio))


class ExecutionModel(ABC):
    """Maps jobs to actual execution demands."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._work_cache: dict[tuple[str, float, float, int], Work] = {}

    @abstractmethod
    def ratio(self, task: PeriodicTask, index: int) -> float:
        """Return the actual/WCET demand ratio for one job, in (0, 1]."""

    def work(self, task: PeriodicTask, index: int) -> Work:
        """Actual demand of the *index*-th job of *task*.

        Respects the task's ``bcet`` as a hard lower bound.  Samples
        are memoized: the map is a pure function of ``(seed, task,
        index)``, and one model instance typically serves every policy
        of a suite (plus the clairvoyant oracle), so caching skips the
        per-query hash-seeded RNG reconstruction on all but the first
        lookup.  The key carries the WCET/BCET so a model shared
        across differently-scaled task sets stays correct.
        """
        key = (task.name, task.wcet, task.bcet, index)
        cached = self._work_cache.get(key)
        if cached is None:
            demand = _clamp_ratio(self.ratio(task, index)) * task.wcet
            cached = min(task.wcet,
                         max(demand, task.bcet, MIN_RATIO * task.wcet))
            self._work_cache[key] = cached
        return cached

    def describe(self) -> str:
        """One-line human description used in experiment reports."""
        return type(self).__name__


class ConstantExecution(ExecutionModel):
    """Every job consumes a fixed fraction of its WCET."""

    def __init__(self, ratio: float = 1.0, seed: int = 0) -> None:
        super().__init__(seed)
        if not (0.0 < ratio <= 1.0):
            raise ConfigurationError(f"ratio must be in (0, 1], got {ratio}")
        self._ratio = ratio

    def ratio(self, task: PeriodicTask, index: int) -> float:
        return self._ratio

    def describe(self) -> str:
        return f"constant(ratio={self._ratio})"


class WorstCaseExecution(ConstantExecution):
    """Every job consumes exactly its WCET (ratio 1.0)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(1.0, seed)


class UniformExecution(ExecutionModel):
    """Demand ratio drawn uniformly from ``[low, high]`` per job.

    This is the standard workload of the DVS-EDF literature: the swept
    "bc/wc" parameter is ``low`` with ``high = 1.0``.
    """

    def __init__(self, low: float = 0.5, high: float = 1.0, seed: int = 0) -> None:
        super().__init__(seed)
        if not (0.0 < low <= high <= 1.0):
            raise ConfigurationError(
                f"need 0 < low <= high <= 1, got low={low} high={high}")
        self.low = low
        self.high = high

    def ratio(self, task: PeriodicTask, index: int) -> float:
        rng = _job_rng(self.seed, task.name, index)
        return float(rng.uniform(self.low, self.high))

    def describe(self) -> str:
        return f"uniform(low={self.low}, high={self.high})"


class TruncatedNormalExecution(ExecutionModel):
    """Gaussian demand ratio truncated (by resampling) to ``[low, 1]``."""

    def __init__(self, mean: float = 0.6, std: float = 0.15,
                 low: float = MIN_RATIO, seed: int = 0) -> None:
        super().__init__(seed)
        if not (0.0 < mean <= 1.0):
            raise ConfigurationError(f"mean must be in (0, 1], got {mean}")
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        if not (0.0 < low <= 1.0):
            raise ConfigurationError(f"low must be in (0, 1], got {low}")
        self.mean = mean
        self.std = std
        self.low = low

    def ratio(self, task: PeriodicTask, index: int) -> float:
        rng = _job_rng(self.seed, task.name, index)
        for _ in range(64):
            value = float(rng.normal(self.mean, self.std))
            if self.low <= value <= 1.0:
                return value
        return min(1.0, max(self.low, self.mean))

    def describe(self) -> str:
        return f"normal(mean={self.mean}, std={self.std})"


class BimodalExecution(ExecutionModel):
    """Jobs are either light or heavy — a stress test for predictors.

    With probability ``p_heavy`` a job consumes ``heavy`` of its WCET,
    otherwise ``light``.  Feedback/prediction-based schemes degrade on
    this pattern while slack-analysis schemes keep their guarantees.
    """

    def __init__(self, light: float = 0.2, heavy: float = 1.0,
                 p_heavy: float = 0.3, seed: int = 0) -> None:
        super().__init__(seed)
        if not (0.0 < light <= heavy <= 1.0):
            raise ConfigurationError(
                f"need 0 < light <= heavy <= 1, got light={light} heavy={heavy}")
        if not (0.0 <= p_heavy <= 1.0):
            raise ConfigurationError(f"p_heavy must be in [0, 1], got {p_heavy}")
        self.light = light
        self.heavy = heavy
        self.p_heavy = p_heavy

    def ratio(self, task: PeriodicTask, index: int) -> float:
        rng = _job_rng(self.seed, task.name, index)
        if float(rng.random()) < self.p_heavy:
            return self.heavy
        return self.light

    def describe(self) -> str:
        return (f"bimodal(light={self.light}, heavy={self.heavy}, "
                f"p_heavy={self.p_heavy})")


class SinusoidalExecution(ExecutionModel):
    """Demand ratio follows a per-task sinusoid over the job index.

    Models a smoothly varying workload (e.g. an encoder whose frame
    complexity drifts): ``ratio = offset + amplitude * sin(2*pi*index/cycle
    + phase)``, optionally with uniform jitter.
    """

    def __init__(self, offset: float = 0.6, amplitude: float = 0.3,
                 cycle: int = 20, phase: float = 0.0,
                 jitter: float = 0.0, seed: int = 0) -> None:
        super().__init__(seed)
        if cycle <= 0:
            raise ConfigurationError(f"cycle must be > 0, got {cycle}")
        if amplitude < 0 or jitter < 0:
            raise ConfigurationError("amplitude and jitter must be >= 0")
        if offset - amplitude - jitter < 0 or offset + amplitude + jitter > 1.0 + 1e-12:
            raise ConfigurationError(
                "offset +/- (amplitude + jitter) must stay within [0, 1]")
        self.offset = offset
        self.amplitude = amplitude
        self.cycle = cycle
        self.phase = phase
        self.jitter = jitter

    def ratio(self, task: PeriodicTask, index: int) -> float:
        base = self.offset + self.amplitude * math.sin(
            2.0 * math.pi * index / self.cycle + self.phase)
        if self.jitter > 0:
            rng = _job_rng(self.seed, task.name, index)
            base += float(rng.uniform(-self.jitter, self.jitter))
        return base

    def describe(self) -> str:
        return (f"sinusoid(offset={self.offset}, amplitude={self.amplitude}, "
                f"cycle={self.cycle})")


class MarkovExecution(ExecutionModel):
    """Two-state Markov-modulated demand: bursty light/heavy phases.

    The per-task state chain is reconstructed deterministically from the
    job index (the chain for job ``k`` replays transitions ``0..k``), so
    sampling stays order-independent at O(index) cost — fine for the
    simulation horizons used here.
    """

    def __init__(self, light: float = 0.3, heavy: float = 0.9,
                 p_stay: float = 0.9, seed: int = 0) -> None:
        super().__init__(seed)
        if not (0.0 < light <= heavy <= 1.0):
            raise ConfigurationError(
                f"need 0 < light <= heavy <= 1, got light={light} heavy={heavy}")
        if not (0.0 <= p_stay <= 1.0):
            raise ConfigurationError(f"p_stay must be in [0, 1], got {p_stay}")
        self.light = light
        self.heavy = heavy
        self.p_stay = p_stay
        self._state_cache: dict[tuple[str, int], bool] = {}

    def _state(self, task_name: str, index: int) -> bool:
        """Return True when the chain is in the heavy state at *index*."""
        key = (task_name, index)
        cached = self._state_cache.get(key)
        if cached is not None:
            return cached
        if index == 0:
            state = bool(_job_rng(self.seed, task_name, 0).random() < 0.5)
        else:
            prev = self._state(task_name, index - 1)
            flip = float(_job_rng(self.seed, task_name, index).random())
            state = prev if flip < self.p_stay else not prev
        self._state_cache[key] = state
        return state

    def ratio(self, task: PeriodicTask, index: int) -> float:
        return self.heavy if self._state(task.name, index) else self.light

    def describe(self) -> str:
        return (f"markov(light={self.light}, heavy={self.heavy}, "
                f"p_stay={self.p_stay})")


class TraceExecution(ExecutionModel):
    """Replay recorded demand ratios; repeats cyclically when exhausted."""

    def __init__(self, ratios: dict[str, list[float]] | list[float],
                 seed: int = 0) -> None:
        super().__init__(seed)
        if isinstance(ratios, list):
            if not ratios:
                raise ConfigurationError("trace must be non-empty")
            self._default: list[float] | None = list(ratios)
            self._per_task: dict[str, list[float]] = {}
        else:
            if not ratios:
                raise ConfigurationError("trace mapping must be non-empty")
            self._default = None
            self._per_task = {name: list(vals) for name, vals in ratios.items()}
            for name, vals in self._per_task.items():
                if not vals:
                    raise ConfigurationError(f"trace for {name!r} is empty")
        for vals in ([self._default] if self._default else self._per_task.values()):
            for v in vals:
                if not (0.0 < v <= 1.0):
                    raise ConfigurationError(
                        f"trace ratio {v} outside (0, 1]")

    def ratio(self, task: PeriodicTask, index: int) -> float:
        trace = self._per_task.get(task.name, self._default)
        if trace is None:
            raise ConfigurationError(
                f"no trace for task {task.name!r} and no default trace")
        return trace[index % len(trace)]

    def describe(self) -> str:
        return "trace-replay"


def model_for_bcwc_ratio(bcwc: float, seed: int = 0) -> ExecutionModel:
    """The canonical swept workload: uniform demand in ``[bcwc, 1]``·WCET."""
    if math.isclose(bcwc, 1.0):
        return WorstCaseExecution(seed=seed)
    return UniformExecution(low=bcwc, high=1.0, seed=seed)
