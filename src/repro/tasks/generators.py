"""Random task-set generation.

The standard recipe of the DVS/real-time evaluation literature:

* per-task utilizations via **UUniFast** (Bini & Buttazzo), which samples
  uniformly from the simplex of utilization vectors summing to ``U``;
* periods drawn log-uniformly from a range (so task time scales spread
  over orders of magnitude), optionally snapped to a divisor grid that
  keeps hyperperiods small enough to simulate;
* WCETs derived as ``u_i * T_i``.

All generation is driven by an explicit :class:`numpy.random.Generator`
so every experiment is reproducible from its seed.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

#: Default harmonic-friendly period grid (time units are arbitrary;
#: think milliseconds).  Chosen so any subset has a hyperperiod that
#: divides 3600.
DEFAULT_PERIOD_CHOICES: tuple[float, ...] = (
    10.0, 12.0, 15.0, 20.0, 24.0, 30.0, 36.0, 40.0, 45.0, 50.0, 60.0,
    72.0, 75.0, 90.0, 100.0, 120.0, 150.0, 180.0, 200.0, 225.0, 240.0,
    300.0, 360.0, 400.0, 450.0, 600.0, 720.0, 900.0, 1200.0, 1800.0,
)


def uunifast(n: int, total_utilization: float,
             rng: np.random.Generator) -> list[float]:
    """Sample *n* utilizations summing to *total_utilization*.

    Classic UUniFast: unbiased uniform sampling over the simplex.
    Individual utilizations may exceed 1 when ``total_utilization > 1``;
    use :func:`uunifast_discard` if per-task feasibility is required in
    that regime.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be > 0, got {n}")
    if total_utilization <= 0:
        raise ConfigurationError(
            f"total utilization must be > 0, got {total_utilization}")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * float(rng.random()) ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(n: int, total_utilization: float,
                     rng: np.random.Generator,
                     max_tries: int = 10_000) -> list[float]:
    """UUniFast with rejection of vectors containing ``u_i > 1``."""
    if total_utilization > n:
        raise ConfigurationError(
            f"cannot split U={total_utilization} over {n} tasks with u_i <= 1")
    for _ in range(max_tries):
        candidate = uunifast(n, total_utilization, rng)
        if max(candidate) <= 1.0:
            return candidate
    raise ConfigurationError(
        f"uunifast_discard failed after {max_tries} tries "
        f"(n={n}, U={total_utilization})")


def log_uniform_periods(n: int, rng: np.random.Generator,
                        low: float = 10.0, high: float = 1000.0) -> list[float]:
    """Draw *n* periods log-uniformly from ``[low, high]`` (continuous)."""
    if not (0 < low <= high):
        raise ConfigurationError(f"need 0 < low <= high, got {low}, {high}")
    return [float(math.exp(rng.uniform(math.log(low), math.log(high))))
            for _ in range(n)]


def grid_periods(n: int, rng: np.random.Generator,
                 choices: Sequence[float] = DEFAULT_PERIOD_CHOICES) -> list[float]:
    """Draw *n* periods from a fixed grid (keeps hyperperiods small)."""
    if not choices:
        raise ConfigurationError("period choices must be non-empty")
    index = rng.integers(0, len(choices), size=n)
    return [float(choices[i]) for i in index]


def generate_taskset(
    n: int,
    utilization: float,
    rng: np.random.Generator,
    *,
    period_choices: Sequence[float] = DEFAULT_PERIOD_CHOICES,
    continuous_periods: bool = False,
    period_range: tuple[float, float] = (10.0, 1000.0),
    name_prefix: str = "T",
    min_wcet: float = 1e-6,
    deadline_range: tuple[float, float] | None = None,
) -> TaskSet:
    """Generate a feasible periodic task set.

    Parameters
    ----------
    n:
        Number of tasks.
    utilization:
        Target total worst-case utilization in ``(0, 1]``.
    rng:
        Source of randomness; pass ``numpy.random.default_rng(seed)``.
    period_choices:
        Grid of admissible periods (default keeps hyperperiods tame).
    continuous_periods:
        When true, draw log-uniform periods from *period_range* instead
        of the grid (hyperperiods may then be huge; the simulator will
        fall back to a job-count-based horizon).
    name_prefix:
        Tasks are named ``f"{name_prefix}{i}"`` starting at 1.
    min_wcet:
        Floor on generated WCETs so degenerate utilizations still yield
        valid tasks (the set is rescaled afterwards to hit *utilization*
        exactly).
    deadline_range:
        When given, relative deadlines are drawn uniformly from
        ``[lo * period, hi * period]`` (clamped to ``[wcet, period]``),
        producing a constrained-deadline set; the default ``None``
        keeps deadlines implicit.  Constrained sets are validated with
        the exact processor-demand test and regenerated-by-rescaling is
        skipped (scaling WCETs would change the density non-linearly).
    """
    if not (0.0 < utilization <= 1.0):
        raise ConfigurationError(
            f"utilization must be in (0, 1] for a feasible EDF set, "
            f"got {utilization}")
    if deadline_range is not None:
        lo, hi = deadline_range
        if not (0.0 < lo <= hi <= 1.0):
            raise ConfigurationError(
                f"deadline_range must satisfy 0 < lo <= hi <= 1, got "
                f"{deadline_range}")
    utilizations = uunifast_discard(n, utilization, rng)
    if continuous_periods:
        periods = log_uniform_periods(n, rng, *period_range)
    else:
        periods = grid_periods(n, rng, period_choices)
    tasks = []
    for i, (u, period) in enumerate(zip(utilizations, periods), start=1):
        wcet = min(max(u * period, min_wcet), period)
        deadline = None
        if deadline_range is not None:
            deadline = float(rng.uniform(lo, hi)) * period
            deadline = min(period, max(deadline, wcet))
        tasks.append(PeriodicTask(name=f"{name_prefix}{i}", wcet=wcet,
                                  period=period, deadline=deadline))
    taskset = TaskSet(tasks)
    if deadline_range is None:
        # Tiny floors/clamps can nudge total utilization; rescale exactly.
        if not math.isclose(taskset.utilization, utilization, rel_tol=1e-12):
            taskset = taskset.scaled_to_utilization(utilization)
        taskset.assert_feasible_edf()
    else:
        from repro.analysis.schedulability import processor_demand_test
        if not processor_demand_test(taskset):
            # Shrink deadlines made the set infeasible; relax them
            # toward implicit until the exact test accepts it.
            relaxed = []
            for task in taskset:
                relaxed.append(PeriodicTask(
                    name=task.name, wcet=task.wcet, period=task.period,
                    deadline=0.5 * (task.deadline + task.period)))
            taskset = TaskSet(relaxed)
            if not processor_demand_test(taskset):
                taskset = TaskSet([
                    PeriodicTask(name=t.name, wcet=t.wcet,
                                 period=t.period) for t in taskset])
    return taskset


def generate_taskset_family(
    count: int,
    n: int,
    utilization: float,
    seed: int,
    **kwargs,
) -> list[TaskSet]:
    """Generate *count* independent task sets from one master seed."""
    master = np.random.default_rng(seed)
    seeds = master.integers(0, 2**63 - 1, size=count)
    return [generate_taskset(n, utilization, np.random.default_rng(int(s)),
                             **kwargs)
            for s in seeds]
