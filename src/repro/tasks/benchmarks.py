"""Real-world-style benchmark task sets.

The DVS-EDF papers of the early 2000s evaluate on three recurring
embedded control suites: a **CNC machine controller** (Kim et al.), the
**generic avionics platform** (Locke et al.) and an **inertial
navigation system** (Burns et al.).  The original tables are not
shippable here, so the sets below are *representative reconstructions*:
task counts, period spreads and total utilizations match the published
characterisations of those suites (CNC: 8 tasks, U≈0.51; avionics:
17 tasks, U≈0.84; INS: 6 tasks, U≈0.73), with WCETs derived from the
period structure.  This substitution is recorded in DESIGN.md §4.5 —
every qualitative claim the experiments make depends only on these
aggregate characteristics, not on the exact per-task microseconds.

All times are in milliseconds.
"""

from __future__ import annotations

from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def cnc_taskset() -> TaskSet:
    """CNC machine-controller suite: 8 tasks, U ≈ 0.51.

    Short sensing/actuation loops plus slower interpolation and
    planning tasks, after the CNC controller case study used across the
    DVS literature.
    """
    tasks = [
        PeriodicTask("cnc_servo_x", wcet=0.30, period=2.4),
        PeriodicTask("cnc_servo_y", wcet=0.25, period=2.4),
        PeriodicTask("cnc_servo_z", wcet=0.25, period=2.4),
        PeriodicTask("cnc_interp", wcet=0.50, period=4.8),
        PeriodicTask("cnc_cmd", wcet=0.50, period=9.6),
        PeriodicTask("cnc_status", wcet=0.30, period=19.2),
        PeriodicTask("cnc_panel", wcet=0.80, period=76.8),
        PeriodicTask("cnc_monitor", wcet=0.60, period=153.6),
    ]
    return TaskSet(tasks)


def avionics_taskset() -> TaskSet:
    """Generic avionics platform: 17 tasks, U ≈ 0.84.

    The classic mixed-rate mission-computer workload (weapon release,
    radar tracking, navigation, displays, built-in test) after Locke,
    Vogel & Mesler's Generic Avionics Platform.
    """
    tasks = [
        PeriodicTask("av_weapon_rel", wcet=1.0, period=10.0),
        PeriodicTask("av_radar_trk", wcet=2.0, period=40.0),
        PeriodicTask("av_rwr_contact", wcet=3.0, period=25.0),
        PeriodicTask("av_data_bus", wcet=1.0, period=50.0),
        PeriodicTask("av_weapon_aim", wcet=3.0, period=50.0),
        PeriodicTask("av_radar_upd", wcet=5.0, period=50.0),
        PeriodicTask("av_nav_upd", wcet=7.0, period=60.0),
        PeriodicTask("av_display_gr", wcet=9.0, period=80.0),
        PeriodicTask("av_display_hud", wcet=6.0, period=80.0),
        PeriodicTask("av_track_upd", wcet=5.0, period=100.0),
        PeriodicTask("av_nav_steer", wcet=3.0, period=200.0),
        PeriodicTask("av_display_stat", wcet=1.0, period=200.0),
        PeriodicTask("av_display_keys", wcet=1.0, period=200.0),
        PeriodicTask("av_display_store", wcet=1.0, period=200.0),
        PeriodicTask("av_bit", wcet=1.0, period=1000.0),
        PeriodicTask("av_nav_status", wcet=1.0, period=1000.0),
        PeriodicTask("av_weapon_prot", wcet=1.0, period=200.0),
    ]
    return TaskSet(tasks)


def ins_taskset() -> TaskSet:
    """Inertial navigation system: 6 tasks, U ≈ 0.73.

    High-rate attitude integration with slower navigation and status
    loops, after Burns, Tindell & Wellings' INS case study.
    """
    tasks = [
        PeriodicTask("ins_attitude", wcet=1.40, period=2.5),
        PeriodicTask("ins_velocity", wcet=0.96, period=40.0),
        PeriodicTask("ins_att_send", wcet=1.72, period=62.5),
        PeriodicTask("ins_nav_send", wcet=2.10, period=1000.0),
        PeriodicTask("ins_status", wcet=3.00, period=1000.0),
        PeriodicTask("ins_position", wcet=150.0, period=1250.0),
    ]
    return TaskSet(tasks)


#: Name -> factory mapping used by the experiment harness and CLI.
BENCHMARK_TASKSETS = {
    "cnc": cnc_taskset,
    "avionics": avionics_taskset,
    "ins": ins_taskset,
}


def load_benchmark(name: str) -> TaskSet:
    """Look up a benchmark suite by name (``cnc``/``avionics``/``ins``)."""
    try:
        factory = BENCHMARK_TASKSETS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARK_TASKSETS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return factory()
