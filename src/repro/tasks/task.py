"""Periodic hard real-time task model.

A task :math:`T_i = (C_i, P_i, D_i, \\phi_i)` releases a job every
``period`` time units starting at ``phase``; each job requires at most
``wcet`` units of work (expressed at maximum processor speed) and must
finish within ``deadline`` time units of its release.  The model is the
classic Liu & Layland periodic task extended with constrained deadlines
(``deadline <= period``), which is what the DVS-EDF literature this
repository reproduces assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.types import Time, Work, is_finite_positive


@dataclass(frozen=True)
class PeriodicTask:
    """An immutable periodic task description.

    Parameters
    ----------
    name:
        Unique identifier within a task set.
    wcet:
        Worst-case execution time at maximum processor speed
        (strictly positive).
    period:
        Inter-release separation (strictly positive).
    deadline:
        Relative deadline; defaults to the period (implicit deadline).
        Must satisfy ``0 < deadline <= period``.
    phase:
        Release offset of the first job (non-negative, default 0).
    bcet:
        Best-case execution time, used by execution-time models as the
        lower bound of actual demand.  Defaults to 0 (no information).
    """

    name: str
    wcet: Work
    period: Time
    deadline: Time | None = None
    phase: Time = 0.0
    bcet: Work = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("task name must be non-empty")
        if not is_finite_positive(self.wcet):
            raise ConfigurationError(
                f"task {self.name!r}: wcet must be finite and > 0, got {self.wcet}")
        if not is_finite_positive(self.period):
            raise ConfigurationError(
                f"task {self.name!r}: period must be finite and > 0, got {self.period}")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if not is_finite_positive(self.deadline):
            raise ConfigurationError(
                f"task {self.name!r}: deadline must be finite and > 0, "
                f"got {self.deadline}")
        if self.deadline > self.period:
            raise ConfigurationError(
                f"task {self.name!r}: deadline {self.deadline} exceeds "
                f"period {self.period} (only constrained deadlines are supported)")
        if self.wcet > self.deadline:
            raise ConfigurationError(
                f"task {self.name!r}: wcet {self.wcet} exceeds deadline "
                f"{self.deadline}; the task can never meet its deadline")
        if self.phase < 0:
            raise ConfigurationError(
                f"task {self.name!r}: phase must be >= 0, got {self.phase}")
        if self.bcet < 0 or self.bcet > self.wcet:
            raise ConfigurationError(
                f"task {self.name!r}: bcet must lie in [0, wcet], got {self.bcet}")

    @property
    def utilization(self) -> float:
        """Worst-case utilization ``wcet / period``."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """Worst-case density ``wcet / min(deadline, period)``."""
        return self.wcet / min(self.deadline, self.period)

    @property
    def implicit_deadline(self) -> bool:
        """``True`` when the relative deadline equals the period."""
        return self.deadline == self.period

    def release_time(self, index: int) -> Time:
        """Absolute release time of the *index*-th job (0-based)."""
        if index < 0:
            raise ValueError(f"job index must be >= 0, got {index}")
        return self.phase + index * self.period

    def absolute_deadline(self, index: int) -> Time:
        """Absolute deadline of the *index*-th job (0-based)."""
        return self.release_time(index) + self.deadline

    def next_release_at_or_after(self, t: Time) -> Time:
        """First release time that is ``>= t``."""
        if t <= self.phase:
            return self.phase
        elapsed = t - self.phase
        k = int(elapsed // self.period)
        release = self.phase + k * self.period
        if release < t:
            release += self.period
        return release

    def scaled(self, wcet_factor: float, name: str | None = None) -> "PeriodicTask":
        """Return a copy with the WCET multiplied by *wcet_factor*."""
        if wcet_factor <= 0:
            raise ConfigurationError(
                f"wcet_factor must be > 0, got {wcet_factor}")
        return PeriodicTask(
            name=name if name is not None else self.name,
            wcet=self.wcet * wcet_factor,
            period=self.period,
            deadline=self.deadline,
            phase=self.phase,
            bcet=min(self.bcet * wcet_factor, self.wcet * wcet_factor),
        )
