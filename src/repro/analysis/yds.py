"""YDS offline-optimal speed scheduling (Yao, Demers & Shenker 1995).

Given a *concrete* job set — releases, deadlines and (actual) work
known in advance — YDS computes the speed schedule minimising total
energy under any convex power function: repeatedly find the
**critical interval** ``[z1, z2]`` maximising the intensity
``g = (work of jobs entirely inside the interval) / (z2 - z1)``, run
those jobs at ``g``, remove them, collapse the interval, and recurse.

This module provides the optimal *energy* (and the peeled intensity
steps) as the absolute reference floor for the experiment figures: the
clairvoyant policy operates per-dispatch and cannot beat it.  Speeds
are clamped into the processor's attainable range when pricing the
schedule, so the bound stays meaningful on discrete or floored scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.tasks.execution import ExecutionModel
from repro.tasks.taskset import TaskSet
from repro.types import Energy, Time, Work


@dataclass(frozen=True)
class ConcreteJob:
    """One job instance with fully known parameters."""

    release: Time
    deadline: Time
    work: Work

    def __post_init__(self) -> None:
        if self.deadline <= self.release:
            raise ConfigurationError(
                f"deadline {self.deadline} must follow release "
                f"{self.release}")
        if self.work <= 0:
            raise ConfigurationError(f"work must be > 0, got {self.work}")


@dataclass(frozen=True)
class IntensityStep:
    """One peeled critical interval: run at *intensity* for *duration*."""

    intensity: float
    duration: Time
    work: Work


def jobs_from_taskset(taskset: TaskSet, execution_model: ExecutionModel,
                      horizon: Time) -> list[ConcreteJob]:
    """Materialise the concrete jobs a simulation horizon contains.

    Only jobs whose deadline falls inside the horizon are included —
    the same obligation set the simulator enforces.
    """
    jobs = []
    for task in taskset:
        index = 0
        while task.release_time(index) < horizon - 1e-9:
            deadline = task.absolute_deadline(index)
            if deadline <= horizon + 1e-9:
                jobs.append(ConcreteJob(
                    release=task.release_time(index),
                    deadline=deadline,
                    work=execution_model.work(task, index)))
            index += 1
    return jobs


def yds_schedule(jobs: Sequence[ConcreteJob]) -> list[IntensityStep]:
    """Peel critical intervals until every job is scheduled.

    Returns the intensity steps in peel order (non-increasing
    intensity).  O(n^2) per peel with vectorised interval scans; fine
    for the few hundred jobs a figure horizon contains.
    """
    releases = np.array([j.release for j in jobs], dtype=float)
    deadlines = np.array([j.deadline for j in jobs], dtype=float)
    works = np.array([j.work for j in jobs], dtype=float)
    steps: list[IntensityStep] = []

    while releases.size:
        z1_candidates = np.unique(releases)
        best_g = -1.0
        best_z1 = best_z2 = 0.0
        for z1 in z1_candidates:
            inside = releases >= z1 - 1e-12
            if not np.any(inside):
                continue
            ds = deadlines[inside]
            ws = works[inside]
            order = np.argsort(ds, kind="stable")
            ds = ds[order]
            ws = ws[order]
            cumulative = np.cumsum(ws)
            spans = ds - z1
            valid = spans > 1e-12
            if not np.any(valid):
                continue
            intensity = np.where(valid, cumulative / np.maximum(spans, 1e-300),
                                 -1.0)
            k = int(np.argmax(intensity))
            if intensity[k] > best_g + 1e-15:
                best_g = float(intensity[k])
                best_z1 = float(z1)
                best_z2 = float(ds[k])
        if best_g <= 0:
            raise ConfigurationError("no critical interval found")

        inside = ((releases >= best_z1 - 1e-12)
                  & (deadlines <= best_z2 + 1e-12))
        step_work = float(works[inside].sum())
        duration = best_z2 - best_z1
        steps.append(IntensityStep(intensity=best_g, duration=duration,
                                   work=step_work))
        # Remove the scheduled jobs and collapse the interval: jobs
        # overlapping it have the interval's span excised from their
        # windows (the classic YDS timeline compression).
        releases = releases[~inside]
        deadlines = deadlines[~inside]
        works = works[~inside]
        releases = np.where(releases >= best_z2, releases - duration,
                            np.minimum(releases, best_z1))
        deadlines = np.where(deadlines >= best_z2, deadlines - duration,
                             np.minimum(deadlines, best_z1))
    return steps


def yds_optimal_energy(taskset: TaskSet, execution_model: ExecutionModel,
                       processor: Processor, horizon: Time) -> Energy:
    """Energy of the YDS-optimal schedule, priced on *processor*.

    Intensities are clamped into the attainable speed range (quantized
    up), so on a discrete scale this is the optimal *fluid* schedule
    priced realistically — still a valid lower-bound reference for the
    per-dispatch policies on the same processor.
    """
    jobs = jobs_from_taskset(taskset, execution_model, horizon)
    if not jobs:
        return 0.0
    energy = 0.0
    for step in yds_schedule(jobs):
        speed = processor.quantize(min(1.0, step.intensity))
        # The step's work retires in work/speed wall time at `speed`.
        energy += processor.active_energy(speed, step.work / speed)
    return energy
