"""Trace validation: structural and semantic invariants of a run.

The engine is trusted but verified: tests (and paranoid users) replay a
recorded trace against the task set and processor and confirm that

* segments tile the timeline without overlaps,
* every speed used was attainable on the processor's scale,
* each job executed between its release and its completion,
* retired work (speed x duration) matches each job's demand,
* every job completed by its deadline,
* and energy totals match the power model.

Failures raise :class:`TraceValidationError` with a precise message.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cpu.processor import Processor
from repro.errors import TraceValidationError
from repro.sim.results import SimulationResult
from repro.sim.tracing import SegmentKind, TraceRecorder
from repro.tasks.arrivals import ArrivalModel, PeriodicArrival
from repro.tasks.execution import ExecutionModel
from repro.tasks.taskset import TaskSet

#: Work/energy tolerance scale for float accumulation over a run.
_TOL = 1e-6


def validate_structure(trace: TraceRecorder) -> None:
    """Segments must be ordered, non-overlapping and non-negative."""
    previous_end = None
    for seg in trace:
        if seg.duration < -_TOL:
            raise TraceValidationError(
                f"segment with negative duration: [{seg.start}, {seg.end}]")
        if previous_end is not None and seg.start < previous_end - _TOL:
            raise TraceValidationError(
                f"segment starting at {seg.start} overlaps previous end "
                f"{previous_end}")
        previous_end = seg.end


def validate_speeds(trace: TraceRecorder, processor: Processor) -> None:
    """Every RUN segment must use an attainable speed."""
    for seg in trace:
        if seg.kind != SegmentKind.RUN:
            continue
        if not processor.scale.is_attainable(seg.speed, tol=1e-6):
            raise TraceValidationError(
                f"segment [{seg.start}, {seg.end}] runs {seg.job} at "
                f"unattainable speed {seg.speed}")


def validate_jobs(trace: TraceRecorder, taskset: TaskSet,
                  execution_model: ExecutionModel,
                  horizon: float,
                  arrival_model: ArrivalModel | None = None) -> None:
    """Per-job work conservation, window containment and deadlines."""
    arrival_model = arrival_model or PeriodicArrival()
    executed: dict[str, float] = defaultdict(float)
    window: dict[str, tuple[float, float]] = {}
    for seg in trace:
        if seg.kind != SegmentKind.RUN:
            continue
        if seg.job is None or seg.task is None:
            raise TraceValidationError(
                f"RUN segment [{seg.start}, {seg.end}] lacks a job label")
        executed[seg.job] += seg.speed * seg.duration
        lo, hi = window.get(seg.job, (seg.start, seg.end))
        window[seg.job] = (min(lo, seg.start), max(hi, seg.end))

    for job_name, work in executed.items():
        task_name, _, index_str = job_name.partition("#")
        if task_name not in taskset:
            raise TraceValidationError(
                f"trace references unknown task {task_name!r}")
        task = taskset[task_name]
        index = int(index_str)
        release = arrival_model.arrival_time(task, index)
        deadline = release + task.deadline
        demand = execution_model.work(task, index)
        start, end = window[job_name]
        if start < release - _TOL:
            raise TraceValidationError(
                f"job {job_name} executed at {start} before its release "
                f"{release}")
        tolerance = _TOL * max(1.0, demand)
        if work > demand + tolerance:
            raise TraceValidationError(
                f"job {job_name} retired {work} work, more than its "
                f"demand {demand}")
        finished = work >= demand - tolerance
        if finished and end > deadline + _TOL:
            raise TraceValidationError(
                f"job {job_name} finished at {end}, after its deadline "
                f"{deadline}")
        if not finished and deadline <= horizon + _TOL:
            raise TraceValidationError(
                f"job {job_name} only retired {work} of {demand} work "
                f"by the horizon but its deadline {deadline} is inside "
                f"the simulation")


def validate_energy(trace: TraceRecorder, processor: Processor,
                    result: SimulationResult) -> None:
    """Trace energy must re-derive from the power model and totals."""
    busy = idle = 0.0
    for seg in trace:
        if seg.kind == SegmentKind.RUN:
            expected = processor.active_energy(seg.speed, seg.duration)
            if abs(expected - seg.energy) > _TOL * max(1.0, expected):
                raise TraceValidationError(
                    f"segment [{seg.start}, {seg.end}]: recorded energy "
                    f"{seg.energy} != model energy {expected}")
            busy += seg.energy
        elif seg.kind == SegmentKind.IDLE:
            idle += seg.energy
    if abs(busy - result.busy_energy) > _TOL * max(1.0, busy):
        raise TraceValidationError(
            f"trace busy energy {busy} != result busy energy "
            f"{result.busy_energy}")
    if abs(idle - result.idle_energy) > _TOL * max(1.0, idle):
        raise TraceValidationError(
            f"trace idle energy {idle} != result idle energy "
            f"{result.idle_energy}")


def validate_run(result: SimulationResult, taskset: TaskSet,
                 processor: Processor,
                 execution_model: ExecutionModel,
                 arrival_model: ArrivalModel | None = None) -> None:
    """Run every validator against a result that recorded its trace."""
    if result.trace is None:
        raise TraceValidationError(
            "result has no trace; run with record_trace=True")
    validate_structure(result.trace)
    validate_speeds(result.trace, processor)
    validate_jobs(result.trace, taskset, execution_model, result.horizon,
                  arrival_model)
    validate_energy(result.trace, processor, result)
