"""Small statistics helpers for experiment aggregation.

Kept dependency-light (plain math + numpy) so the experiment harness
can report means with confidence intervals without dragging scipy into
the core library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Two-sided 95% normal quantile; for the sample counts the harness
#: uses (>= 10 task sets per point) the normal approximation is fine.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Mean with spread for one experiment cell."""

    mean: float
    std: float
    count: int
    ci95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.ci95:.4f} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample std, 95% CI half-width and range of *values*."""
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    if array.size > 1:
        std = float(array.std(ddof=1))
        ci95 = _Z95 * std / math.sqrt(array.size)
    else:
        std = 0.0
        ci95 = 0.0
    return Summary(mean=mean, std=std, count=int(array.size), ci95=ci95,
                   minimum=float(array.min()), maximum=float(array.max()))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be > 0)."""
    if not values:
        raise ConfigurationError("cannot average an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.log(array).mean()))


def relative_change(new: float, baseline: float) -> float:
    """Fractional change of *new* versus *baseline* (negative = saving)."""
    if baseline == 0:
        raise ConfigurationError("baseline is zero")
    return (new - baseline) / baseline
