"""Schedulability, demand and slack-time analysis."""

from repro.analysis.demand import (
    dbf,
    dbf_task,
    future_demand,
    future_demand_linear_bound,
    deadlines_within,
    busy_window_end,
)
from repro.analysis.schedulability import (
    edf_utilization_test,
    edf_density_test,
    processor_demand_test,
    rm_response_time_analysis,
    minimum_constant_speed,
    ResponseTimeResult,
)
from repro.analysis.slack import (
    ActiveJob,
    SystemState,
    demand,
    demand_linear_bound,
    exact_slack,
    heuristic_slack,
    stretch_speed,
    allotted_speed,
    scale_tasks,
)
from repro.analysis.audit import (
    Violation,
    audit_trace,
    render_violations,
    run_and_audit,
)
from repro.analysis.validation import (
    validate_run,
    validate_structure,
    validate_speeds,
    validate_jobs,
    validate_energy,
)
from repro.analysis.stats import (
    Summary,
    summarize,
    geometric_mean,
    relative_change,
)
from repro.analysis.yds import (
    ConcreteJob,
    IntensityStep,
    jobs_from_taskset,
    yds_schedule,
    yds_optimal_energy,
)

__all__ = [
    "dbf",
    "dbf_task",
    "future_demand",
    "future_demand_linear_bound",
    "deadlines_within",
    "busy_window_end",
    "edf_utilization_test",
    "edf_density_test",
    "processor_demand_test",
    "rm_response_time_analysis",
    "minimum_constant_speed",
    "ResponseTimeResult",
    "ActiveJob",
    "SystemState",
    "demand",
    "demand_linear_bound",
    "exact_slack",
    "heuristic_slack",
    "stretch_speed",
    "allotted_speed",
    "scale_tasks",
    "Violation",
    "audit_trace",
    "render_violations",
    "run_and_audit",
    "validate_run",
    "validate_structure",
    "validate_speeds",
    "validate_jobs",
    "validate_energy",
    "Summary",
    "summarize",
    "geometric_mean",
    "relative_change",
    "ConcreteJob",
    "IntensityStep",
    "jobs_from_taskset",
    "yds_schedule",
    "yds_optimal_energy",
]
