"""Processor-demand arithmetic for periodic task systems.

The demand bound function (dbf) counts the worst-case work that *must*
complete inside an interval; EDF feasibility and the online slack-time
analysis are both built on it.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Time, Work


def dbf_task(task: PeriodicTask, interval: Time) -> Work:
    """Demand bound of one task over a synchronous interval ``[0, L]``.

    ``dbf(L) = max(0, floor((L - D) / T) + 1) * C`` — the number of
    complete (release, deadline) windows inside ``[0, L]``.
    """
    if interval < 0:
        raise ConfigurationError(f"interval must be >= 0, got {interval}")
    jobs = math.floor((interval - task.deadline) / task.period) + 1
    return max(0, jobs) * task.wcet


def dbf(taskset: TaskSet | Iterable[PeriodicTask], interval: Time) -> Work:
    """Total demand bound of a task set over ``[0, L]``."""
    return sum(dbf_task(task, interval) for task in taskset)


def future_demand(task: PeriodicTask, next_release: Time, d: Time) -> Work:
    """Work of *task*'s future jobs that must finish by absolute time *d*.

    Counts jobs released at ``next_release + k*T`` whose absolute
    deadline ``release + D`` lands at or before *d*.
    """
    span = d - task.deadline - next_release
    if span < 0:
        return 0.0
    return (math.floor(span / task.period) + 1) * task.wcet


def future_demand_linear_bound(task: PeriodicTask, next_release: Time,
                               d: Time) -> Work:
    """A closed-form over-approximation of :func:`future_demand`.

    ``U_i * (d - nr)+`` plus, for constrained deadlines, the constant
    correction ``C_i * (T_i - D_i) / T_i`` — provably an upper bound on
    the true floor-based demand for every *d* (the bound the lpSEH
    heuristic uses so its slack estimate stays safe).
    """
    headroom = d - next_release
    if headroom <= 0:
        return 0.0
    bound = task.utilization * headroom
    if task.deadline < task.period:
        bound += task.wcet * (task.period - task.deadline) / task.period
    return bound


def deadlines_within(tasks: Sequence[PeriodicTask],
                     next_release: Mapping[str, Time],
                     start: Time, end: Time) -> list[Time]:
    """All future absolute deadlines in ``(start, end]``, sorted, deduped.

    For each task, enumerates the deadlines of jobs released from its
    ``next_release`` time onward.
    """
    if end < start:
        return []
    points: set[Time] = set()
    for task in tasks:
        release = next_release[task.name]
        deadline = release + task.deadline
        while deadline <= end:
            if deadline > start:
                points.add(deadline)
            release += task.period
            deadline = release + task.deadline
    return sorted(points)


def busy_window_end(
    pending_work: Work,
    tasks: Sequence[PeriodicTask],
    next_release: Mapping[str, Time],
    start: Time,
    cap: Time,
    tol: float = 1e-9,
    max_iterations: int = 64,
) -> Time:
    """First idle instant of the full-speed schedule starting at *start*.

    Fixed-point iteration on ``L = pending + arrivals(start, start+L)``;
    returns ``min(fixed point, cap)`` — capping is always safe for the
    slack analysis because the caller guards the tail with a linear
    bound.
    """
    if pending_work <= tol:
        return start
    length = pending_work
    for _ in range(max_iterations):
        horizon = start + length
        # Arrivals strictly inside [start, horizon): releases r with r < horizon.
        arrivals = 0.0
        for task in tasks:
            release = next_release[task.name]
            if release < horizon - tol:
                count = math.floor((horizon - tol - release) / task.period) + 1
                arrivals += count * task.wcet
        new_length = pending_work + arrivals
        if new_length > cap - start:
            return cap
        if abs(new_length - length) <= tol:
            return start + new_length
        length = new_length
    return min(start + length, cap)
