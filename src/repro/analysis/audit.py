"""Trace invariant auditor: machine-checkable schedule correctness.

:func:`audit_trace` replays a recorded schedule trace against the
workload models and returns structured :class:`Violation` records —
one per broken invariant occurrence — instead of raising on the first
problem (the contract of :mod:`repro.analysis.validation`) or
reducing to a boolean.  CI consumes the list (empty == pass, each
entry names what broke, when, and for which job); humans get
:func:`render_violations`.

Invariants audited, in one merge-walk over the segment stream:

* **coverage** — segments tile ``[0, horizon]`` gap-free and without
  overlaps;
* **edf-order** — at every dispatch the running job has the earliest
  deadline among released, incomplete jobs, and no earlier-deadline
  release inside a run segment went unpreempted;
* **idle** — the processor never idles (or sleeps, at the start of the
  episode) while released work is pending;
* **work** — every job executes inside its ``[release, ...]`` window
  and retires exactly its actual demand, never more;
* **deadline** — trace-observed completions agree with the result's
  recorded deadline misses, in both directions;
* **speed** — every run speed is attainable on the processor's scale;
* **energy** — the per-job :class:`~repro.trace.ledger.EnergyLedger`
  reconciles bucket-by-bucket with the result's energy totals;
* **governor-floor** — every governor intervention note is honoured by
  the dispatch it clamped (the run executes at or above the floor).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.tracing import SegmentKind
from repro.tasks.arrivals import ArrivalModel, PeriodicArrival
from repro.tasks.execution import ExecutionModel
from repro.tasks.taskset import TaskSet
from repro.trace.ledger import EnergyLedger
from repro.types import DEADLINE_EPS, TIME_EPS

#: Governor note floors are rendered with 4 decimals; allow that much.
_FLOOR_TOL = 1e-4


@dataclass(frozen=True)
class Violation:
    """One broken invariant occurrence, pinned to a time and job."""

    kind: str
    time: float
    message: str
    job: str | None = None

    def render(self) -> str:
        where = f" [{self.job}]" if self.job else ""
        return f"{self.kind:<15} t={self.time:<12g}{where} {self.message}"


def render_violations(violations: list[Violation]) -> str:
    """Human-readable audit report."""
    if not violations:
        return "audit: 0 violations"
    lines = [f"audit: {len(violations)} violation(s)"]
    lines.extend(f"  {v.render()}" for v in violations)
    return "\n".join(lines)


@dataclass
class _JobWindow:
    """Reconstructed obligations of one job."""

    release: float
    deadline: float
    demand: float
    executed: float = 0.0
    completion: float | None = None


def _reconstruct_jobs(
    taskset: TaskSet, execution_model: ExecutionModel,
    arrival_model: ArrivalModel, horizon: float,
) -> dict[str, _JobWindow]:
    """Every job the engine would release before the horizon."""
    jobs: dict[str, _JobWindow] = {}
    for task in taskset:
        index = 0
        while True:
            release = arrival_model.arrival_time(task, index)
            if release >= horizon - TIME_EPS:
                break
            jobs[f"{task.name}#{index}"] = _JobWindow(
                release=release, deadline=release + task.deadline,
                demand=execution_model.work(task, index))
            index += 1
    return jobs


def audit_trace(
    result: SimulationResult,
    taskset: TaskSet,
    processor: Processor,
    execution_model: ExecutionModel,
    arrival_model: ArrivalModel | None = None,
    *,
    time_eps: float = DEADLINE_EPS,
    deadline_eps: float = DEADLINE_EPS,
) -> list[Violation]:
    """Audit a traced run; returns all violations found (empty = clean).

    The models must be the ones the engine actually ran — for
    fault-injected runs that means the *wrapped* models
    (:class:`~repro.faults.FaultyExecution` /
    :class:`~repro.faults.FaultyArrival`); use :func:`run_and_audit`
    to get that pairing for free.
    """
    if result.trace is None:
        raise ConfigurationError(
            "cannot audit a result without a trace; run with "
            "record_trace=True")
    arrival_model = arrival_model or PeriodicArrival()
    horizon = result.horizon
    violations: list[Violation] = []
    jobs = _reconstruct_jobs(taskset, execution_model, arrival_model,
                             horizon)
    releases = sorted((w.release, name) for name, w in jobs.items())

    # -- coverage ------------------------------------------------------
    segments = result.trace.segments
    if not segments:
        violations.append(Violation(
            kind="coverage", time=0.0,
            message=f"empty trace over horizon {horizon:g}"))
    else:
        if segments[0].start > time_eps:
            violations.append(Violation(
                kind="coverage", time=0.0,
                message=f"first segment starts at {segments[0].start:g}, "
                        f"not 0"))
        for prev, cur in zip(segments, segments[1:]):
            if cur.start > prev.end + time_eps:
                violations.append(Violation(
                    kind="coverage", time=prev.end,
                    message=f"gap [{prev.end:g}, {cur.start:g}] in "
                            f"coverage"))
            elif cur.start < prev.end - time_eps:
                violations.append(Violation(
                    kind="coverage", time=cur.start,
                    message=f"segment [{cur.start:g}, {cur.end:g}] "
                            f"overlaps previous end {prev.end:g}"))
        if abs(segments[-1].end - horizon) > time_eps:
            violations.append(Violation(
                kind="coverage", time=segments[-1].end,
                message=f"last segment ends at {segments[-1].end:g}, "
                        f"horizon is {horizon:g}"))

    # -- the walk: EDF order, work conservation, idle, speeds ----------
    active: dict[str, _JobWindow] = {}
    release_pos = 0

    def admit(until: float) -> None:
        nonlocal release_pos
        while (release_pos < len(releases)
               and releases[release_pos][0] <= until):
            _, name = releases[release_pos]
            active[name] = jobs[name]
            release_pos += 1

    for seg in segments:
        admit(seg.start + time_eps)
        if seg.kind == SegmentKind.RUN:
            name = seg.job or "?"
            window = jobs.get(name)
            if window is None:
                violations.append(Violation(
                    kind="work", time=seg.start, job=name,
                    message="trace runs a job the workload models "
                            "never release"))
                continue
            if not processor.scale.is_attainable(seg.speed, tol=1e-6):
                violations.append(Violation(
                    kind="speed", time=seg.start, job=name,
                    message=f"runs at unattainable speed "
                            f"{seg.speed:g}"))
            if seg.start < window.release - time_eps:
                violations.append(Violation(
                    kind="work", time=seg.start, job=name,
                    message=f"executes before its release "
                            f"{window.release:g}"))
            earliest = min(
                active.values(), default=None,
                key=lambda w: (w.deadline, w.release))
            if (earliest is not None
                    and window.deadline > earliest.deadline + time_eps):
                blocking = next(n for n, w in active.items()
                                if w is earliest)
                violations.append(Violation(
                    kind="edf-order", time=seg.start, job=name,
                    message=f"runs (deadline {window.deadline:g}) while "
                            f"{blocking} (deadline "
                            f"{earliest.deadline:g}) is pending"))
            # Releases strictly inside a run segment may only carry
            # later-or-equal deadlines — an earlier one had to preempt.
            while (release_pos < len(releases)
                   and releases[release_pos][0] < seg.end - time_eps):
                release, newcomer = releases[release_pos]
                active[newcomer] = jobs[newcomer]
                release_pos += 1
                if (jobs[newcomer].deadline
                        < window.deadline - time_eps):
                    violations.append(Violation(
                        kind="edf-order", time=release, job=name,
                        message=f"{newcomer} (deadline "
                                f"{jobs[newcomer].deadline:g}) released "
                                f"mid-segment without preempting "
                                f"(running deadline "
                                f"{window.deadline:g})"))
            window.executed += seg.speed * seg.duration
            tolerance = deadline_eps * max(1.0, window.demand)
            if window.executed > window.demand + tolerance:
                violations.append(Violation(
                    kind="work", time=seg.end, job=name,
                    message=f"retired {window.executed:g} work, more "
                            f"than its demand {window.demand:g}"))
            if (window.completion is None
                    and window.executed >= window.demand - tolerance):
                window.completion = seg.end
                active.pop(name, None)
        elif seg.kind in (SegmentKind.IDLE, SegmentKind.SLEEP):
            # Idling (or *entering* sleep) with released work pending
            # breaks work conservation of the dispatcher.  A sleep
            # episode may legitimately span releases (procrastination),
            # so only the episode start is checked.
            pending = [n for n, w in active.items()
                       if w.release < seg.start - time_eps]
            if pending:
                violations.append(Violation(
                    kind="idle", time=seg.start, job=pending[0],
                    message=f"{seg.kind.value} segment starts while "
                            f"{', '.join(sorted(pending))} pending"))

    # -- deadlines: trace-observed vs result-recorded ------------------
    reported = {miss.job for miss in result.deadline_misses}
    for name, window in jobs.items():
        if window.completion is not None:
            missed = window.completion > window.deadline + deadline_eps
        else:
            missed = window.deadline <= horizon + TIME_EPS
        if missed and name not in reported:
            when = (window.completion if window.completion is not None
                    else horizon)
            violations.append(Violation(
                kind="deadline", time=when, job=name,
                message=f"missed deadline {window.deadline:g} "
                        f"(completion "
                        f"{'never' if window.completion is None else format(window.completion, 'g')}) "
                        f"but the result reports no miss"))
    for name in sorted(reported):
        window = jobs.get(name)
        if window is None:
            continue
        observed_miss = (window.completion is None
                         or window.completion
                         > window.deadline - deadline_eps)
        if not observed_miss:
            violations.append(Violation(
                kind="deadline", time=window.completion, job=name,
                message=f"result reports a miss but the trace "
                        f"completes it at {window.completion:g}, before "
                        f"deadline {window.deadline:g}"))

    # -- energy ledger conservation ------------------------------------
    ledger = EnergyLedger.from_result(result)
    for problem in ledger.check(result):
        violations.append(Violation(
            kind="energy", time=horizon, message=problem))

    # -- governor floor ------------------------------------------------
    violations.extend(_audit_governor_floor(result, time_eps))

    violations.sort(key=lambda v: (v.time, v.kind))
    return violations


def _audit_governor_floor(result: SimulationResult,
                          time_eps: float) -> list[Violation]:
    """Every governor clamp note must be honoured by its dispatch."""
    violations: list[Violation] = []
    segments = result.trace.segments
    for note in result.notes_of_kind("governor"):
        job, _, rest = note.detail.partition(":")
        match = re.search(r"->\s*([0-9.]+)", rest)
        if not job or match is None:
            continue
        floor = float(match.group(1))
        # The clamped dispatch runs right after the note (modulo a
        # timed switch).  If a release during the switch re-dispatched
        # another job, the floor no longer binds — skip.
        for seg in segments:
            if seg.end <= note.time + time_eps:
                continue
            if seg.kind == SegmentKind.SWITCH:
                continue
            if seg.kind == SegmentKind.RUN and seg.job == job:
                if seg.speed < floor - _FLOOR_TOL:
                    violations.append(Violation(
                        kind="governor-floor", time=seg.start, job=job,
                        message=f"governor raised the floor to "
                                f"{floor:g} but the dispatch ran at "
                                f"{seg.speed:g}"))
            break
    return violations


def run_and_audit(simulator) -> tuple[SimulationResult, list[Violation]]:
    """Run a :class:`~repro.sim.engine.Simulator` and audit its trace.

    Uses the simulator's *own* (possibly fault-wrapped) workload
    models, so audited demands and arrivals are exactly what the
    engine sampled.  The simulator must have been built with
    ``record_trace=True``.
    """
    result = simulator.run()
    violations = audit_trace(
        result, simulator.taskset, simulator.processor,
        simulator.execution_model, simulator.arrival_model)
    return result, violations
