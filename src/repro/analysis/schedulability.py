"""Offline schedulability tests for periodic task sets.

These back the feasibility gates of the simulator and are also exposed
as a user-facing API: a DVS policy only makes sense on a task set that
is schedulable at maximum speed in the first place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.demand import dbf
from repro.errors import ConfigurationError
from repro.tasks.taskset import TaskSet
from repro.types import Time


def edf_utilization_test(taskset: TaskSet) -> bool:
    """Exact EDF test for implicit deadlines: ``U <= 1``.

    Raises :class:`ConfigurationError` when applied to a constrained-
    deadline set, for which utilization alone is not sufficient.
    """
    if not taskset.implicit_deadlines:
        raise ConfigurationError(
            "utilization test is only exact for implicit deadlines; use "
            "processor_demand_test")
    return taskset.utilization <= 1.0 + 1e-9


def edf_density_test(taskset: TaskSet) -> bool:
    """Sufficient (not necessary) EDF test: total density <= 1."""
    return taskset.density <= 1.0 + 1e-9


def processor_demand_test(taskset: TaskSet, *,
                          max_points: int = 1_000_000) -> bool:
    """Exact EDF test for constrained deadlines (synchronous release).

    Checks ``dbf(L) <= L`` at every absolute deadline up to the
    Baruah/Mok/Rosier bound ``min(hyperperiod, busy-period style bound)``.
    ``max_points`` guards against pathological period structures.
    """
    u = taskset.utilization
    if u > 1.0 + 1e-9:
        return False
    if taskset.implicit_deadlines:
        return True
    # L* bound: max(D_i, (U / (1-U)) * max(T_i - D_i)) or hyperperiod.
    if u < 1.0 - 1e-9:
        la = max((t.period - t.deadline) for t in taskset) * u / (1.0 - u)
        bound = max(la, max(t.deadline for t in taskset))
    else:
        bound = math.inf
    try:
        bound = min(bound, taskset.hyperperiod())
    except ConfigurationError:
        if math.isinf(bound):
            raise
    points: set[Time] = set()
    for task in taskset:
        deadline = task.deadline
        count = 0
        while deadline <= bound + 1e-9:
            points.add(deadline)
            deadline += task.period
            count += 1
            if len(points) > max_points:
                raise ConfigurationError(
                    f"processor demand test exceeds {max_points} check points")
    for point in sorted(points):
        if dbf(taskset, point) > point + 1e-9:
            return False
    return True


@dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of a fixed-priority response-time analysis."""

    schedulable: bool
    response_times: dict[str, float]


def rm_response_time_analysis(taskset: TaskSet,
                              max_iterations: int = 10_000) -> ResponseTimeResult:
    """Classic response-time analysis under rate-monotonic priorities.

    Included as a substrate baseline: the RM scheduler in
    :mod:`repro.sim.scheduler` is validated against it.  Priorities are
    by ascending period (ties by declaration order).
    """
    ordered = sorted(taskset, key=lambda t: (t.period, taskset.tasks.index(t)))
    response: dict[str, float] = {}
    schedulable = True
    for i, task in enumerate(ordered):
        higher = ordered[:i]
        r = task.wcet
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(r / h.period) * h.wcet for h in higher)
            r_next = task.wcet + interference
            if abs(r_next - r) <= 1e-12:
                break
            r = r_next
            if r > task.deadline + 1e-9:
                break
        response[task.name] = r
        if r > task.deadline + 1e-9:
            schedulable = False
    return ResponseTimeResult(schedulable=schedulable, response_times=response)


def minimum_constant_speed(taskset: TaskSet) -> float:
    """Lowest constant speed at which EDF meets all deadlines.

    For implicit deadlines this is exactly the utilization; for
    constrained deadlines a binary search over the processor-demand
    test is performed.
    """
    if taskset.implicit_deadlines:
        return min(1.0, taskset.utilization)
    low, high = taskset.utilization, 1.0
    if low >= 1.0:
        return 1.0

    def feasible(speed: float) -> bool:
        if any(t.wcet / speed > t.deadline for t in taskset):
            return False
        scaled = TaskSet([t.scaled(1.0 / speed) for t in taskset])
        return processor_demand_test(scaled)

    for _ in range(64):
        mid = 0.5 * (low + high)
        if feasible(mid):
            high = mid
        else:
            low = mid
        if high - low < 1e-9:
            break
    return high
