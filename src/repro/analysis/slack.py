"""Online slack-time analysis for EDF — the paper's core computation.

At a scheduling point ``t`` the earliest-deadline active job ``J``
(deadline ``d_J``) may be granted at most

``slack(t) = max(0, min over deadlines d_k >= d_J of (d_k - t - h(t, d_k)))``

extra wall time, where ``h(t, d_k)`` is the *time demand* in
``[t, d_k]``: the wall time that active jobs with deadline at or before
``d_k`` plus future job releases with deadlines at or before ``d_k``
still need under the reference execution speed.  Granting ``J`` up to
``slack`` extra time delays every later deadline by at most ``slack``,
which by construction still fits — so re-running the analysis at every
scheduling point keeps all deadlines (DESIGN.md §4.3).

The reference speed matters enormously for energy:

* **baseline_speed = 1** (the greedy variant): demand is measured
  against full-speed execution, so the analysis finds *all* the slack
  in the system and hands it to the current job.  Safe, but convex
  power punishes the resulting slow-then-fast speed profile.
* **baseline_speed = S** (the paper's formulation, with ``S`` the
  statically scaled EDF speed, i.e. the utilization for implicit
  deadlines): demand is measured against the canonical static-speed
  schedule — budgets are ``wcet / S`` wall time.  The static schedule
  is tight (scaled utilization 1), so the only slack the analysis finds
  is genuine *earliness* from jobs that finished under budget, and
  speeds stay near ``S`` with dips when slack appears.

Callers pass states already expressed in the reference time base (see
:func:`SystemState.scaled`); the analysis itself is baseline-agnostic.

Two evaluators:

* :func:`exact_slack` — true demand over every deadline in the capped
  analysis window via one sorted event walk, with a provably safe
  linear tail guard beyond the cap.  Backs the ``lpSTA`` policy.
* :func:`heuristic_slack` — O(n) per call: only active-job deadlines
  and next release points, with the closed-form linear demand bound.
  Never exceeds the exact slack (safe).  Backs ``lpSEH``.

Safety of the candidate sets (sketch): with the linear demand bound,
``g(x) = x - t - h_bar(t, x)`` is piecewise linear with slope
``1 - sum(started task utilizations) >= 1 - U >= 0`` and downward jumps
only where an active deadline (budget step) or a task's release point
(constrained-deadline correction step) enters.  A non-negative-slope
piecewise-linear function attains its minimum immediately after a
downward jump, so evaluating exactly there bounds the true minimum
from below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.demand import (
    future_demand,
    future_demand_linear_bound,
)
from repro.errors import ConfigurationError
from repro.profiling import PROFILER as _PROFILER
from repro.tasks.task import PeriodicTask
from repro.types import Time, Work

# The compiled slack kernels (repro.sim._fastcore, DESIGN.md §13) are
# resolved lazily: importing repro.sim.fastcore at module level would
# close an import cycle back through repro.sim.engine, which imports
# this module for ActiveJob/SystemState.
_fastcore = None


def _slack_kernels():
    """The compiled kernel module, or ``None`` (absent or disabled)."""
    global _fastcore
    if _fastcore is None:
        from repro.sim import fastcore
        _fastcore = fastcore
    return _fastcore.slack_kernels()


# Per-tasks-tuple flattened columns, keyed by tuple identity.  Policies
# reuse one (possibly scaled) task tuple across every scheduling point
# of a run, so the flatten cost is paid once per run, not per call.
# The tuple itself is pinned in the value so an id() can never be
# recycled while its entry is alive.
_FLAT_CACHE: dict[int, tuple] = {}


def _flat_tasks(tasks: tuple[PeriodicTask, ...]) -> tuple:
    """``(names, rel_deadline, period, wcet, utilization, correction)``
    columns for *tasks*, in task order."""
    entry = _FLAT_CACHE.get(id(tasks))
    if entry is not None and entry[0] is tasks:
        return entry[1]
    columns = (
        tuple(task.name for task in tasks),
        tuple(task.deadline for task in tasks),
        tuple(task.period for task in tasks),
        tuple(task.wcet for task in tasks),
        tuple(task.utilization for task in tasks),
        tuple(task.wcet * (task.period - task.deadline) / task.period
              if task.deadline < task.period else 0.0
              for task in tasks),
    )
    if len(_FLAT_CACHE) > 128:
        _FLAT_CACHE.clear()
    _FLAT_CACHE[id(tasks)] = (tasks, columns)
    return columns


@dataclass(frozen=True, slots=True)
class ActiveJob:
    """The slice of job state the analysis needs: (deadline, budget).

    ``remaining_wcet`` is expressed in the caller's reference time base
    (wall time the budget needs at the baseline speed).
    """

    deadline: Time
    remaining_wcet: Work

    def __post_init__(self) -> None:
        if self.remaining_wcet < 0:
            raise ConfigurationError(
                f"remaining_wcet must be >= 0, got {self.remaining_wcet}")


@dataclass(frozen=True, slots=True)
class SystemState:
    """A snapshot of the schedule at one scheduling point.

    Attributes
    ----------
    time:
        Current time ``t``.
    active:
        All incomplete released jobs, *including* the one being
        dispatched (which must have the earliest deadline; ties
        allowed).  Budgets in the reference time base.
    tasks:
        The full task set, with WCETs in the reference time base
        (future arrivals come from here).
    next_release:
        For each task name, the first strictly-future release time.
    """

    time: Time
    active: tuple[ActiveJob, ...]
    tasks: tuple[PeriodicTask, ...]
    next_release: Mapping[str, Time]

    @classmethod
    def build(cls, time: Time, active: Sequence[ActiveJob],
              tasks: Sequence[PeriodicTask],
              next_release: Mapping[str, Time]) -> "SystemState":
        for task in tasks:
            if task.name not in next_release:
                raise ConfigurationError(
                    f"next_release missing task {task.name!r}")
            if next_release[task.name] < time - 1e-9:
                raise ConfigurationError(
                    f"next_release[{task.name!r}]={next_release[task.name]} "
                    f"is in the past (t={time})")
        return cls(time=time, active=tuple(active), tasks=tuple(tasks),
                   next_release=dict(next_release))

    @property
    def earliest_deadline(self) -> Time:
        if not self.active:
            raise ConfigurationError("no active jobs in state")
        return min(job.deadline for job in self.active)

    @property
    def pending_work(self) -> Work:
        return sum(job.remaining_wcet for job in self.active)

    def utilization(self) -> float:
        return sum(task.utilization for task in self.tasks)


def scale_tasks(tasks: Sequence[PeriodicTask],
                baseline_speed: float) -> tuple[PeriodicTask, ...]:
    """Re-express task WCETs as wall time at *baseline_speed*.

    Raises :class:`ConfigurationError` when a scaled WCET no longer fits
    its deadline — i.e. the baseline speed is below the task set's
    minimum feasible constant speed.
    """
    if not (0.0 < baseline_speed <= 1.0):
        raise ConfigurationError(
            f"baseline_speed must be in (0, 1], got {baseline_speed}")
    return tuple(task.scaled(1.0 / baseline_speed) for task in tasks)


def demand(state: SystemState, d: Time) -> Work:
    """Exact time demand ``h(t, d)`` in the state's reference base."""
    total = sum(job.remaining_wcet for job in state.active
                if job.deadline <= d + 1e-12)
    for task in state.tasks:
        total += future_demand(task, state.next_release[task.name], d)
    return total


def demand_linear_bound(state: SystemState, d: Time) -> Work:
    """Over-approximate demand ``h_bar(t, d)`` using the linear bound."""
    total = sum(job.remaining_wcet for job in state.active
                if job.deadline <= d + 1e-12)
    for task in state.tasks:
        total += future_demand_linear_bound(
            task, state.next_release[task.name], d)
    return total


def _tail_guard(state: SystemState, window_end: Time) -> float:
    """Safe lower bound on ``g(x)`` for every ``x >= window_end``.

    Uses the continuous linear demand bound with every active budget
    and every constrained-deadline correction charged unconditionally;
    the resulting function has slope ``1 - U >= 0`` (for feasible
    reference bases) so its minimum over the tail is at *window_end*.
    """
    total = sum(job.remaining_wcet for job in state.active)
    for task in state.tasks:
        release = state.next_release[task.name]
        total += task.utilization * max(0.0, window_end - release)
        if task.deadline < task.period:
            total += task.wcet * (task.period - task.deadline) / task.period
    return window_end - state.time - total


def exact_slack(state: SystemState, *,
                window_cap_periods: float | None = None,
                earliest_candidate: Time | None = None) -> Time:
    """Exact-within-window slack available at *state*.

    Walks every deadline in ``(t, window_end]`` once, accumulating
    demand incrementally — active budgets step in at their deadlines,
    each future job contributes its WCET at its own deadline — and
    takes ``min(d_k - t - h)`` over candidates at or after the earliest
    active deadline.  The linear tail guard covers deadlines beyond the
    window, so the result is always a safe lower bound on the true
    infinite-horizon slack.

    The default window ends at the latest *active* deadline: beyond it
    the linear-bound function ``g_bar`` has no further downward jumps
    from active budgets and slope ``1 - U >= 0``, so its value at the
    window edge bounds the whole tail — which makes the default both
    cheap (O(jobs within one max-period)) and near-exact (the only
    approximation left is linear-vs-floor future demand at the edge).
    Pass ``window_cap_periods`` to widen the exact walk to
    ``t + cap * max_period`` for even tighter tails.

    ``earliest_candidate`` selects which deadlines constrain the
    grantee.  The default (the earliest active deadline) is correct for
    a *dispatch*: the running job has the earliest deadline and EDF
    still preempts it for any earlier-deadline arrival, so those
    arrivals are not delayed.  A *processor vacation* (sleeping through
    arrivals — see :mod:`repro.policies.procrastination`) delays
    everything, so it must pass ``earliest_candidate=state.time`` to
    constrain against every future deadline.
    """
    prof = _PROFILER
    if not prof.enabled:
        return _exact_slack(state, window_cap_periods, earliest_candidate)
    prof.push("slack.exact")
    try:
        return _exact_slack(state, window_cap_periods, earliest_candidate)
    finally:
        prof.pop()


def _exact_slack(state: SystemState,
                 window_cap_periods: float | None,
                 earliest_candidate: Time | None) -> Time:
    if not state.active:
        raise ConfigurationError("slack analysis requires an active job")
    t = state.time
    d_first = (earliest_candidate if earliest_candidate is not None
               else state.earliest_deadline)
    latest_active = max(job.deadline for job in state.active)
    window_end = latest_active
    if window_cap_periods is not None:
        max_period = max(task.period for task in state.tasks)
        window_end = max(latest_active,
                         t + window_cap_periods * max_period)

    kernels = _slack_kernels()
    if kernels is not None:
        names, rdl, per, wcet, util, corr = _flat_tasks(state.tasks)
        next_release = state.next_release
        return kernels.exact_slack_walk(
            t, d_first, window_end,
            tuple(job.deadline for job in state.active),
            tuple(job.remaining_wcet for job in state.active),
            tuple(next_release[name] for name in names),
            rdl, per, wcet, util, corr)

    # Demand events: (deadline, work step).  Every future job of a task
    # contributes exactly one event at its own absolute deadline.
    events: list[tuple[Time, Work]] = [
        (job.deadline, job.remaining_wcet) for job in state.active]
    next_release = state.next_release
    fence = window_end + 1e-12
    append = events.append
    for task in state.tasks:
        deadline = next_release[task.name] + task.deadline
        period = task.period
        wcet = task.wcet
        while deadline <= fence:
            append((deadline, wcet))
            deadline += period
    events.sort(key=lambda e: e[0])

    best = math.inf
    h = 0.0
    i = 0
    n = len(events)
    while i < n:
        d_k = events[i][0]
        # Fold in every event at this deadline before evaluating.
        while i < n and events[i][0] <= d_k + 1e-12:
            h += events[i][1]
            i += 1
        if d_k >= d_first - 1e-12:
            g = d_k - t - h
            if g < best:
                best = g
    best = min(best, _tail_guard(state, window_end))
    return max(0.0, best)


def heuristic_slack(state: SystemState) -> Time:
    """O(n) conservative slack estimate (the lpSEH computation).

    Candidate points: the active jobs' deadlines and each task's next
    release time (where the constrained-deadline correction step
    lands), restricted to ``>= d_J``; demand uses the linear
    over-approximation throughout.  Always ``<= exact_slack(state)``.
    """
    prof = _PROFILER
    if not prof.enabled:
        return _heuristic_slack(state)
    prof.push("slack.heuristic")
    try:
        return _heuristic_slack(state)
    finally:
        prof.pop()


def _heuristic_slack(state: SystemState) -> Time:
    if not state.active:
        raise ConfigurationError("slack analysis requires an active job")
    t = state.time
    d_first = state.earliest_deadline
    kernels = _slack_kernels()
    if kernels is not None:
        names, _rdl, _per, _wcet, util, corr = _flat_tasks(state.tasks)
        next_release = state.next_release
        return kernels.heuristic_slack_walk(
            t, d_first,
            tuple(job.deadline for job in state.active),
            tuple(job.remaining_wcet for job in state.active),
            tuple(next_release[name] for name in names),
            util, corr)
    # Pre-extract the per-job and per-task terms once: the candidate
    # loop below re-evaluates the linear demand bound at every
    # candidate, and doing so through demand_linear_bound() would
    # redo the attribute walks and the constrained-deadline correction
    # per (candidate, task) pair.  The accumulation order is kept
    # identical (active jobs in state order, then tasks in task
    # order), so the result is bit-for-bit the same.
    actives = [(job.deadline, job.remaining_wcet) for job in state.active]
    next_release = state.next_release
    task_terms = []
    candidates = {deadline for deadline, _ in actives}
    candidates.add(d_first)
    for task in state.tasks:
        release = next_release[task.name]
        correction = (task.wcet * (task.period - task.deadline) / task.period
                      if task.deadline < task.period else 0.0)
        task_terms.append((release, task.utilization, correction))
        if release >= d_first:
            candidates.add(release)
    best = math.inf
    for d_k in candidates:
        if d_k < d_first - 1e-12:
            continue
        fence = d_k + 1e-12
        total = 0.0
        for deadline, remaining in actives:
            if deadline <= fence:
                total += remaining
        for release, utilization, correction in task_terms:
            headroom = d_k - release
            if headroom > 0:
                total += utilization * headroom + correction
        g = d_k - t - total
        if g < best:
            best = g
    return max(0.0, best)


def stretch_speed(remaining_wcet: Work, slack: Time,
                  min_speed: float = 0.0) -> float:
    """The minimum constant speed that fits *remaining_wcet* (max-speed
    units of work) into ``remaining_wcet + slack`` wall time.

    Degenerate inputs (zero budget) return *min_speed* — there is
    nothing left to run so any attainable speed is fine.
    """
    if slack < 0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    if remaining_wcet <= 0:
        return max(min_speed, 0.0)
    return max(min_speed, remaining_wcet / (remaining_wcet + slack))


def allotted_speed(remaining_work: Work, baseline_speed: float,
                   slack: Time, min_speed: float = 0.0) -> float:
    """Speed that spreads *remaining_work* over its scaled budget + slack.

    The paper's dispatch rule under a static baseline ``S``: the job's
    canonical allotment is ``remaining_work / S`` wall time; with
    *slack* extra time granted the required speed is

    ``remaining_work / (remaining_work / S + slack)``

    which is at most ``S`` and degrades gracefully to ``S`` when no
    slack exists.
    """
    if not (0.0 < baseline_speed <= 1.0):
        raise ConfigurationError(
            f"baseline_speed must be in (0, 1], got {baseline_speed}")
    if slack < 0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    if remaining_work <= 0:
        return max(min_speed, 0.0)
    allotment = remaining_work / baseline_speed + slack
    return max(min_speed, remaining_work / allotment)
