"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the simulator with one handler while
still being able to discriminate the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class InfeasibleTaskSetError(ConfigurationError):
    """The task set cannot be scheduled even at maximum processor speed.

    Raised eagerly (before simulation starts) whenever a hard real-time
    guarantee would be impossible, e.g. total utilization above 1 under
    EDF with implicit deadlines.
    """


class DeadlineMissError(ReproError):
    """A job failed to complete by its absolute deadline.

    In a correct DVS policy this never happens; the simulator raises it
    (rather than silently recording the miss) unless the run was
    explicitly configured with ``allow_deadline_misses=True``.
    """

    def __init__(self, message: str, *, task: str | None = None,
                 job_index: int | None = None,
                 deadline: float | None = None,
                 completion: float | None = None) -> None:
        super().__init__(message)
        self.task = task
        self.job_index = job_index
        self.deadline = deadline
        self.completion = completion


class SimulationError(ReproError):
    """The simulation engine reached an internally inconsistent state."""


class TraceValidationError(ReproError):
    """A recorded trace violates a structural or semantic invariant."""


class PolicyError(ReproError):
    """A DVS policy produced an invalid decision (e.g. speed out of range)."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""


class UnitTimeoutError(ExperimentError):
    """One (cell, seed) unit exceeded its wall-clock deadline.

    Raised by the per-unit deadline installed with
    ``sweep(unit_timeout=...)``: the unit's simulation is interrupted
    (in the worker, via SIGALRM) the moment its budget expires, so a
    hung cell never stalls a sweep indefinitely.  Classified as
    *transient* by the retry logic — a timeout may be load-induced —
    so the unit is retried up to ``max_retries`` before it fails (or
    is quarantined).
    """

    def __init__(self, message: str, *, x: float | None = None,
                 workload_seed: int | None = None,
                 timeout: float | None = None) -> None:
        super().__init__(message)
        self.x = x
        self.workload_seed = workload_seed
        self.timeout = timeout


class WorkerCrashError(ExperimentError):
    """A worker process died (OOM kill, segfault) while running a unit.

    Synthesised by the parallel executor's supervision loop when a
    unit, dispatched *solo* after repeated pool breakage, takes its
    worker down with it — the only dispatch shape under which the
    crash is unambiguously attributable to one unit.
    """

    def __init__(self, message: str, *, x: float | None = None,
                 workload_seed: int | None = None,
                 crashes: int = 0) -> None:
        super().__init__(message)
        self.x = x
        self.workload_seed = workload_seed
        self.crashes = crashes


class SweepInterrupted(ExperimentError):
    """A sweep was stopped by SIGINT/SIGTERM after a graceful drain.

    By the time this propagates, in-flight work has been folded, every
    completed cell has been checkpointed and the run manifest flushed
    — so the sweep is resumable with ``resume=True`` (``--resume``)
    against the same checkpoint directory.
    """

    def __init__(self, message: str, *, signal_number: int | None = None,
                 completed_cells: int = 0,
                 checkpoint_dir: str | None = None) -> None:
        super().__init__(message)
        self.signal_number = signal_number
        self.completed_cells = completed_cells
        self.checkpoint_dir = checkpoint_dir


class SuiteExecutionError(ExperimentError):
    """One simulation inside an experiment suite failed.

    Carries the workload context (policy name, task-set seed, horizon)
    so a failing cell deep inside a long sweep can be reproduced with a
    single ad-hoc run instead of re-running the whole experiment.  The
    original failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, policy: str | None = None,
                 workload_seed: int | None = None,
                 horizon: float | None = None) -> None:
        super().__init__(message)
        self.policy = policy
        self.workload_seed = workload_seed
        self.horizon = horizon
