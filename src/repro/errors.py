"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of the simulator with one handler while
still being able to discriminate the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class InfeasibleTaskSetError(ConfigurationError):
    """The task set cannot be scheduled even at maximum processor speed.

    Raised eagerly (before simulation starts) whenever a hard real-time
    guarantee would be impossible, e.g. total utilization above 1 under
    EDF with implicit deadlines.
    """


class DeadlineMissError(ReproError):
    """A job failed to complete by its absolute deadline.

    In a correct DVS policy this never happens; the simulator raises it
    (rather than silently recording the miss) unless the run was
    explicitly configured with ``allow_deadline_misses=True``.
    """

    def __init__(self, message: str, *, task: str | None = None,
                 job_index: int | None = None,
                 deadline: float | None = None,
                 completion: float | None = None) -> None:
        super().__init__(message)
        self.task = task
        self.job_index = job_index
        self.deadline = deadline
        self.completion = completion


class SimulationError(ReproError):
    """The simulation engine reached an internally inconsistent state."""


class TraceValidationError(ReproError):
    """A recorded trace violates a structural or semantic invariant."""


class PolicyError(ReproError):
    """A DVS policy produced an invalid decision (e.g. speed out of range)."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""


class SuiteExecutionError(ExperimentError):
    """One simulation inside an experiment suite failed.

    Carries the workload context (policy name, task-set seed, horizon)
    so a failing cell deep inside a long sweep can be reproduced with a
    single ad-hoc run instead of re-running the whole experiment.  The
    original failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, policy: str | None = None,
                 workload_seed: int | None = None,
                 horizon: float | None = None) -> None:
        super().__init__(message)
        self.policy = policy
        self.workload_seed = workload_seed
        self.horizon = horizon
