"""The processor abstraction: speed scale + power model + overheads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.power import PowerModel, PolynomialPowerModel
from repro.cpu.speed import SpeedScale, ContinuousScale
from repro.cpu.transition import TransitionModel, NoOverhead
from repro.errors import ConfigurationError
from repro.types import Energy, Speed, Time


@dataclass
class Processor:
    """A DVS-capable processor.

    Composes the attainable speed set, the active power model, the
    transition-overhead model and an idle power.  ``idle_power`` models
    whatever the platform draws when no job is ready (clock-gated core,
    memory refresh, peripherals); the early DVS papers usually set it to
    zero, so that is the default.
    """

    scale: SpeedScale = field(default_factory=ContinuousScale)
    power_model: PowerModel = field(default_factory=PolynomialPowerModel)
    transition_model: TransitionModel = field(default_factory=NoOverhead)
    idle_power: float = 0.0
    sleep_power: float = 0.0
    wakeup_time: Time = 0.0
    wakeup_energy: Energy = 0.0
    name: str = "processor"

    def __post_init__(self) -> None:
        if self.idle_power < 0:
            raise ConfigurationError(
                f"idle_power must be >= 0, got {self.idle_power}")
        if self.sleep_power < 0:
            raise ConfigurationError(
                f"sleep_power must be >= 0, got {self.sleep_power}")
        if self.sleep_power > self.idle_power + 1e-12:
            raise ConfigurationError(
                f"sleep_power {self.sleep_power} must not exceed "
                f"idle_power {self.idle_power} (sleep is the deeper state)")
        if self.wakeup_time < 0 or self.wakeup_energy < 0:
            raise ConfigurationError(
                f"wakeup costs must be >= 0, got time={self.wakeup_time} "
                f"energy={self.wakeup_energy}")

    @property
    def min_speed(self) -> Speed:
        """Lowest attainable speed."""
        return self.scale.min_speed

    def quantize(self, speed: Speed) -> Speed:
        """Round a desired speed up to the nearest attainable level."""
        return self.scale.quantize(speed)

    def power(self, speed: Speed) -> float:
        """Active power at an attainable *speed*."""
        return self.power_model.power(speed)

    def voltage(self, speed: Speed) -> float:
        """Supply voltage at *speed* (per the power model)."""
        return self.power_model.voltage(speed)

    def active_energy(self, speed: Speed, duration: Time) -> Energy:
        """Energy for executing at *speed* for *duration*."""
        return self.power_model.energy(speed, duration)

    def idle_energy(self, duration: Time) -> Energy:
        """Energy for idling for *duration*."""
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        return self.idle_power * duration

    def sleep_energy(self, duration: Time) -> Energy:
        """Energy for one sleep episode of *duration* (incl. wake-up).

        The wake-up transition energy is charged once per episode; the
        wake-up *time* must be budgeted by the sleep planner (the
        processor cannot execute during it).
        """
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        return self.sleep_power * duration + self.wakeup_energy

    def sleep_breakeven_time(self) -> Time:
        """Shortest idle interval for which sleeping beats idling.

        Below this, the wake-up energy outweighs the idle/sleep power
        gap; infinite when sleeping never pays (no gap).
        """
        gap = self.idle_power - self.sleep_power
        if gap <= 0:
            return float("inf")
        return self.wakeup_energy / gap

    def transition(self, from_speed: Speed, to_speed: Speed) -> tuple[Time, Energy]:
        """(time, energy) cost of switching between two speeds.

        Switching to the same speed is free by definition.
        """
        if abs(from_speed - to_speed) <= 1e-12:
            return 0.0, 0.0
        v_from = self.voltage(from_speed)
        v_to = self.voltage(to_speed)
        dt = self.transition_model.time_overhead(
            from_speed, to_speed, v_from, v_to)
        de = self.transition_model.energy_overhead(
            from_speed, to_speed, v_from, v_to)
        return dt, de

    def describe(self) -> str:
        """One-line summary used in experiment reports."""
        return (f"{self.name}: scale={self.scale.describe()}, "
                f"power={self.power_model.describe()}, "
                f"transition={self.transition_model.describe()}, "
                f"idle={self.idle_power:g}")
