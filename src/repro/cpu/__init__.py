"""Processor models: speed scales, power, transition overheads, profiles."""

from repro.cpu.speed import (
    SpeedScale,
    ContinuousScale,
    DiscreteScale,
    uniform_levels,
)
from repro.cpu.power import (
    PowerModel,
    PolynomialPowerModel,
    CmosPowerModel,
    TablePowerModel,
    OperatingPoint,
)
from repro.cpu.transition import (
    TransitionModel,
    NoOverhead,
    ConstantOverhead,
    VoltageSwitchOverhead,
)
from repro.cpu.processor import Processor
from repro.cpu.profiles import (
    ideal_processor,
    generic4_processor,
    xscale_processor,
    sa1100_processor,
    crusoe_processor,
    uniform_discrete_processor,
    load_profile,
    PROCESSOR_PROFILES,
)

__all__ = [
    "SpeedScale",
    "ContinuousScale",
    "DiscreteScale",
    "uniform_levels",
    "PowerModel",
    "PolynomialPowerModel",
    "CmosPowerModel",
    "TablePowerModel",
    "OperatingPoint",
    "TransitionModel",
    "NoOverhead",
    "ConstantOverhead",
    "VoltageSwitchOverhead",
    "Processor",
    "ideal_processor",
    "generic4_processor",
    "xscale_processor",
    "sa1100_processor",
    "crusoe_processor",
    "uniform_discrete_processor",
    "load_profile",
    "PROCESSOR_PROFILES",
]
