"""Voltage/frequency transition-overhead models.

Changing the operating point of a real DVS processor costs both *time*
(the PLL relocks and the voltage rail slews; no instructions retire in
the synchronous-switching model) and *energy* (charging the rail
capacitance).  Most early DVS-EDF papers assume both are zero and the
follow-up work studies the sensitivity — this module provides the knob.

The standard energy model (Burd's thesis) charges

``E = eta * C_dd * |V1^2 - V2^2|``

per switch, where ``C_dd`` is the voltage-rail decoupling capacitance
and ``eta`` an efficiency factor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.types import Energy, Speed, Time


class TransitionModel(ABC):
    """Cost of switching the processor between two speeds."""

    @abstractmethod
    def time_overhead(self, from_speed: Speed, to_speed: Speed,
                      from_voltage: float, to_voltage: float) -> Time:
        """Wall time during which no work executes."""

    @abstractmethod
    def energy_overhead(self, from_speed: Speed, to_speed: Speed,
                        from_voltage: float, to_voltage: float) -> Energy:
        """Extra energy charged per switch."""

    @property
    def is_free(self) -> bool:
        """``True`` when every switch costs exactly nothing."""
        return False

    def describe(self) -> str:
        return type(self).__name__


class NoOverhead(TransitionModel):
    """The idealised zero-cost switch of the base papers."""

    def time_overhead(self, from_speed: Speed, to_speed: Speed,
                      from_voltage: float, to_voltage: float) -> Time:
        return 0.0

    def energy_overhead(self, from_speed: Speed, to_speed: Speed,
                        from_voltage: float, to_voltage: float) -> Energy:
        return 0.0

    @property
    def is_free(self) -> bool:
        return True

    def describe(self) -> str:
        return "no-overhead"


class ConstantOverhead(TransitionModel):
    """Fixed time and energy cost per switch, independent of levels."""

    def __init__(self, switch_time: Time = 0.0,
                 switch_energy: Energy = 0.0) -> None:
        if switch_time < 0 or switch_energy < 0:
            raise ConfigurationError(
                f"switch overheads must be >= 0, got time={switch_time} "
                f"energy={switch_energy}")
        self.switch_time = float(switch_time)
        self.switch_energy = float(switch_energy)

    def time_overhead(self, from_speed: Speed, to_speed: Speed,
                      from_voltage: float, to_voltage: float) -> Time:
        return self.switch_time

    def energy_overhead(self, from_speed: Speed, to_speed: Speed,
                        from_voltage: float, to_voltage: float) -> Energy:
        return self.switch_energy

    @property
    def is_free(self) -> bool:
        return self.switch_time == 0.0 and self.switch_energy == 0.0

    def describe(self) -> str:
        return (f"constant(dt={self.switch_time:g}, "
                f"dE={self.switch_energy:g})")


class VoltageSwitchOverhead(TransitionModel):
    """Burd-style rail-capacitance model with a fixed relock time.

    ``dt`` is constant per switch (the PLL relock / rail slew window);
    ``dE = eta * c_dd * |V1^2 - V2^2|`` scales with the voltage swing.
    """

    def __init__(self, switch_time: Time = 0.0, eta: float = 0.9,
                 c_dd: float = 5e-6) -> None:
        if switch_time < 0:
            raise ConfigurationError(
                f"switch_time must be >= 0, got {switch_time}")
        if eta <= 0 or c_dd <= 0:
            raise ConfigurationError(
                f"eta and c_dd must be > 0, got eta={eta} c_dd={c_dd}")
        self.switch_time = float(switch_time)
        self.eta = float(eta)
        self.c_dd = float(c_dd)

    def time_overhead(self, from_speed: Speed, to_speed: Speed,
                      from_voltage: float, to_voltage: float) -> Time:
        return self.switch_time

    def energy_overhead(self, from_speed: Speed, to_speed: Speed,
                        from_voltage: float, to_voltage: float) -> Energy:
        return self.eta * self.c_dd * abs(
            from_voltage * from_voltage - to_voltage * to_voltage)

    def describe(self) -> str:
        return (f"voltage-switch(dt={self.switch_time:g}, eta={self.eta:g}, "
                f"c_dd={self.c_dd:g})")
