"""Processor power models.

Dynamic CMOS power is ``P = C_eff * V^2 * f`` and the attainable clock
frequency scales (to first order) with the supply voltage, so power is
a convex, superlinear function of normalised speed.  Three
parameterisations cover the literature:

* :class:`PolynomialPowerModel` — ``P(s) = s**alpha`` with ``alpha≈3``,
  the analytic workhorse;
* :class:`CmosPowerModel` — an explicit frequency/voltage operating-point
  table evaluated through ``C_eff * V^2 * f`` (what the era's simulation
  sections tabulate);
* :class:`TablePowerModel` — direct measured (speed, power) points with
  interpolation.

All powers are in arbitrary-but-consistent units; experiments only ever
report energies normalised to a max-speed baseline.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import ConfigurationError
from repro.types import Energy, Speed


class PowerModel(ABC):
    """Maps a normalised speed to active power draw."""

    @abstractmethod
    def power(self, speed: Speed) -> float:
        """Active power at *speed* (speed in ``(0, 1]``)."""

    def energy(self, speed: Speed, duration: float) -> Energy:
        """Energy of running at *speed* for *duration* time units."""
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        return self.power(speed) * duration

    def voltage(self, speed: Speed) -> float:
        """Supply voltage at *speed*, when the model defines one.

        The default assumes voltage proportional to speed (normalised
        to 1.0 at full speed), which is what the polynomial model
        implies; table-driven models override this.
        """
        self._check_speed(speed)
        return speed

    @staticmethod
    def _check_speed(speed: Speed) -> None:
        if not (0.0 < speed <= 1.0 + 1e-9):
            raise ConfigurationError(
                f"speed must be in (0, 1], got {speed}")

    def critical_speed(self, low: Speed = 1e-3, samples: int = 2000) -> Speed:
        """The speed minimising energy *per unit of work*.

        With purely dynamic power the minimum is at the lowest speed
        (slower is always cheaper per cycle), but any static/leakage
        component creates a critical speed below which stretching work
        wastes energy.  Found numerically: ``argmin P(s) / s`` over a
        dense grid of ``(low, 1]`` — power models here are cheap and
        unimodal enough that a grid beats bespoke calculus per model.
        """
        best_speed = 1.0
        best_cost = self.power(1.0)
        for i in range(samples):
            s = low + (1.0 - low) * i / (samples - 1)
            cost = self.power(s) / s
            if cost < best_cost - 1e-15:
                best_cost = cost
                best_speed = s
        return best_speed

    def describe(self) -> str:
        return type(self).__name__


class PolynomialPowerModel(PowerModel):
    """``P(s) = dynamic * s**alpha + static`` (normalised units).

    ``alpha = 3`` is the classic ``f * V^2`` model with ``V`` tracking
    ``f``; ``static`` adds a speed-independent leakage floor that is
    paid whenever the processor is active.
    """

    def __init__(self, alpha: float = 3.0, dynamic: float = 1.0,
                 static: float = 0.0) -> None:
        if alpha < 1.0:
            raise ConfigurationError(
                f"alpha must be >= 1 for a physical DVS model, got {alpha}")
        if dynamic <= 0:
            raise ConfigurationError(f"dynamic must be > 0, got {dynamic}")
        if static < 0:
            raise ConfigurationError(f"static must be >= 0, got {static}")
        self.alpha = float(alpha)
        self.dynamic = float(dynamic)
        self.static = float(static)

    def power(self, speed: Speed) -> float:
        self._check_speed(speed)
        return self.dynamic * speed ** self.alpha + self.static

    def describe(self) -> str:
        return f"P(s) = {self.dynamic:g}*s^{self.alpha:g} + {self.static:g}"


class OperatingPoint:
    """One (frequency, voltage) pair of a DVS-capable processor."""

    __slots__ = ("frequency", "voltage")

    def __init__(self, frequency: float, voltage: float) -> None:
        if frequency <= 0 or voltage <= 0:
            raise ConfigurationError(
                f"frequency and voltage must be > 0, got "
                f"({frequency}, {voltage})")
        self.frequency = float(frequency)
        self.voltage = float(voltage)

    def __repr__(self) -> str:
        return f"OperatingPoint(f={self.frequency:g}, V={self.voltage:g})"


class CmosPowerModel(PowerModel):
    """Power from an explicit frequency/voltage table.

    ``P(s) = c_eff * V(s)^2 * f(s)`` where the operating point is the
    table entry whose normalised frequency matches *s* (voltage is
    linearly interpolated between entries for continuous scales).
    """

    def __init__(self, points: Sequence[OperatingPoint],
                 c_eff: float = 1.0) -> None:
        if not points:
            raise ConfigurationError("need at least one operating point")
        if c_eff <= 0:
            raise ConfigurationError(f"c_eff must be > 0, got {c_eff}")
        ordered = sorted(points, key=lambda p: p.frequency)
        for a, b in zip(ordered, ordered[1:]):
            if math.isclose(a.frequency, b.frequency):
                raise ConfigurationError(
                    f"duplicate frequency {a.frequency}")
            if b.voltage < a.voltage:
                raise ConfigurationError(
                    "voltage must be non-decreasing in frequency")
        self.points = tuple(ordered)
        self.c_eff = float(c_eff)
        self.f_max = ordered[-1].frequency
        self._speeds = tuple(p.frequency / self.f_max for p in ordered)

    @property
    def speeds(self) -> tuple[Speed, ...]:
        """Normalised speeds of the table's operating points."""
        return self._speeds

    def voltage(self, speed: Speed) -> float:
        """Supply voltage at *speed* (linear interpolation between rows)."""
        self._check_speed(speed)
        speeds = self._speeds
        if speed <= speeds[0]:
            return self.points[0].voltage
        if speed >= speeds[-1]:
            return self.points[-1].voltage
        hi = bisect.bisect_left(speeds, speed)
        lo = hi - 1
        span = speeds[hi] - speeds[lo]
        weight = (speed - speeds[lo]) / span
        return (self.points[lo].voltage
                + weight * (self.points[hi].voltage - self.points[lo].voltage))

    def power(self, speed: Speed) -> float:
        self._check_speed(speed)
        v = self.voltage(speed)
        return self.c_eff * v * v * speed * self.f_max

    def describe(self) -> str:
        rows = ", ".join(
            f"{s:.2f}@{p.voltage:g}V" for s, p in zip(self._speeds, self.points))
        return f"CMOS table [{rows}]"


class TablePowerModel(PowerModel):
    """Measured (speed, power) points with linear interpolation."""

    def __init__(self, points: Sequence[tuple[Speed, float]]) -> None:
        if not points:
            raise ConfigurationError("need at least one (speed, power) point")
        ordered = sorted((float(s), float(p)) for s, p in points)
        for (s1, p1), (s2, p2) in zip(ordered, ordered[1:]):
            if math.isclose(s1, s2):
                raise ConfigurationError(f"duplicate speed {s1}")
            if p2 < p1:
                raise ConfigurationError(
                    "power must be non-decreasing in speed")
        if ordered[0][0] <= 0:
            raise ConfigurationError("speeds must be > 0")
        if ordered[-1][0] < 1.0 - 1e-9:
            raise ConfigurationError("the table must cover speed 1.0")
        if any(p < 0 for _, p in ordered):
            raise ConfigurationError("powers must be >= 0")
        self._speeds = tuple(s for s, _ in ordered)
        self._powers = tuple(p for _, p in ordered)

    def power(self, speed: Speed) -> float:
        self._check_speed(speed)
        speeds, powers = self._speeds, self._powers
        if speed <= speeds[0]:
            return powers[0]
        if speed >= speeds[-1]:
            return powers[-1]
        hi = bisect.bisect_left(speeds, speed)
        lo = hi - 1
        weight = (speed - speeds[lo]) / (speeds[hi] - speeds[lo])
        return powers[lo] + weight * (powers[hi] - powers[lo])

    def describe(self) -> str:
        rows = ", ".join(
            f"({s:g}, {p:g})" for s, p in zip(self._speeds, self._powers))
        return f"measured table [{rows}]"
