"""Processor speed scales: continuous and discrete frequency sets.

Speeds are normalised to the maximum frequency, so every scale exposes
values in ``(0, 1]`` with ``1.0`` always available.  A DVS policy asks
for an ideal (usually continuous) speed; the scale *quantizes* it to an
attainable one.  Quantization always rounds **up** — rounding down
would silently violate the deadline guarantee the policy computed the
speed from.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import ConfigurationError
from repro.types import Speed


class SpeedScale(ABC):
    """The set of speeds a processor can run at."""

    @property
    @abstractmethod
    def min_speed(self) -> Speed:
        """The lowest attainable speed (> 0)."""

    @abstractmethod
    def quantize(self, speed: Speed) -> Speed:
        """Map a desired speed to the smallest attainable speed >= it.

        Inputs above 1.0 (a policy asking for more than the processor
        has) clamp to 1.0; inputs at or below zero clamp to the minimum
        speed.
        """

    @abstractmethod
    def is_attainable(self, speed: Speed, tol: float = 1e-9) -> bool:
        """Whether *speed* is exactly (within *tol*) attainable."""

    @property
    def is_continuous(self) -> bool:
        """``True`` for continuously variable scales."""
        return False

    def describe(self) -> str:
        return type(self).__name__


class ContinuousScale(SpeedScale):
    """Continuously variable speed in ``[min_speed, 1]``.

    The idealised model most analytical DVS results assume; real
    processors are approximated by :class:`DiscreteScale`.
    """

    def __init__(self, min_speed: Speed = 0.05) -> None:
        if not (0.0 < min_speed <= 1.0):
            raise ConfigurationError(
                f"min_speed must be in (0, 1], got {min_speed}")
        self._min_speed = float(min_speed)

    @property
    def min_speed(self) -> Speed:
        return self._min_speed

    @property
    def is_continuous(self) -> bool:
        return True

    def quantize(self, speed: Speed) -> Speed:
        if math.isnan(speed):
            raise ConfigurationError("cannot quantize NaN speed")
        return min(1.0, max(self._min_speed, speed))

    def is_attainable(self, speed: Speed, tol: float = 1e-9) -> bool:
        return self._min_speed - tol <= speed <= 1.0 + tol

    def describe(self) -> str:
        return f"continuous[{self._min_speed}, 1.0]"


class DiscreteScale(SpeedScale):
    """A finite, sorted set of speed levels; the top level must be 1.0."""

    def __init__(self, levels: Sequence[Speed]) -> None:
        if not levels:
            raise ConfigurationError("a discrete scale needs >= 1 level")
        ordered = sorted(float(level) for level in levels)
        if ordered[0] <= 0.0:
            raise ConfigurationError(
                f"speed levels must be > 0, got {ordered[0]}")
        if not math.isclose(ordered[-1], 1.0, abs_tol=1e-12):
            raise ConfigurationError(
                f"the highest level must be 1.0 (max frequency), got "
                f"{ordered[-1]}")
        for a, b in zip(ordered, ordered[1:]):
            if math.isclose(a, b, abs_tol=1e-12):
                raise ConfigurationError(f"duplicate speed level {a}")
        self._levels = tuple(ordered)

    @property
    def levels(self) -> tuple[Speed, ...]:
        """The attainable speeds, ascending, ending at 1.0."""
        return self._levels

    @property
    def min_speed(self) -> Speed:
        return self._levels[0]

    def quantize(self, speed: Speed) -> Speed:
        if math.isnan(speed):
            raise ConfigurationError("cannot quantize NaN speed")
        if speed >= 1.0:
            return 1.0
        # Smallest level >= speed (round up; never jeopardise deadlines).
        # A microscopic tolerance keeps float noise from bumping a speed
        # that *is* a level up to the next one.
        idx = bisect.bisect_left(self._levels, speed - 1e-12)
        if idx >= len(self._levels):
            return 1.0
        return self._levels[idx]

    def is_attainable(self, speed: Speed, tol: float = 1e-9) -> bool:
        idx = bisect.bisect_left(self._levels, speed - tol)
        return (idx < len(self._levels)
                and abs(self._levels[idx] - speed) <= tol)

    def describe(self) -> str:
        formatted = ", ".join(f"{level:g}" for level in self._levels)
        return f"discrete[{formatted}]"


def uniform_levels(count: int, min_speed: Speed = 0.1) -> DiscreteScale:
    """*count* evenly spaced levels from *min_speed* to 1.0."""
    if count < 1:
        raise ConfigurationError(f"need >= 1 level, got {count}")
    if count == 1:
        return DiscreteScale([1.0])
    if not (0.0 < min_speed < 1.0):
        raise ConfigurationError(
            f"min_speed must be in (0, 1) for multiple levels, got {min_speed}")
    step = (1.0 - min_speed) / (count - 1)
    return DiscreteScale([min_speed + i * step for i in range(count)])
