"""Named processor profiles.

Each factory returns a fresh :class:`~repro.cpu.processor.Processor`
configured after a platform the DVS literature simulates.  Frequencies
and voltages follow the commonly tabulated values for each part; where
a vendor datasheet is not reproducible offline the table is the one the
follow-up papers used, which is all the qualitative results depend on
(see DESIGN.md §4.5).
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.power import CmosPowerModel, OperatingPoint, PolynomialPowerModel, TablePowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale, DiscreteScale, uniform_levels
from repro.cpu.transition import ConstantOverhead, NoOverhead, VoltageSwitchOverhead


def ideal_processor(min_speed: float = 0.05, alpha: float = 3.0) -> Processor:
    """Continuously variable speed, ``P = s^alpha``, free switching.

    The analytic reference model: every policy's best case.
    """
    return Processor(
        scale=ContinuousScale(min_speed=min_speed),
        power_model=PolynomialPowerModel(alpha=alpha),
        transition_model=NoOverhead(),
        name="ideal-continuous",
    )


def generic4_processor() -> Processor:
    """The classic academic 4-level model.

    Frequencies 25/50/75/100 % at 2/3/4/5 volts — the textbook table
    used throughout the early-2000s DVS simulation sections.
    """
    points = [
        OperatingPoint(frequency=0.25, voltage=2.0),
        OperatingPoint(frequency=0.50, voltage=3.0),
        OperatingPoint(frequency=0.75, voltage=4.0),
        OperatingPoint(frequency=1.00, voltage=5.0),
    ]
    return Processor(
        scale=DiscreteScale([0.25, 0.50, 0.75, 1.00]),
        power_model=CmosPowerModel(points, c_eff=1.0),
        transition_model=NoOverhead(),
        name="generic-4-level",
    )


def xscale_processor(switch_time: float = 0.0) -> Processor:
    """Intel XScale-style part: 5 levels, published power numbers.

    The (frequency MHz, voltage V, power mW) rows are the table the
    practical-DVS papers use: (150, 0.75, 80), (400, 1.0, 170),
    (600, 1.3, 400), (800, 1.6, 900), (1000, 1.8, 1600).  Power is
    table-driven (measured), voltage is used for switch-energy costs.
    """
    freqs = (150.0, 400.0, 600.0, 800.0, 1000.0)
    volts = (0.75, 1.0, 1.3, 1.6, 1.8)
    powers_mw = (80.0, 170.0, 400.0, 900.0, 1600.0)
    speeds = tuple(f / freqs[-1] for f in freqs)
    power_model = _VoltageAnnotatedTable(
        list(zip(speeds, powers_mw)), dict(zip(speeds, volts)))
    transition = (ConstantOverhead(switch_time=switch_time)
                  if switch_time > 0 else NoOverhead())
    return Processor(
        scale=DiscreteScale(speeds),
        power_model=power_model,
        transition_model=transition,
        idle_power=0.0,
        name="xscale-5-level",
    )


def sa1100_processor(switch_time: float = 0.14) -> Processor:
    """StrongARM SA-1100-style part.

    11 frequency steps from 59 to 206.4 MHz; core voltage scales from
    0.79 V to 1.5 V across the range; voltage switches complete in
    under 140 microseconds (0.14 ms in the library's millisecond units).
    """
    steps = 11
    f_min, f_max = 59.0, 206.4
    v_min, v_max = 0.79, 1.5
    points = []
    for i in range(steps):
        frac = i / (steps - 1)
        points.append(OperatingPoint(
            frequency=f_min + frac * (f_max - f_min),
            voltage=v_min + frac * (v_max - v_min)))
    speeds = [p.frequency / f_max for p in points]
    return Processor(
        scale=DiscreteScale(speeds),
        power_model=CmosPowerModel(points, c_eff=1.0),
        transition_model=VoltageSwitchOverhead(switch_time=switch_time),
        name="sa1100-11-level",
    )


def crusoe_processor() -> Processor:
    """Transmeta Crusoe-style part: 5 LongRun levels."""
    points = [
        OperatingPoint(frequency=300.0, voltage=1.2),
        OperatingPoint(frequency=400.0, voltage=1.225),
        OperatingPoint(frequency=533.0, voltage=1.35),
        OperatingPoint(frequency=600.0, voltage=1.5),
        OperatingPoint(frequency=667.0, voltage=1.6),
    ]
    speeds = [p.frequency / points[-1].frequency for p in points]
    return Processor(
        scale=DiscreteScale(speeds),
        power_model=CmosPowerModel(points, c_eff=1.0),
        transition_model=NoOverhead(),
        name="crusoe-5-level",
    )


def uniform_discrete_processor(levels: int, min_speed: float = 0.1,
                               alpha: float = 3.0) -> Processor:
    """*levels* evenly spaced speeds with polynomial power.

    The knob for the discrete-vs-continuous experiment (EXP-F4).
    """
    return Processor(
        scale=uniform_levels(levels, min_speed=min_speed),
        power_model=PolynomialPowerModel(alpha=alpha),
        transition_model=NoOverhead(),
        name=f"uniform-{levels}-level",
    )


class _VoltageAnnotatedTable(TablePowerModel):
    """A measured power table that also knows its voltages.

    Needed so switch-energy models can see the real rail voltages of a
    table-driven profile instead of the default speed-proportional
    approximation.
    """

    def __init__(self, points: list[tuple[float, float]],
                 voltages: dict[float, float]) -> None:
        super().__init__(points)
        self._voltages = dict(voltages)

    def voltage(self, speed: float) -> float:
        exact = self._voltages.get(speed)
        if exact is not None:
            return exact
        # Interpolate between the two nearest annotated speeds.
        annotated = sorted(self._voltages)
        lower = max((s for s in annotated if s <= speed), default=annotated[0])
        upper = min((s for s in annotated if s >= speed), default=annotated[-1])
        if lower == upper:
            return self._voltages[lower]
        weight = (speed - lower) / (upper - lower)
        return (self._voltages[lower]
                + weight * (self._voltages[upper] - self._voltages[lower]))


#: Name -> factory mapping used by the CLI and experiment configs.
PROCESSOR_PROFILES: dict[str, Callable[[], Processor]] = {
    "ideal": ideal_processor,
    "generic4": generic4_processor,
    "xscale": xscale_processor,
    "sa1100": sa1100_processor,
    "crusoe": crusoe_processor,
}


def load_profile(name: str) -> Processor:
    """Look up a processor profile by name."""
    try:
        factory = PROCESSOR_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROCESSOR_PROFILES))
        raise KeyError(f"unknown profile {name!r}; known: {known}") from None
    return factory()
