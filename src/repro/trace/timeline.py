"""Sweep timeline: the parallel executor's pool as a Chrome trace.

The warm-pool executor (:mod:`repro.experiments.parallel`) already
emits structured telemetry events — ``parallel.dispatch`` when chunks
are submitted, ``parallel.chunk`` when each worker-executed chunk
lands (carrying the worker pid and the chunk's wall-clock window),
``span`` records for the sweep phases, ``sweep.checkpoint`` per cell.
This module folds one ``events.jsonl`` stream into a worker-lane
Chrome trace: one lane per worker pid holding its chunk spans, plus a
parent lane with the sweep phases, dispatch instants and checkpoint
markers — so pool utilization (stragglers, idle lanes, rebalancing)
is visually inspectable in Perfetto instead of inferred from the
manifest's aggregate utilization number.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ExperimentError

#: Event wall-clock seconds -> trace microseconds.
_SCALE = 1e6

#: The sweep process id used for every lane.
_PID = 0

#: The parent (sweep orchestrator) lane.
_PARENT_TID = 0


def _load_events(events_path: str | Path) -> list[dict]:
    path = Path(events_path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ExperimentError(
            f"cannot read telemetry events {path}: {exc}") from exc
    events = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"telemetry events {path} line {index + 1} is not "
                f"valid JSON: {exc}") from exc
    if not events:
        raise ExperimentError(f"telemetry events {path} are empty")
    return events


def sweep_timeline_events(events_path: str | Path) -> list[dict]:
    """Fold an ``events.jsonl`` stream into Chrome trace events."""
    records = _load_events(events_path)

    # The origin: earliest timestamp seen anywhere in the stream
    # (chunk windows start before their landing event's ts).
    times = []
    for rec in records:
        if "ts" in rec:
            times.append(float(rec["ts"]))
        if rec.get("kind") == "parallel.chunk" and "t0" in rec:
            times.append(float(rec["t0"]))
        if rec.get("kind") == "span":
            times.append(float(rec["ts"]) - float(rec.get("wall_s", 0.0)))
    origin = min(times)

    def ts(value: float) -> float:
        return (value - origin) * _SCALE

    lanes: dict[int, int] = {}  # worker pid -> tid

    def worker_tid(pid: int) -> int:
        if pid not in lanes:
            lanes[pid] = len(lanes) + 1
        return lanes[pid]

    events: list[dict] = []
    for rec in records:
        kind = rec.get("kind")
        if kind == "parallel.chunk":
            tid = worker_tid(int(rec["pid"]))
            start = float(rec.get("t0", rec["ts"]))
            wall = float(rec.get("wall_s", 0.0))
            events.append({
                "name": f"chunk ({rec.get('units', '?')} units)",
                "cat": "worker", "ph": "X", "ts": ts(start),
                "dur": wall * _SCALE, "pid": _PID, "tid": tid,
                "args": {"pid": rec["pid"], "units": rec.get("units"),
                         "wall_s": wall},
            })
        elif kind == "span":
            wall = float(rec.get("wall_s", 0.0))
            events.append({
                "name": rec.get("name", "span"), "cat": "phase",
                "ph": "X", "ts": ts(float(rec["ts"]) - wall),
                "dur": wall * _SCALE, "pid": _PID, "tid": _PARENT_TID,
                "args": {"cpu_s": rec.get("cpu_s")},
            })
        elif kind == "parallel.dispatch":
            events.append({
                "name": "dispatch", "cat": "executor", "ph": "i",
                "s": "t", "ts": ts(float(rec["ts"])), "pid": _PID,
                "tid": _PARENT_TID,
                "args": {"chunks": rec.get("chunks"),
                         "units": rec.get("units"),
                         "workers": rec.get("workers")},
            })
        elif kind == "sweep.checkpoint":
            events.append({
                "name": f"checkpoint cell {rec.get('index')}",
                "cat": "checkpoint", "ph": "i", "s": "t",
                "ts": ts(float(rec["ts"])), "pid": _PID,
                "tid": _PARENT_TID, "args": {"x": rec.get("x")},
            })

    meta = [{"name": "process_name", "ph": "M", "pid": _PID,
             "args": {"name": "sweep"}},
            {"name": "thread_name", "ph": "M", "pid": _PID,
             "tid": _PARENT_TID, "args": {"name": "(sweep)"}}]
    for pid, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": _PID,
                     "tid": tid, "args": {"name": f"worker {pid}"}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": _PID,
                     "tid": tid, "args": {"sort_index": tid}})
    events.sort(key=lambda e: e["ts"])
    return meta + events


def export_sweep_timeline(events_path: str | Path,
                          out: str | Path) -> Path:
    """Write the worker-lane Chrome trace for one sweep's events."""
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": sweep_timeline_events(events_path),
        "displayTimeUnit": "ms",
        "otherData": {"source": str(events_path)},
    }
    out.write_text(json.dumps(payload) + "\n")
    return out
