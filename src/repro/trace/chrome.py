"""Chrome trace-event export: open a schedule in Perfetto.

The exported file is the `Trace Event Format`_ JSON that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* one thread lane per task, holding its jobs as complete (``X``)
  events with speed/energy in ``args``;
* dedicated lanes for idle, speed-switch and sleep segments;
* trace notes (governor interventions, injected faults, overruns,
  deadline misses) as instant (``i``) events on a ``notes`` lane;
* the processor speed as a counter (``C``) track, stepping at every
  segment boundary.

Simulation time is unitless; one simulated time unit is exported as
one second (the format's ``ts`` field is microseconds).  Events are
emitted sorted by timestamp, so consumers that require monotonic
streams can ingest the file without re-sorting.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.tracing import SegmentKind

#: Simulated time units -> trace microseconds (1 unit = 1 s).
TIME_SCALE = 1e6

#: The schedule process id used for every lane.
_PID = 0


def _lane_map(result: SimulationResult) -> dict[str, int]:
    """Stable lane (tid) assignment: tasks first, then activity lanes."""
    tasks = sorted({seg.task for seg in result.trace
                    if seg.kind == SegmentKind.RUN and seg.task})
    lanes = {task: tid for tid, task in enumerate(tasks, start=1)}
    base = len(tasks)
    lanes["(idle)"] = base + 1
    lanes["(switch)"] = base + 2
    lanes["(sleep)"] = base + 3
    lanes["(notes)"] = base + 4
    return lanes


def chrome_trace_events(result: SimulationResult) -> list[dict]:
    """The run's trace as a sorted list of Chrome trace events."""
    if result.trace is None:
        raise ConfigurationError(
            "cannot export a Chrome trace without a trace; run with "
            "record_trace=True")
    lanes = _lane_map(result)
    meta: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": f"schedule [{result.policy}]"},
    }]
    for name, tid in lanes.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": _PID,
                     "tid": tid, "args": {"name": name}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": _PID,
                     "tid": tid, "args": {"sort_index": tid}})

    events: list[dict] = []

    def counter(ts: float, speed: float) -> None:
        events.append({"name": "speed", "ph": "C", "pid": _PID,
                       "ts": ts, "args": {"speed": speed}})

    last_speed: float | None = None
    last_end = 0.0
    for seg in result.trace:
        ts = seg.start * TIME_SCALE
        dur = seg.duration * TIME_SCALE
        last_end = max(last_end, seg.end * TIME_SCALE)
        if seg.kind == SegmentKind.RUN:
            tid = lanes[seg.task or "(idle)"]
            name = seg.job or "?"
            speed = seg.speed
        elif seg.kind == SegmentKind.IDLE:
            tid, name, speed = lanes["(idle)"], "idle", 0.0
        elif seg.kind == SegmentKind.SWITCH:
            tid, name, speed = (lanes["(switch)"],
                                f"switch->{seg.speed:g}", seg.speed)
        else:
            tid, name, speed = lanes["(sleep)"], "sleep", 0.0
        events.append({
            "name": name, "cat": seg.kind.value, "ph": "X",
            "ts": ts, "dur": dur, "pid": _PID, "tid": tid,
            "args": {"speed": seg.speed, "energy": seg.energy},
        })
        if last_speed is None or speed != last_speed:
            counter(ts, speed)
            last_speed = speed
    if last_speed is not None and last_speed != 0.0:
        counter(last_end, 0.0)

    for note in result.notes:
        events.append({
            "name": note.kind, "cat": "note", "ph": "i", "s": "t",
            "ts": note.time * TIME_SCALE, "pid": _PID,
            "tid": lanes["(notes)"],
            "args": {"detail": note.detail},
        })

    events.sort(key=lambda e: e["ts"])
    return meta + events


def export_chrome_trace(result: SimulationResult,
                        path: str | Path) -> Path:
    """Write the run's Chrome trace JSON to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(result),
        "displayTimeUnit": "ms",
        "otherData": {
            "policy": result.policy,
            "horizon": result.horizon,
            "total_energy": result.total_energy,
        },
    }
    path.write_text(json.dumps(payload) + "\n")
    return path
