"""Compact schema-versioned JSONL schedule traces.

One header line, then one line per segment, then one line per note —
append-friendly, streamable, and diffable line-by-line.  The header
carries a ``schema`` version; readers refuse files newer than they
understand (the same strictness as the telemetry run manifests) and
fail loudly on malformed lines instead of silently truncating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, TraceValidationError
from repro.sim.results import SimulationResult
from repro.sim.tracing import Segment, SegmentKind, TraceNote

#: Bumped when the line layout changes; readers refuse newer files.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class TraceDoc:
    """A trace read back from disk: header metadata plus the streams."""

    meta: dict
    segments: tuple[Segment, ...]
    notes: tuple[TraceNote, ...]

    @property
    def policy(self) -> str:
        return str(self.meta.get("policy", "?"))

    @property
    def horizon(self) -> float:
        return float(self.meta.get("horizon", 0.0))

    def __iter__(self):
        return iter(self.segments)


def write_trace_jsonl(result: SimulationResult, path: str | Path,
                      *, label: str | None = None) -> Path:
    """Export a traced run as schema-versioned JSONL."""
    if result.trace is None:
        raise ConfigurationError(
            "cannot export a trace without a trace; run with "
            "record_trace=True")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    segments = result.trace.segments
    lines = [json.dumps({
        "kind": "schedule-trace",
        "schema": TRACE_SCHEMA,
        "label": label or result.policy,
        "policy": result.policy,
        "horizon": result.horizon,
        "total_energy": result.total_energy,
        "segments": len(segments),
        "notes": len(result.notes),
    })]
    for seg in segments:
        record = {"t": "seg", "kind": seg.kind.value, "start": seg.start,
                  "end": seg.end, "speed": seg.speed, "energy": seg.energy}
        if seg.job is not None:
            record["job"] = seg.job
        if seg.task is not None:
            record["task"] = seg.task
        lines.append(json.dumps(record))
    for note in result.notes:
        lines.append(json.dumps({"t": "note", "time": note.time,
                                 "kind": note.kind,
                                 "detail": note.detail}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> TraceDoc:
    """Load a JSONL trace, validating the header and line counts."""
    path = Path(path)
    try:
        raw_lines = path.read_text().splitlines()
    except OSError as exc:
        raise TraceValidationError(
            f"cannot read trace {path}: {exc}") from exc
    if not raw_lines:
        raise TraceValidationError(f"trace {path} is empty")

    def parse(index: int, line: str) -> dict:
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(
                f"trace {path} line {index + 1} is not valid JSON: "
                f"{exc}") from exc

    meta = parse(0, raw_lines[0])
    if meta.get("kind") != "schedule-trace":
        raise TraceValidationError(
            f"{path} is not a schedule trace (kind="
            f"{meta.get('kind')!r})")
    schema = int(meta.get("schema", -1))
    if schema > TRACE_SCHEMA:
        raise TraceValidationError(
            f"trace schema {schema} is newer than this build "
            f"understands ({TRACE_SCHEMA})")
    segments: list[Segment] = []
    notes: list[TraceNote] = []
    for index, line in enumerate(raw_lines[1:], start=1):
        if not line.strip():
            continue
        record = parse(index, line)
        if record.get("t") == "seg":
            segments.append(Segment(
                start=float(record["start"]), end=float(record["end"]),
                kind=SegmentKind(record["kind"]),
                speed=float(record["speed"]),
                energy=float(record["energy"]),
                job=record.get("job"), task=record.get("task")))
        elif record.get("t") == "note":
            notes.append(TraceNote(time=float(record["time"]),
                                   kind=str(record["kind"]),
                                   detail=str(record["detail"])))
        else:
            raise TraceValidationError(
                f"trace {path} line {index + 1} has unknown record "
                f"type {record.get('t')!r}")
    declared = meta.get("segments")
    if declared is not None and int(declared) != len(segments):
        raise TraceValidationError(
            f"trace {path} declares {declared} segments but carries "
            f"{len(segments)} — truncated or corrupted file")
    return TraceDoc(meta=meta, segments=tuple(segments),
                    notes=tuple(notes))
