"""Trace-grade observability: exporters, energy ledger, trace diff.

The simulation engine already records a gap-free schedule trace
(:mod:`repro.sim.tracing`); this package turns that stream into
first-class artifacts:

* :mod:`repro.trace.chrome` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``): one lane per task plus idle /
  switch / sleep lanes, notes as instant events, speed as a counter
  track;
* :mod:`repro.trace.jsonl` — a compact, schema-versioned JSONL trace
  format for machine consumption and byte-level comparison;
* :mod:`repro.trace.ledger` — :class:`~repro.trace.ledger.EnergyLedger`,
  attributing every joule of a run to per-job / per-task run energy
  plus idle / switch / sleep buckets, with exact conservation against
  :attr:`~repro.sim.results.SimulationResult.total_energy`;
* :mod:`repro.trace.diff` — first-divergent-segment comparison between
  two traces (the triage tool for "parallel == serial" and
  "cache == recompute" claims);
* :mod:`repro.trace.timeline` — folds a sweep's telemetry event stream
  (chunk dispatches, per-worker busy spans) into a worker-lane Chrome
  trace so pool utilization is visually inspectable.

The semantic counterpart — the invariant auditor that consumes these
traces in CI — lives in :mod:`repro.analysis.audit`.
"""

from repro.trace.chrome import (
    chrome_trace_events,
    export_chrome_trace,
)
from repro.trace.diff import TraceDivergence, diff_docs, diff_traces
from repro.trace.jsonl import (
    TRACE_SCHEMA,
    TraceDoc,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.trace.ledger import EnergyLedger
from repro.trace.timeline import (
    export_sweep_timeline,
    sweep_timeline_events,
)

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "TraceDivergence",
    "diff_docs",
    "diff_traces",
    "TRACE_SCHEMA",
    "TraceDoc",
    "read_trace_jsonl",
    "write_trace_jsonl",
    "EnergyLedger",
    "export_sweep_timeline",
    "sweep_timeline_events",
]
