"""Per-task / per-job energy attribution with exact conservation.

An :class:`EnergyLedger` decomposes a traced run's total energy into

* run energy, attributed to the job (and task) that was executing,
* idle, switch and sleep energy (global buckets — no job is running),
* a residual switch bucket for zero-duration transitions, whose energy
  the engine accounts in :attr:`SimulationResult.switch_energy` but
  which produce no trace segment to attach it to.

Because every bucket is a plain sum over the same segment stream the
engine integrated, conservation is exact by construction:
``ledger.total == sum(buckets)``.  Whether that total also matches the
*result's* ``total_energy`` is a genuine invariant —
:meth:`EnergyLedger.check` reports any discrepancy per bucket, and the
trace auditor (:func:`repro.analysis.audit.audit_trace`) surfaces them
as typed violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.tracing import SegmentKind
from repro.types import Energy

#: Relative tolerance for reconciling ledger buckets against the
#: result's float-accumulated totals.
LEDGER_REL_TOL = 1e-6


@dataclass
class EnergyLedger:
    """Where every joule of one simulation went."""

    policy: str
    horizon: float
    run_by_job: dict[str, Energy] = field(default_factory=dict)
    run_by_task: dict[str, Energy] = field(default_factory=dict)
    run_time_by_task: dict[str, float] = field(default_factory=dict)
    idle: Energy = 0.0
    switch: Energy = 0.0
    sleep: Energy = 0.0
    #: Switch energy present in the result totals but carried by
    #: zero-duration transitions the trace recorder drops.
    residual_switch: Energy = 0.0

    @property
    def run(self) -> Energy:
        """Total run-bucket energy (sum over jobs)."""
        return sum(self.run_by_job.values())

    @property
    def total(self) -> Energy:
        """Sum of every bucket — conserved by construction."""
        return (self.run + self.idle + self.switch + self.sleep
                + self.residual_switch)

    @classmethod
    def from_result(cls, result: SimulationResult) -> "EnergyLedger":
        """Build the ledger from a result that recorded its trace."""
        if result.trace is None:
            raise ConfigurationError(
                "cannot build an energy ledger without a trace; run "
                "with record_trace=True")
        ledger = cls(policy=result.policy, horizon=result.horizon)
        traced_switch = 0.0
        for seg in result.trace:
            if seg.kind == SegmentKind.RUN:
                job = seg.job or "?"
                task = seg.task or "?"
                ledger.run_by_job[job] = (
                    ledger.run_by_job.get(job, 0.0) + seg.energy)
                ledger.run_by_task[task] = (
                    ledger.run_by_task.get(task, 0.0) + seg.energy)
                ledger.run_time_by_task[task] = (
                    ledger.run_time_by_task.get(task, 0.0) + seg.duration)
            elif seg.kind == SegmentKind.IDLE:
                ledger.idle += seg.energy
            elif seg.kind == SegmentKind.SWITCH:
                traced_switch += seg.energy
            else:
                ledger.sleep += seg.energy
        ledger.switch = traced_switch
        ledger.residual_switch = result.switch_energy - traced_switch
        return ledger

    def check(self, result: SimulationResult,
              rel_tol: float = LEDGER_REL_TOL) -> list[str]:
        """Reconcile each bucket against the result's energy totals.

        Returns human-readable discrepancy strings (empty = balanced).
        """
        problems: list[str] = []

        def compare(name: str, mine: float, theirs: float) -> None:
            if abs(mine - theirs) > rel_tol * max(1.0, abs(theirs)):
                problems.append(
                    f"{name}: ledger {mine!r} != result {theirs!r}")

        compare("run", self.run, result.busy_energy)
        compare("idle", self.idle, result.idle_energy)
        compare("switch", self.switch + self.residual_switch,
                result.switch_energy)
        compare("sleep", self.sleep, result.sleep_energy)
        compare("total", self.total, result.total_energy)
        return problems

    def to_payload(self) -> dict:
        return {
            "kind": "energy-ledger",
            "policy": self.policy,
            "horizon": self.horizon,
            "run_by_job": dict(self.run_by_job),
            "run_by_task": dict(self.run_by_task),
            "run_time_by_task": dict(self.run_time_by_task),
            "idle": self.idle,
            "switch": self.switch,
            "sleep": self.sleep,
            "residual_switch": self.residual_switch,
            "total": self.total,
        }

    def render(self) -> str:
        """ASCII table: per-task run energy, then the global buckets."""
        total = self.total or 1.0
        lines = [f"energy ledger: policy={self.policy} "
                 f"horizon={self.horizon:g} total={self.total:.6g}"]
        for task in sorted(self.run_by_task):
            energy = self.run_by_task[task]
            jobs = sum(1 for job in self.run_by_job
                       if job.partition("#")[0] == task)
            lines.append(
                f"  run   {task:<12} {energy:12.6g}  "
                f"({energy / total:6.1%}, {jobs} jobs, "
                f"{self.run_time_by_task[task]:.6g} time units)")
        for name, value in (("idle", self.idle), ("switch", self.switch),
                            ("sleep", self.sleep)):
            lines.append(f"  {name:<5} {'':<12} {value:12.6g}  "
                         f"({value / total:6.1%})")
        if abs(self.residual_switch) > 0:
            lines.append(f"  switch (zero-duration residual) "
                         f"{self.residual_switch:12.6g}")
        return "\n".join(lines)
