"""First-divergent-segment comparison between two schedule traces.

The byte-identity claims this repo makes — parallel == serial,
cache == recompute, resume == uninterrupted — were until now verified
only at the aggregate level (normalized-energy cells).  When such a
claim breaks, the actionable datum is *where the schedules first
differ*: which segment, which field, by how much.  :func:`diff_traces`
walks two segment streams in lockstep and reports exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.tracing import Segment, TraceNote
from repro.trace.jsonl import TraceDoc
from repro.types import SPEED_EPS, TIME_EPS

#: Relative tolerance for per-segment energy comparison.
ENERGY_REL_TOL = 1e-9


@dataclass(frozen=True)
class TraceDivergence:
    """The first point at which two traces disagree."""

    index: int
    field: str
    a: object
    b: object
    time: float

    def render(self) -> str:
        return (f"traces diverge at segment {self.index} "
                f"(t={self.time:g}): {self.field} {self.a!r} != "
                f"{self.b!r}")


def _first_segment_divergence(
    a: Sequence[Segment], b: Sequence[Segment],
    time_eps: float, speed_eps: float, energy_rel: float,
) -> TraceDivergence | None:
    for index, (sa, sb) in enumerate(zip(a, b)):
        checks = (
            ("start", sa.start, sb.start,
             abs(sa.start - sb.start) > time_eps),
            ("end", sa.end, sb.end, abs(sa.end - sb.end) > time_eps),
            ("kind", sa.kind.value, sb.kind.value, sa.kind != sb.kind),
            ("job", sa.job, sb.job, sa.job != sb.job),
            ("task", sa.task, sb.task, sa.task != sb.task),
            ("speed", sa.speed, sb.speed,
             abs(sa.speed - sb.speed) > speed_eps),
            ("energy", sa.energy, sb.energy,
             abs(sa.energy - sb.energy)
             > energy_rel * max(1.0, abs(sa.energy))),
        )
        for field, va, vb, differs in checks:
            if differs:
                return TraceDivergence(index=index, field=field,
                                       a=va, b=vb, time=sa.start)
    if len(a) != len(b):
        index = min(len(a), len(b))
        longer = a if len(a) > len(b) else b
        return TraceDivergence(
            index=index, field="segment-count", a=len(a), b=len(b),
            time=longer[index].start if index < len(longer) else 0.0)
    return None


def diff_traces(
    a: Iterable[Segment], b: Iterable[Segment],
    *, time_eps: float = TIME_EPS, speed_eps: float = SPEED_EPS,
    energy_rel: float = ENERGY_REL_TOL,
) -> TraceDivergence | None:
    """First divergent segment between two traces (``None`` = equal).

    Accepts anything iterable over :class:`Segment` — a live
    :class:`~repro.sim.tracing.TraceRecorder` or a loaded
    :class:`~repro.trace.jsonl.TraceDoc` alike.
    """
    return _first_segment_divergence(
        tuple(a), tuple(b), time_eps, speed_eps, energy_rel)


def _first_note_divergence(
    a: Sequence[TraceNote], b: Sequence[TraceNote], time_eps: float,
) -> TraceDivergence | None:
    for index, (na, nb) in enumerate(zip(a, b)):
        for field, va, vb, differs in (
                ("note-time", na.time, nb.time,
                 abs(na.time - nb.time) > time_eps),
                ("note-kind", na.kind, nb.kind, na.kind != nb.kind),
                ("note-detail", na.detail, nb.detail,
                 na.detail != nb.detail)):
            if differs:
                return TraceDivergence(index=index, field=field,
                                       a=va, b=vb, time=na.time)
    if len(a) != len(b):
        return TraceDivergence(index=min(len(a), len(b)),
                               field="note-count", a=len(a), b=len(b),
                               time=0.0)
    return None


def diff_docs(a: TraceDoc, b: TraceDoc,
              *, time_eps: float = TIME_EPS) -> TraceDivergence | None:
    """Diff two loaded trace documents: segments first, then notes."""
    divergence = diff_traces(a.segments, b.segments, time_eps=time_eps)
    if divergence is not None:
        return divergence
    return _first_note_divergence(a.notes, b.notes, time_eps)
