"""Cycle-conserving EDF (Pillai & Shin, SOSP 2001).

Maintains a per-task utilization estimate: a task counts at its full
worst-case utilization while it has an outstanding job, and at the
utilization implied by the *actual* cycles its last job used once the
job completes.  The processor runs at the sum of the estimates.  The
estimate never drops below what feasibility requires, so EDF deadlines
are preserved; energy is saved whenever jobs under-run their budgets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class CcEdfPolicy(DvsPolicy):
    """Cycle-conserving RT-DVS for EDF."""

    name = "ccEDF"
    batch_kernel = "ccedf"

    def __init__(self) -> None:
        super().__init__()
        self._util: dict[str, float] = {}

    def reset(self) -> None:
        assert self.taskset is not None
        # Until a task's first job completes, assume worst case.
        self._util = {t.name: t.utilization for t in self.taskset}

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        # A new job resets the task to its worst-case utilization.
        self._util[job.task.name] = job.task.utilization

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        # The completed job used `executed` of its `wcet` budget.
        self._util[job.task.name] = job.executed / job.task.period

    def utilization_estimate(self) -> float:
        """Current total utilization estimate (sum over tasks)."""
        return sum(self._util.values())

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        return max(self.utilization_estimate(), self.min_speed)
