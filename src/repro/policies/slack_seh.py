"""lpSEH — the low-overhead slack-estimation heuristic.

Same statically scaled reference schedule and dispatch rule as
:mod:`repro.policies.slack_sta`, but the slack comes from
:func:`repro.analysis.slack.heuristic_slack`: O(n) work per scheduling
point, inspecting only the active jobs' deadlines and each task's next
release, with future demand over-approximated by the closed-form
linear bound.  The estimate never exceeds the exact slack, so the
heuristic inherits lpSTA's safety while being cheap enough for an RTOS
scheduler hook — the practical variant such papers deploy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.analysis.slack import allotted_speed, heuristic_slack, scale_tasks
from repro.cpu.processor import Processor
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class LpSehPolicy(DvsPolicy):
    """Heuristic slack-estimation DVS for EDF (paper's practical variant)."""

    name = "lpSEH"

    def __init__(self) -> None:
        super().__init__()
        self._baseline_speed: Speed = 1.0
        self._scaled_tasks: tuple[PeriodicTask, ...] = ()
        self._analysis_calls = 0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._baseline_speed = max(minimum_constant_speed(taskset),
                                   processor.min_speed, 1e-9)
        self._scaled_tasks = scale_tasks(taskset.tasks, self._baseline_speed)

    def reset(self) -> None:
        self._analysis_calls = 0

    @property
    def analysis_calls(self) -> int:
        """How many slack estimations the last run performed."""
        return self._analysis_calls

    @property
    def baseline_speed(self) -> Speed:
        """The reference speed the estimate measures slack against."""
        return self._baseline_speed

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        remaining = job.remaining_wcet
        if remaining <= 1e-12:
            return ctx.current_speed
        self._analysis_calls += 1
        state = ctx.slack_state(baseline_speed=self._baseline_speed,
                                scaled_tasks=self._scaled_tasks)
        slack = heuristic_slack(state)
        self.observe_slack(slack)
        return min(1.0, allotted_speed(remaining, self._baseline_speed,
                                       slack, self.min_speed))
