"""Dynamic Reclaiming Algorithm (Aydin, Melhem, Mossé & Mejía-Alvarez).

DRA compares the actual schedule against the *canonical* schedule — the
static-optimal EDF schedule that runs every job at the constant speed
``S = U`` and consumes exactly its WCET.  The policy maintains the
canonical schedule's remaining allocations in an "alpha queue" ordered
by deadline.  When a job is dispatched it may run slowly enough to fill

* its own outstanding canonical allocation, plus
* the *earliness*: allocations of strictly-earlier-deadline jobs that
  have already finished in the actual schedule but not yet in the
  canonical one (their unused canonical time is transferred).

Because the actual schedule never falls behind the (feasible) canonical
one, all deadlines hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.cpu.processor import Processor
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed, Time


if TYPE_CHECKING:
    from repro.sim.engine import SimContext


@dataclass
class _AlphaEntry:
    """Remaining canonical wall-time allocation of one released job."""

    job_name: str
    deadline: Time
    release: Time
    task_name: str
    index: int
    budget: float
    actual_done: bool = False

    def sort_key(self) -> tuple:
        # MUST match EDFScheduler.sort_key exactly: the canonical
        # schedule and the actual dispatch order have to agree on ties,
        # otherwise the alpha-queue drains a job that is not the one
        # executing and its budget is silently stolen (a real, observed
        # deadline-miss bug — see tests/test_policies_reclaiming.py).
        return (self.deadline, self.release, self.task_name, self.index)


class DraPolicy(DvsPolicy):
    """Dynamic reclaiming EDF-DVS."""

    name = "DRA"

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, _AlphaEntry] = {}
        self._canonical_now: Time = 0.0
        self._static_speed: Speed = 1.0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._static_speed = max(minimum_constant_speed(taskset),
                                 processor.min_speed, 1e-9)

    def reset(self) -> None:
        self._entries = {}
        self._canonical_now = 0.0

    # -- canonical-schedule bookkeeping --------------------------------

    def _advance_canonical(self, t: Time) -> None:
        """Drain alpha-queue budgets as the canonical schedule runs to *t*.

        The canonical schedule is EDF over the entries (by deadline),
        each entry holding wall time at the static speed; released
        entries only (all entries here are released, since they are
        created in ``on_release``).
        """
        elapsed = t - self._canonical_now
        if elapsed <= 0:
            return
        self._canonical_now = t
        for entry in sorted(self._entries.values(),
                            key=_AlphaEntry.sort_key):
            if elapsed <= 0:
                break
            consumed = min(entry.budget, elapsed)
            entry.budget -= consumed
            elapsed -= consumed
        self._gc()

    def _gc(self) -> None:
        """Drop entries that are spent and no longer reclaimable."""
        dead = [name for name, e in self._entries.items()
                if e.budget <= 1e-12 and e.actual_done]
        for name in dead:
            del self._entries[name]

    # -- policy hooks ---------------------------------------------------

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        self._advance_canonical(ctx.time)
        self._entries[job.name] = _AlphaEntry(
            job_name=job.name,
            deadline=job.deadline,
            release=job.release,
            task_name=job.task.name,
            index=job.index,
            budget=job.task.wcet / self._static_speed,
        )

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        self._advance_canonical(ctx.time)
        entry = self._entries.get(job.name)
        if entry is not None:
            entry.actual_done = True
            if entry.budget <= 1e-12:
                del self._entries[job.name]

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        self._advance_canonical(ctx.time)
        entry = self._entries.get(job.name)
        own_budget = entry.budget if entry is not None else 0.0

        # Earliness: canonical time still owed to jobs *ahead of J in
        # the alpha queue* (the canonical EDF drain order, so deadline
        # ties resolve exactly as the scheduler does) that the actual
        # schedule has already finished.
        own_key = (entry.sort_key() if entry is not None
                   else (job.deadline, job.release, job.task.name,
                         job.index))
        earliness = 0.0
        donors: list[_AlphaEntry] = []
        for other in self._entries.values():
            if (other.actual_done and other.budget > 1e-12
                    and other.sort_key() < own_key):
                earliness += other.budget
                donors.append(other)

        allotted = own_budget + earliness
        remaining = job.remaining_wcet
        if allotted <= 1e-12 or remaining <= 1e-12:
            return 1.0 if remaining > 1e-12 else self.min_speed
        speed = remaining / allotted
        if speed >= 1.0:
            return 1.0
        # Reclaim: transfer donor budgets into the dispatched job's
        # entry so the canonical drain keeps charging the right owner.
        if donors and entry is not None:
            for donor in donors:
                entry.budget += donor.budget
                donor.budget = 0.0
            self._gc()
        return max(self.min_speed, speed)
