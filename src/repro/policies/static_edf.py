"""Statically scaled EDF.

The classical offline result: with implicit deadlines, EDF remains
feasible at the constant speed equal to the worst-case utilization, and
that constant speed is the energy-optimal *static* schedule under a
convex power function when every job consumes its WCET.  All dynamic
slack-reclaiming policies are measured by how far below this they get
when jobs finish early.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.cpu.processor import Processor
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class StaticEdfPolicy(DvsPolicy):
    """Constant speed = minimum feasible constant speed (U for implicit
    deadlines), computed once at bind time."""

    name = "static"
    batch_kernel = "static"

    def __init__(self) -> None:
        super().__init__()
        self._speed: Speed = 1.0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._speed = max(minimum_constant_speed(taskset),
                          processor.min_speed)

    @property
    def static_speed(self) -> Speed:
        """The constant speed this run uses (after binding)."""
        return self._speed

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        return self._speed
