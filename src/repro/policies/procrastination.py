"""Idle-time management: sleep states and procrastination.

DVS attacks *active* energy; on leaky platforms the *idle* intervals
matter too.  A sleeping core draws far less than an idling one, but
entering sleep costs a wake-up transition, so short idle slivers are
not worth it.  **Procrastination** (the Jejurikar/Lee–Reddy line of
follow-up work) extends profitable sleeps past the next release: the
newly released jobs start late — by no more than the slack the paper's
own analysis guarantees them — batching many idle slivers into one
deep-sleep episode while every deadline still holds.

The engine consults an :class:`IdlePolicy` whenever the ready queue is
empty.  :class:`NeverSleepIdlePolicy` reproduces the classic behaviour
(idle at ``idle_power`` until the next release).
:class:`ProcrastinationIdlePolicy` plans one sleep episode:

1. let ``r`` be the next actual release and ``delay`` the slack of the
   *hypothetical* system state at ``r`` (every job releasing exactly at
   ``r`` active with its full budget — computed with the same exact
   slack analysis the DVS policies use, so the late start is feasible
   by the identical induction), scaled by a safety ``margin``;
2. sleep from now until ``r + delay``, budgeting the wake-up window
   inside the delay, but only when the episode beats plain idling
   (break-even check on the sleep/idle power gap vs wake-up energy).

Procrastination requires periodic arrivals (a sporadic "next release"
is not knowable in advance); with sporadic models the policy falls back
to sleeping only up to the earliest possible release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.analysis.slack import (
    ActiveJob,
    SystemState,
    exact_slack,
    scale_tasks,
)
from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.tasks.taskset import TaskSet
from repro.types import Time

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


@dataclass(frozen=True)
class IdlePlan:
    """The engine's instruction for one empty-queue interval."""

    sleep: bool
    wake_time: Time


class IdlePolicy:
    """Decides what to do when the ready queue is empty."""

    name = "idle-abstract"

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        self.taskset = taskset
        self.processor = processor

    def plan_idle(self, ctx: "SimContext", now: Time,
                  next_release: Time) -> IdlePlan:
        """Plan the interval starting at *now*; the next job release the
        engine knows about is *next_release* (the horizon when none)."""
        raise NotImplementedError


class NeverSleepIdlePolicy(IdlePolicy):
    """Classic behaviour: idle at ``idle_power`` until the next release."""

    name = "never-sleep"

    def plan_idle(self, ctx: "SimContext", now: Time,
                  next_release: Time) -> IdlePlan:
        return IdlePlan(sleep=False, wake_time=next_release)


class SleepOnIdlePolicy(IdlePolicy):
    """Sleep through idle intervals when profitable; never delay jobs.

    The non-procrastinating baseline: the wake time is exactly the next
    release, so schedules are identical to never-sleep — only the idle
    energy differs.
    """

    name = "sleep-on-idle"

    def plan_idle(self, ctx: "SimContext", now: Time,
                  next_release: Time) -> IdlePlan:
        duration = next_release - now
        breakeven = self.processor.sleep_breakeven_time()
        if duration > breakeven and duration > self.processor.wakeup_time:
            return IdlePlan(sleep=True, wake_time=next_release)
        return IdlePlan(sleep=False, wake_time=next_release)


class ProcrastinationIdlePolicy(IdlePolicy):
    """Extend profitable sleeps past the next release, inside its slack."""

    name = "procrastination"

    def __init__(self, margin: float = 0.5) -> None:
        if not (0.0 <= margin <= 1.0):
            raise ConfigurationError(
                f"margin must be in [0, 1], got {margin}")
        self.margin = margin
        self._baseline_speed = 1.0
        self._scaled_tasks: tuple = ()

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._baseline_speed = max(minimum_constant_speed(taskset),
                                   processor.min_speed, 1e-9)
        self._scaled_tasks = scale_tasks(taskset.tasks,
                                         self._baseline_speed)

    def _release_state_slack(self, ctx: "SimContext",
                             release: Time) -> Time:
        """Exact vacation slack of the hypothetical state at *release*.

        All jobs releasing exactly at *release* are active with full
        budgets; every other task contributes its own next release.
        Two deliberate tightenings versus the dispatch-time analysis:

        * a sleeping processor delays *every* arrival, not just the
          earliest-deadline job, so the vacation is constrained by
          every future deadline (``earliest_candidate=release``);
        * budgets are expressed against the statically scaled schedule
          (pace ``S``), so after the vacation the workload is still
          feasible *at the static speed* — the induction every capped
          DVS policy in this library relies on, which a full-speed
          vacation bound would silently break.
        """
        s = self._baseline_speed
        active = []
        next_release = {}
        for task in ctx.taskset:
            r = ctx.next_release_of(task.name)
            if abs(r - release) <= 1e-9:
                active.append(ActiveJob(deadline=r + task.deadline,
                                        remaining_wcet=task.wcet / s))
                next_release[task.name] = r + task.period
            else:
                next_release[task.name] = max(r, release)
        if not active:
            return 0.0
        state = SystemState.build(time=release, active=active,
                                  tasks=self._scaled_tasks,
                                  next_release=next_release)
        return exact_slack(state, earliest_candidate=release)

    def plan_idle(self, ctx: "SimContext", now: Time,
                  next_release: Time) -> IdlePlan:
        processor = self.processor
        wake = next_release
        if ctx.arrival_model.is_periodic:
            slack = self._release_state_slack(ctx, next_release)
            delay = max(0.0,
                        self.margin * slack - processor.wakeup_time)
            wake = next_release + delay
        duration = wake - now
        breakeven = processor.sleep_breakeven_time()
        if duration > breakeven and duration > processor.wakeup_time:
            return IdlePlan(sleep=True, wake_time=wake)
        return IdlePlan(sleep=False, wake_time=next_release)
