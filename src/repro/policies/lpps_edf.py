"""lppsEDF — low-power priority-based scheduling, EDF flavour.

After Shin & Choi's LPFPS transplanted to EDF, the form the DATE-era
comparisons use: the system normally runs at the statically scaled
speed, and when exactly one job is active *and* no other release will
interfere before it must finish, that lone job is stretched to the
earlier of its deadline and the next release time of any task.  This
reclaims only "tail" slack (single-job intervals), which is why it
saves less than the reclaiming/look-ahead schemes — the ordering the
figures reproduce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.cpu.processor import Processor
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class LppsEdfPolicy(DvsPolicy):
    """Stretch the lone active job to the next arrival; else static speed."""

    name = "lppsEDF"

    def __init__(self) -> None:
        super().__init__()
        self._static_speed: Speed = 1.0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._static_speed = max(minimum_constant_speed(taskset),
                                 processor.min_speed)

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        active = ctx.active_jobs
        if len(active) == 1:
            t = ctx.time
            fence = min(job.deadline, ctx.next_event_time())
            window = fence - t
            if window > 1e-12:
                # The stretched job must still fit its *worst-case*
                # budget before the fence; if even full speed cannot
                # (deadline pressure), run flat out.
                needed = job.remaining_wcet / window
                return max(self.min_speed, min(1.0, needed))
        return max(self._static_speed, self.min_speed)
