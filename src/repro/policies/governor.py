"""The runtime safety governor: faults degrade energy, never deadlines.

:class:`SafetyGovernor` wraps any :class:`~repro.policies.base.DvsPolicy`
and clamps every ``select_speed`` answer to a slack-based feasibility
floor.  The floor is the paper's own machinery pointed at the worst
case the deployment is provisioned for: at each dispatch the governor
rebuilds the schedule snapshot with every remaining budget inflated by
a *margin* (``margin * C_i - executed``), runs the exact slack analysis
against full-speed execution, and refuses to dispatch slower than

``floor = inflated_remaining / (inflated_remaining + slack)``

— the minimum constant speed that still fits the inflated budget of the
earliest-deadline job into its allotment.  By the induction of
DESIGN.md §4.3 this keeps every deadline as long as actual demands stay
within ``margin * C_i`` and the margin-inflated task set is feasible at
full speed (``sum margin * u_i <= 1``); under WCET-overrun injection
with factor ``<= margin`` the governed system therefore misses nothing
while the raw reclaiming policies do.

Interventions (floor above the inner policy's request) are counted,
exposed via :meth:`metrics` into ``SimulationResult.policy_metrics``,
and pinned to the trace as ``governor`` notes for audit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.slack import (
    ActiveJob,
    SystemState,
    exact_slack,
    stretch_speed,
)
from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class SafetyGovernor(DvsPolicy):
    """Clamp an inner policy's speed to a slack-based feasibility floor."""

    def __init__(self, inner: DvsPolicy, margin: float = 1.0,
                 window_cap_periods: float | None = 2.0) -> None:
        super().__init__()
        if margin < 1.0:
            raise ConfigurationError(
                f"governor margin must be >= 1, got {margin}")
        if window_cap_periods is not None and window_cap_periods <= 0:
            raise ConfigurationError(
                f"window_cap_periods must be > 0, got {window_cap_periods}")
        self.inner = inner
        self.margin = margin
        self.window_cap_periods = window_cap_periods
        self.name = f"gov({inner.name})"
        self._factors: dict[str, float] = {}
        self._inflated_tasks: tuple[PeriodicTask, ...] = ()
        self._interventions = 0
        self._dispatches = 0
        self._max_clamp = 0.0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self.inner.bind(taskset, processor)
        # Inflation is capped per task at deadline / wcet: beyond that
        # even a dedicated full-speed processor cannot finish the job,
        # so a larger margin buys nothing and would only break the
        # PeriodicTask wcet <= deadline invariant.
        self._factors = {
            t.name: min(self.margin, t.deadline / t.wcet) for t in taskset}
        self._inflated_tasks = tuple(
            t.scaled(self._factors[t.name]) for t in taskset)

    def reset(self) -> None:
        self._interventions = 0
        self._dispatches = 0
        self._max_clamp = 0.0

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_release(job, ctx)

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_completion(job, ctx)

    def _inflated_remaining(self, job: Job) -> float:
        budget = self._factors[job.task.name] * job.task.wcet
        return max(0.0, budget - job.executed)

    def feasibility_floor(self, job: Job, ctx: "SimContext") -> Speed:
        """Minimum safe dispatch speed under margin-inflated budgets."""
        remaining = self._inflated_remaining(job)
        if remaining <= 1e-12:
            # The job outran even the provisioned margin; nothing the
            # analysis promises still holds, so do not constrain.
            return 0.0
        active = tuple(
            ActiveJob(deadline=j.deadline,
                      remaining_wcet=self._inflated_remaining(j))
            for j in ctx.active_jobs)
        state = SystemState.build(
            time=ctx.time, active=active, tasks=self._inflated_tasks,
            next_release=ctx.next_release_map())
        slack = exact_slack(state,
                            window_cap_periods=self.window_cap_periods)
        if _TELEMETRY.enabled:
            _TELEMETRY.observe("governor.slack", slack)
        return stretch_speed(remaining, slack)

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        self._dispatches += 1
        desired = self.inner.select_speed(job, ctx)
        floor = self.feasibility_floor(job, ctx)
        if floor > desired + 1e-9:
            self._interventions += 1
            self._max_clamp = max(self._max_clamp, floor - desired)
            ctx.note("governor",
                     f"{job.name}: raised {desired:.4f} -> {floor:.4f}")
            if _TELEMETRY.enabled:
                _TELEMETRY.inc("governor.clamps")
                _TELEMETRY.observe("governor.clamp_magnitude",
                                   floor - desired)
                _TELEMETRY.emit("governor.clamp", job=job.name,
                                t=ctx.time, desired=round(desired, 6),
                                floor=round(floor, 6))
            return min(1.0, floor)
        return min(1.0, max(desired, floor))

    def metrics(self) -> dict[str, float]:
        inner_metrics = {f"inner.{k}": v
                         for k, v in self.inner.metrics().items()}
        return {
            "interventions": float(self._interventions),
            "dispatches": float(self._dispatches),
            "intervention_rate": (self._interventions / self._dispatches
                                  if self._dispatches else 0.0),
            "max_clamp": self._max_clamp,
            **inner_metrics,
        }

    def describe(self) -> str:
        return (f"governor(margin={self.margin:g}) "
                f"over {self.inner.describe()}")
