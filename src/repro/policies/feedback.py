"""Feedback-DVS: PID execution-time prediction with a hard safety net.

After the feedback-EDF lineage (Zhu & Mueller): each task carries a PID
predictor of its jobs' *actual* execution times; the dispatched job is
paced for its **predicted** remaining work — usually far below the
worst-case budget — so speeds dip deeper than budget-based schemes when
demand is steady.

The published feedback schemes guarantee deadlines by reserving the
unpredicted budget remainder at full speed; here the equivalent hard
guarantee comes from the paper's slack envelope: the final speed is
never below ``rem_wcet / (rem_wcet + slack_full)``, the exact
feasibility floor of the current state, so a wrong prediction costs
energy but never a deadline.  On truly random demand the predictor
learns nothing and the policy degrades toward lpSEH — the limitation
the slack-analysis paper holds against feedback schemes, reproducible
here with :class:`~repro.tasks.execution.BimodalExecution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.analysis.slack import heuristic_slack, scale_tasks
from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Speed, Work

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


@dataclass
class _PidState:
    """Per-task predictor state."""

    prediction: Work
    integral: float = 0.0
    last_error: float = 0.0


class FeedbackDvsPolicy(DvsPolicy):
    """PID-predicted pacing, floored by the exact slack envelope."""

    name = "feedback"

    def __init__(self, kp: float = 0.5, ki: float = 0.05,
                 kd: float = 0.1) -> None:
        super().__init__()
        for label, gain in (("kp", kp), ("ki", ki), ("kd", kd)):
            if gain < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {gain}")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self._pid: dict[str, _PidState] = {}
        self._baseline_speed: Speed = 1.0
        self._scaled_tasks: tuple[PeriodicTask, ...] = ()

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self._baseline_speed = max(minimum_constant_speed(taskset),
                                   processor.min_speed, 1e-9)
        self._scaled_tasks = scale_tasks(taskset.tasks,
                                         self._baseline_speed)

    def reset(self) -> None:
        assert self.taskset is not None
        # Cold-start at the worst case: safe and quickly corrected.
        self._pid = {t.name: _PidState(prediction=t.wcet)
                     for t in self.taskset}

    def prediction(self, task_name: str) -> Work:
        """Current execution-time prediction for one task."""
        return self._pid[task_name].prediction

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        state = self._pid[job.task.name]
        error = job.executed - state.prediction
        state.integral += error
        derivative = error - state.last_error
        state.last_error = error
        state.prediction += (self.kp * error + self.ki * state.integral
                             + self.kd * derivative)
        # Predictions outside (0, wcet] are meaningless.
        state.prediction = min(job.task.wcet,
                               max(1e-3 * job.task.wcet, state.prediction))

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        remaining = job.remaining_wcet
        if remaining <= 1e-12:
            return ctx.current_speed
        # Optimistic pace: spread the *predicted* remaining work over
        # the scaled allotment plus the (scaled) slack.
        predicted = self._pid[job.task.name].prediction
        w_hat = min(remaining, max(1e-9, predicted - job.executed))
        scaled_state = ctx.slack_state(
            baseline_speed=self._baseline_speed,
            scaled_tasks=self._scaled_tasks)
        slack_scaled = heuristic_slack(scaled_state)
        optimistic = w_hat / (w_hat / self._baseline_speed + slack_scaled)
        # Hard floor: the exact feasibility envelope of the worst case.
        slack_full = heuristic_slack(ctx.slack_state())
        required = remaining / (remaining + slack_full)
        return min(1.0, max(optimistic, required, self.min_speed))
