"""DVS policy interface.

A policy decides, at every dispatch point, what speed the processor
should run the chosen job at.  It sees only information that is
available online — remaining *worst-case* budgets, deadlines, release
times — never a job's actual demand (the clairvoyant oracle being the
explicitly marked exception).

Lifecycle: ``bind`` once per run, then any interleaving of
``on_release`` / ``on_completion`` notifications and ``select_speed``
queries.  Policies must be reusable: ``bind`` fully resets state so one
policy instance can serve many runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.cpu.processor import Processor
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class DvsPolicy(ABC):
    """Base class for dynamic voltage scaling policies."""

    #: Registry/reporting identifier; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self.taskset: TaskSet | None = None
        self.processor: Processor | None = None

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        """Attach to a run; resets all per-run state."""
        self.taskset = taskset
        self.processor = processor
        self.reset()

    def reset(self) -> None:
        """Clear per-run state; called by :meth:`bind`."""

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        """Notification: *job* was just released."""

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        """Notification: *job* just completed."""

    @abstractmethod
    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        """Desired speed for dispatching *job* now (pre-quantization).

        The engine quantizes the returned value *up* to an attainable
        level, so policies may return ideal continuous speeds.
        """

    def metrics(self) -> dict[str, float]:
        """Per-run policy-internal counters, folded into the result.

        The engine copies this into ``SimulationResult.policy_metrics``
        after every run, so wrappers (e.g. the safety governor) can
        report intervention counts without a side channel.
        """
        return {}

    @property
    def min_speed(self) -> Speed:
        """The bound processor's lowest speed (1.0 before binding)."""
        if self.processor is None:
            return 1.0
        return self.processor.min_speed

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name
