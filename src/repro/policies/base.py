"""DVS policy interface.

A policy decides, at every dispatch point, what speed the processor
should run the chosen job at.  It sees only information that is
available online — remaining *worst-case* budgets, deadlines, release
times — never a job's actual demand (the clairvoyant oracle being the
explicitly marked exception).

Lifecycle: ``bind`` once per run, then any interleaving of
``on_release`` / ``on_completion`` notifications and ``select_speed``
queries.  Policies must be reusable: ``bind`` fully resets state so one
policy instance can serve many runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.cpu.processor import Processor
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.types import Speed

#: Bucket edges for speed-decision histograms: speeds live in (0, 1].
SPEED_BOUNDS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class DvsPolicy(ABC):
    """Base class for dynamic voltage scaling policies."""

    #: Registry/reporting identifier; subclasses override.
    name: str = "abstract"

    #: Array-eval hook: the name of the vectorized dispatch kernel in
    #: :mod:`repro.sim.batch` that reproduces this policy's
    #: ``select_speed`` bitwise over 2-D (seed, task) arrays, or ``None``
    #: when the policy has no vector form and must run on the scalar
    #: engine.  Instances configured away from registry defaults must
    #: set this back to ``None`` (see LpStaPolicy).
    batch_kernel: str | None = None

    def __init__(self) -> None:
        self.taskset: TaskSet | None = None
        self.processor: Processor | None = None

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        """Attach to a run; resets all per-run state."""
        self.taskset = taskset
        self.processor = processor
        self.reset()

    def reset(self) -> None:
        """Clear per-run state; called by :meth:`bind`."""

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        """Notification: *job* was just released."""

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        """Notification: *job* just completed."""

    @abstractmethod
    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        """Desired speed for dispatching *job* now (pre-quantization).

        The engine quantizes the returned value *up* to an attainable
        level, so policies may return ideal continuous speeds.
        """

    def observe_decision(self, desired: Speed) -> None:
        """Record one speed decision into telemetry.

        Invoked by the engine at every dispatch — but only when the
        telemetry registry is enabled, so the disabled path never pays
        the call.  Wrappers inherit this; the counter is keyed by the
        (wrapped) policy's reporting name.
        """
        tele = _TELEMETRY
        if not tele.enabled:
            return
        tele.inc(f"policy.{self.name}.decisions")
        tele.observe(f"policy.{self.name}.speed", desired,
                     bounds=SPEED_BOUNDS)

    def observe_slack(self, slack: float) -> None:
        """Record one slack estimate into telemetry (analysis policies)."""
        tele = _TELEMETRY
        if tele.enabled:
            tele.observe(f"policy.{self.name}.slack", slack)

    def metrics(self) -> dict[str, float]:
        """Per-run policy-internal counters, folded into the result.

        The engine copies this into ``SimulationResult.policy_metrics``
        after every run, so wrappers (e.g. the safety governor) can
        report intervention counts without a side channel.
        """
        return {}

    @property
    def min_speed(self) -> Speed:
        """The bound processor's lowest speed (1.0 before binding)."""
        if self.processor is None:
            return 1.0
        return self.processor.min_speed

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name
