"""Overhead-aware wrapper around any DVS policy.

The base policies assume speed switches are free.  With a real
transition cost the naive schedules can (a) waste energy on
unprofitable switches and (b) — far worse — miss deadlines, because the
relock window executes nothing and *no policy's analysis accounted for
that lost time*.  The failure is subtle: the scaled-baseline slack
policies cap their speed at the static baseline, so once a few relock
gaps have eaten un-reserved slack the system is irrecoverably late even
though every individual decision looked safe.

This wrapper restores hard real-time behaviour with a per-dispatch
**safety floor** derived from the paper's own slack analysis against
full-speed execution:

* compute the conservative slack ``slack_full`` of the current state
  (baseline 1.0 — "if everything from now on ran at full speed");
* reserve relock time for this dispatch's own switch pair plus two
  switches for every release that can land inside the job's stretched
  window (each preemption forces an up-switch and a later resume);
* the job must then run at least at
  ``rem / (rem + max(0, slack_full - reserve))`` — which exceeds the
  static baseline whenever the system has fallen behind, providing the
  catch-up ability the capped inner policies lack.

The wrapped policy's speed is used as the energy target (its own
induction is gap-free and therefore only trusted as a *target*, never
as the safety authority); the dispatch runs at the maximum of target
and floor.  Slowdowns are additionally vetoed when the projected
active-energy saving does not pay for the switch energy
(**profitability**), with optional hysteresis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.slack import heuristic_slack
from repro.cpu.processor import Processor
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed, Time

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class OverheadAwarePolicy(DvsPolicy):
    """Wraps *inner*, keeping it safe and profitable under switch costs."""

    def __init__(self, inner: DvsPolicy, *, reserve_factor: float = 2.0,
                 hysteresis: float = 0.0) -> None:
        super().__init__()
        if reserve_factor < 1.0:
            raise ValueError(
                f"reserve_factor must be >= 1 (the switch itself), got "
                f"{reserve_factor}")
        if hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.inner = inner
        self.reserve_factor = reserve_factor
        self.hysteresis = hysteresis
        self.vetoed_switches = 0
        self.name = f"oa-{inner.name}"

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self.inner.bind(taskset, processor)

    def reset(self) -> None:
        self.vetoed_switches = 0

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_release(job, ctx)

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_completion(job, ctx)

    # ------------------------------------------------------------------

    def _switch_time_bound(self, ctx: "SimContext",
                           current: Speed, target: Speed) -> Time:
        """Worst relock window this dispatch may trigger."""
        processor = ctx.processor
        down, _ = processor.transition(current, target)
        up, _ = processor.transition(target, 1.0)
        return max(down, up)

    def _safety_floor(self, job: Job, ctx: "SimContext",
                      target: Speed, switch_time: Time) -> Speed:
        """Minimum safe speed given relock reserves.

        ``rem / (rem + usable_slack)`` where the usable slack is the
        conservative full-speed-baseline slack minus the relock reserve
        for this dispatch and for every release that can preempt the
        stretched run.
        """
        remaining = job.remaining_wcet
        t = ctx.time
        slack = heuristic_slack(ctx.slack_state())
        window = min(remaining / max(target, 1e-9),
                     max(0.0, job.deadline - t))
        releases_inside = 0
        for task in ctx.taskset:
            span = t + window - ctx.next_release_of(task.name)
            if span > 0:
                releases_inside += int(span / task.period) + 1
        reserve = switch_time * (2 * releases_inside
                                 + self.reserve_factor)
        usable = max(0.0, slack - reserve)
        return remaining / (remaining + usable)

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        processor = ctx.processor
        current = ctx.current_speed
        target = processor.quantize(self.inner.select_speed(job, ctx))
        if processor.transition_model.is_free:
            return target
        remaining = job.remaining_wcet
        if remaining <= 1e-12:
            return current

        switch_time = self._switch_time_bound(ctx, current, target)
        floor = self._safety_floor(job, ctx, target, switch_time)
        desired = processor.quantize(max(target, floor))

        if abs(desired - current) <= 1e-12:
            if target < current - 1e-12:
                # The inner wanted a slowdown but safety forbade it.
                self.vetoed_switches += 1
            return current
        if desired > current:
            # Speed-ups are correctness-driven: never veto them.
            return desired

        # --- slowdown profitability -----------------------------------
        dt, switch_energy = processor.transition(current, desired)
        run_time = remaining / desired
        energy_at_current = processor.active_energy(
            current, remaining / current)
        energy_at_new = processor.active_energy(desired, run_time)
        saving = energy_at_current - energy_at_new
        if saving <= switch_energy + self.hysteresis:
            self.vetoed_switches += 1
            return current
        return desired

    def describe(self) -> str:
        return (f"overhead-aware({self.inner.describe()}, "
                f"reserve={self.reserve_factor}, "
                f"hysteresis={self.hysteresis})")
