"""Critical-speed floor wrapper.

With leakage (a speed-independent power component while active), energy
per unit of work ``P(s)/s`` is no longer monotone: below the *critical
speed* ``s* = argmin P(s)/s`` stretching a job costs more total energy
than running it at ``s*`` and idling afterwards.  The early DVS papers
ignore leakage; the follow-up literature ("leakage-aware DVS")
introduces exactly this floor.

This wrapper clamps the inner policy's speed to ``max(inner, s*)``.
Clamping *up* can never violate a deadline (EDF execution-time
monotonicity), so safety is inherited from the inner policy.  The
energy effect is measured by EXP-F8.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cpu.processor import Processor
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class CriticalSpeedPolicy(DvsPolicy):
    """Clamp *inner*'s speed to at least the processor's critical speed."""

    def __init__(self, inner: DvsPolicy) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"cs-{inner.name}"
        self._floor: Speed = 0.0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        self.inner.bind(taskset, processor)
        self._floor = processor.quantize(
            processor.power_model.critical_speed())

    @property
    def critical_speed(self) -> Speed:
        """The (quantized) floor in force after binding."""
        return self._floor

    def on_release(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_release(job, ctx)

    def on_completion(self, job: Job, ctx: "SimContext") -> None:
        self.inner.on_completion(job, ctx)

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        return max(self.inner.select_speed(job, ctx), self._floor)

    def describe(self) -> str:
        return f"critical-speed-floor({self.inner.describe()})"
