"""LPFPS — low-power fixed-priority scheduling (Shin & Choi, DAC 1999).

The fixed-priority counterpart of lppsEDF, included as the substrate
baseline that lets the experiments contrast the paper's dynamic-priority
results with the RM world:

* when more than one job is ready, run at full speed (the original
  formulation — fixed-priority analysis gives no cheap utilization
  handle like EDF's);
* when exactly one job is active, stretch its remaining worst-case
  budget to the earlier of the next release of *any* task and its own
  deadline — slack that provably belongs to nobody else;
* (sleep states are modelled by the processor's idle power.)

Must be paired with :class:`repro.sim.scheduler.RMScheduler`; binding
verifies RM schedulability via exact response-time analysis and raises
:class:`InfeasibleTaskSetError` otherwise, since a hard guarantee under
RM needs more than ``U <= 1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.schedulability import rm_response_time_analysis
from repro.cpu.processor import Processor
from repro.errors import InfeasibleTaskSetError
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class LpfpsRmPolicy(DvsPolicy):
    """Shin & Choi's LPFPS under rate-monotonic scheduling."""

    name = "lpfpsRM"

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        analysis = rm_response_time_analysis(taskset)
        if not analysis.schedulable:
            worst = max(analysis.response_times,
                        key=analysis.response_times.get)
            raise InfeasibleTaskSetError(
                f"task set is not RM-schedulable at full speed "
                f"(task {worst!r} response "
                f"{analysis.response_times[worst]:.4g} exceeds its "
                f"deadline); LPFPS requires RM feasibility")

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        if len(ctx.active_jobs) == 1:
            t = ctx.time
            fence = min(job.deadline, ctx.next_event_time())
            window = fence - t
            if window > 1e-12:
                needed = job.remaining_wcet / window
                return max(self.min_speed, min(1.0, needed))
        return 1.0
