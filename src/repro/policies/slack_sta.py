"""lpSTA — the paper's exact slack-time-analysis DVS algorithm.

The analysis runs against the *statically scaled* EDF schedule: the
reference execution speed is ``S`` — the minimum feasible constant
speed (the utilization, for implicit deadlines) — so every budget is
``wcet / S`` wall time and the canonical schedule is exactly tight.
Whatever the online analysis then finds as slack is genuine earliness
produced by jobs finishing under budget, and the dispatched job absorbs
it:

``speed = rem / (rem / S + slack(t))    (<= S)``

Feasibility is re-established at every scheduling point, so the
algorithm is safe by the induction of DESIGN.md §4.3.  This is the
aggressive, higher-overhead variant; :mod:`repro.policies.slack_seh`
is the O(n) heuristic companion.

``baseline="full"`` selects the greedy ablation: slack measured against
full-speed execution, which hands the current job *all* the system's
slack (including the static headroom).  It is equally safe but — as the
EXP-F7 ablation bench shows — convex power punishes the resulting
slow-then-fast speed profile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.schedulability import minimum_constant_speed
from repro.analysis.slack import (
    allotted_speed,
    exact_slack,
    scale_tasks,
    stretch_speed,
)
from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class LpStaPolicy(DvsPolicy):
    """Exact slack-time-analysis DVS for EDF (the paper's algorithm)."""

    name = "lpSTA"
    batch_kernel = "lpsta"

    def __init__(self, window_cap_periods: float | None = 2.0,
                 baseline: str = "static") -> None:
        super().__init__()
        if window_cap_periods is not None and window_cap_periods <= 0:
            raise ConfigurationError(
                f"window_cap_periods must be > 0, got {window_cap_periods}")
        if baseline not in ("static", "full"):
            raise ConfigurationError(
                f"baseline must be 'static' or 'full', got {baseline!r}")
        self.window_cap_periods = window_cap_periods
        self.baseline = baseline
        if window_cap_periods != 2.0 or baseline != "static":
            # The vector kernel replicates only the registry default
            # configuration; non-default instances stay scalar.
            self.batch_kernel = None
        if baseline == "full":
            self.name = "lpSTA-greedy"
        self._baseline_speed: Speed = 1.0
        self._scaled_tasks: tuple[PeriodicTask, ...] = ()
        self._analysis_calls = 0

    def bind(self, taskset: TaskSet, processor: Processor) -> None:
        super().bind(taskset, processor)
        if self.baseline == "static":
            self._baseline_speed = max(minimum_constant_speed(taskset),
                                       processor.min_speed, 1e-9)
        else:
            self._baseline_speed = 1.0
        self._scaled_tasks = scale_tasks(taskset.tasks, self._baseline_speed)

    def reset(self) -> None:
        self._analysis_calls = 0

    @property
    def analysis_calls(self) -> int:
        """How many slack analyses the last run performed."""
        return self._analysis_calls

    @property
    def baseline_speed(self) -> Speed:
        """The reference speed the analysis measures slack against."""
        return self._baseline_speed

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        remaining = job.remaining_wcet
        if remaining <= 1e-12:
            # Budget exhausted (job about to finish on float dust).
            return ctx.current_speed
        state = ctx.slack_state(baseline_speed=self._baseline_speed,
                                scaled_tasks=self._scaled_tasks)
        # The analysis assumes the dispatched job has the earliest
        # deadline; the EDF scheduler guarantees it (equal deadlines
        # appear as candidate points either way).
        self._analysis_calls += 1
        slack = exact_slack(state,
                            window_cap_periods=self.window_cap_periods)
        self.observe_slack(slack)
        if self.baseline == "full":
            speed = stretch_speed(remaining, slack, self.min_speed)
        else:
            speed = allotted_speed(remaining, self._baseline_speed, slack,
                                   self.min_speed)
        return min(1.0, speed)

    def describe(self) -> str:
        window = (f"{self.window_cap_periods} max periods"
                  if self.window_cap_periods is not None
                  else "latest active deadline")
        return f"lpSTA(baseline={self.baseline}, window={window})"
