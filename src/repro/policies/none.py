"""The no-DVS baseline: everything runs at maximum speed."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class NoDvsPolicy(DvsPolicy):
    """Always full speed.

    This is the normalisation baseline of every figure: a plain EDF
    system without voltage scaling.  It also gives the most idle time,
    so with non-zero idle power it is *not* automatically the most
    expensive policy — exactly the effect the idle-power experiments
    probe.
    """

    name = "none"
    batch_kernel = "full_speed"

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        return 1.0
