"""Policy registry: name -> factory.

Experiments and the CLI refer to policies by the names the figures use;
this module is the single source of truth for that mapping.
"""

from __future__ import annotations

from typing import Callable

from repro.policies.base import DvsPolicy
from repro.policies.ccedf import CcEdfPolicy
from repro.policies.clairvoyant import ClairvoyantPolicy
from repro.policies.critical_speed import CriticalSpeedPolicy
from repro.policies.dra import DraPolicy
from repro.policies.feedback import FeedbackDvsPolicy
from repro.policies.governor import SafetyGovernor
from repro.policies.laedf import LaEdfPolicy
from repro.policies.lpps_edf import LppsEdfPolicy
from repro.policies.none import NoDvsPolicy
from repro.policies.overhead_aware import OverheadAwarePolicy
from repro.policies.slack_seh import LpSehPolicy
from repro.policies.slack_sta import LpStaPolicy
from repro.policies.static_edf import StaticEdfPolicy

#: All selectable policies, in the canonical plotting order.
POLICY_FACTORIES: dict[str, Callable[[], DvsPolicy]] = {
    "none": NoDvsPolicy,
    "static": StaticEdfPolicy,
    "ccEDF": CcEdfPolicy,
    "lppsEDF": LppsEdfPolicy,
    "DRA": DraPolicy,
    "laEDF": LaEdfPolicy,
    "feedback": FeedbackDvsPolicy,
    "lpSEH": LpSehPolicy,
    "lpSTA": LpStaPolicy,
    "clairvoyant": ClairvoyantPolicy,
}

#: The online policies a deployment could actually choose from
#: (clairvoyant is an oracle, none/static are reference points).
ONLINE_POLICY_NAMES: tuple[str, ...] = (
    "ccEDF", "lppsEDF", "DRA", "laEDF", "feedback", "lpSEH", "lpSTA")

#: Everything, in figure order.
ALL_POLICY_NAMES: tuple[str, ...] = tuple(POLICY_FACTORIES)


def batch_eligible_names() -> tuple[str, ...]:
    """Registry names whose default-constructed policy carries a
    ``batch_kernel`` (the array-eval hook on :class:`DvsPolicy`), i.e.
    the policies :mod:`repro.sim.batch` can vectorize.  Wrapped or
    non-default instances (governors, overhead-aware, custom factories)
    never batch regardless of this list."""
    return tuple(name for name, factory in POLICY_FACTORIES.items()
                 if getattr(factory, "batch_kernel", None))


def make_policy(name: str, *, overhead_aware: bool = False,
                reserve_factor: float = 2.0,
                hysteresis: float = 0.0,
                critical_speed_floor: bool = False,
                governed: bool = False,
                governor_margin: float = 1.0) -> DvsPolicy:
    """Instantiate a policy by registry name.

    ``overhead_aware=True`` wraps the policy so it stays safe and
    profitable under non-zero transition costs;
    ``critical_speed_floor=True`` additionally clamps speeds to the
    processor's leakage-aware critical speed (applied innermost);
    ``governed=True`` wraps the result (outermost) in a
    :class:`~repro.policies.governor.SafetyGovernor` with
    ``margin=governor_margin`` so even faulted workloads cannot miss
    deadlines the provisioned margin covers.
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(POLICY_FACTORIES)
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    policy = factory()
    if critical_speed_floor:
        policy = CriticalSpeedPolicy(policy)
    if overhead_aware:
        policy = OverheadAwarePolicy(policy, reserve_factor=reserve_factor,
                                     hysteresis=hysteresis)
    if governed:
        policy = SafetyGovernor(policy, margin=governor_margin)
    return policy
