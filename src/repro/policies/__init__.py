"""DVS policies: the paper's slack-time-analysis algorithms + baselines."""

from repro.policies.base import DvsPolicy
from repro.policies.none import NoDvsPolicy
from repro.policies.static_edf import StaticEdfPolicy
from repro.policies.ccedf import CcEdfPolicy
from repro.policies.laedf import LaEdfPolicy
from repro.policies.lpps_edf import LppsEdfPolicy
from repro.policies.critical_speed import CriticalSpeedPolicy
from repro.policies.dra import DraPolicy
from repro.policies.feedback import FeedbackDvsPolicy
from repro.policies.governor import SafetyGovernor
from repro.policies.lpfps_rm import LpfpsRmPolicy
from repro.policies.slack_sta import LpStaPolicy
from repro.policies.slack_seh import LpSehPolicy
from repro.policies.clairvoyant import ClairvoyantPolicy
from repro.policies.overhead_aware import OverheadAwarePolicy
from repro.policies.procrastination import (
    IdlePlan,
    IdlePolicy,
    NeverSleepIdlePolicy,
    SleepOnIdlePolicy,
    ProcrastinationIdlePolicy,
)
from repro.policies.registry import (
    POLICY_FACTORIES,
    ONLINE_POLICY_NAMES,
    ALL_POLICY_NAMES,
    make_policy,
)

__all__ = [
    "DvsPolicy",
    "NoDvsPolicy",
    "StaticEdfPolicy",
    "CcEdfPolicy",
    "LaEdfPolicy",
    "LppsEdfPolicy",
    "DraPolicy",
    "CriticalSpeedPolicy",
    "FeedbackDvsPolicy",
    "LpfpsRmPolicy",
    "SafetyGovernor",
    "LpStaPolicy",
    "LpSehPolicy",
    "ClairvoyantPolicy",
    "OverheadAwarePolicy",
    "IdlePlan",
    "IdlePolicy",
    "NeverSleepIdlePolicy",
    "SleepOnIdlePolicy",
    "ProcrastinationIdlePolicy",
    "POLICY_FACTORIES",
    "ONLINE_POLICY_NAMES",
    "ALL_POLICY_NAMES",
    "make_policy",
]
