"""Clairvoyant oracle policy — the fluid-optimal reference floor.

The oracle knows every job's *actual* execution demand, including
future jobs', and at every scheduling point runs at the **YDS
intensity** from the current instant:

``s*(t) = max over deadlines d_k  of  h_act(t, d_k) / (d_k - t)``

where ``h_act`` is the *actual* demand (remaining actual work of active
jobs plus actual work of future releases) due by ``d_k``.  This is the
lowest constant-from-now speed that meets every deadline given perfect
knowledge, re-evaluated whenever the workload changes — the discrete-
event analogue of the Yao/Demers/Shenker fluid schedule.  With convex
power it yields the smooth, near-optimal profile the figures plot as
the floor that shows how much of the knowable headroom each online
policy captures.

Safety: running at ``max_k h(t, d_k)/(d_k - t)`` satisfies the
processor-demand criterion for every deadline by construction, and the
speed is re-derived at every scheduling point.  The maximisation is
evaluated over the analysis window plus a worst-case linear tail bound,
so deadlines beyond the window are covered conservatively.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask
from repro.types import Speed, Time, Work

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class ClairvoyantPolicy(DvsPolicy):
    """YDS-intensity oracle with perfect workload knowledge."""

    name = "clairvoyant"

    def __init__(self, window_cap_periods: float = 4.0) -> None:
        super().__init__()
        self.window_cap_periods = window_cap_periods
        self._work_cache: dict[tuple[str, int], float] = {}
        # Per task, the (absolute deadline, actual work) of its future
        # jobs by index, grown lazily.  Deadlines are monotone in the
        # job index (arrivals are monotone, the relative deadline is a
        # constant offset), so each intensity() call takes the events
        # inside its window by binary search instead of re-querying the
        # arrival oracle job by job.
        self._event_cache: dict[str, tuple[list[Time], list[Work]]] = {}
        self._max_period: Time = 0.0

    def bind(self, taskset, processor) -> None:
        super().bind(taskset, processor)
        self._max_period = max(task.period for task in taskset)

    def reset(self) -> None:
        self._work_cache = {}
        self._event_cache = {}

    # -- oracle workload knowledge ---------------------------------------

    def _work(self, ctx: "SimContext", task: PeriodicTask,
              index: int) -> float:
        """Memoised actual demand (execution models hash per query)."""
        key = (task.name, index)
        cached = self._work_cache.get(key)
        if cached is None:
            cached = ctx.execution_model.work(task, index)
            self._work_cache[key] = cached
        return cached

    def _task_events(self, ctx: "SimContext", task: PeriodicTask,
                     window_end: Time) -> tuple[list[Time], list[Work]]:
        """Cached (deadline, work) streams of *task*, grown past the window."""
        cached = self._event_cache.get(task.name)
        if cached is None:
            cached = ([], [])
            self._event_cache[task.name] = cached
        deadlines, works = cached
        arrivals = ctx.arrival_model
        fence = window_end + 1e-12
        while not deadlines or deadlines[-1] <= fence:
            k = len(deadlines)
            deadlines.append(arrivals.arrival_time(task, k) + task.deadline)
            works.append(self._work(ctx, task, k))
        return cached

    # -- the YDS intensity -------------------------------------------------

    def intensity(self, ctx: "SimContext") -> Speed:
        """``max_k h_act(t, d_k) / (d_k - t)`` over the analysis window."""
        t = ctx.time
        active = list(ctx.active_jobs)
        if not active:
            return 0.0
        tasks = ctx.taskset.tasks
        max_period = self._max_period
        if max_period <= 0.0:
            max_period = max(task.period for task in tasks)
        latest_active = max(j.deadline for j in active)
        # Obligations end at the simulation horizon, so the analysis
        # window never needs to extend beyond it.
        window_end = min(
            ctx.horizon,
            max(latest_active, t + self.window_cap_periods * max_period))

        # Demand events at each deadline in the window: active jobs step
        # in with their actual remaining work, future jobs with their
        # actual demand, one event per job at its own deadline.  The
        # oracle is allowed to read both workload oracles: actual
        # execution demands and actual (possibly sporadic) arrivals.
        fence = window_end + 1e-12
        events: list[tuple[Time, Work]] = [
            (j.deadline, j.remaining_work) for j in active]
        extend = events.extend
        for task in tasks:
            k0 = ctx.next_job_index(task.name)
            deadlines, works = self._task_events(ctx, task, window_end)
            hi = bisect_right(deadlines, fence)
            if hi > k0:
                extend(zip(deadlines[k0:hi], works[k0:hi]))
        events.sort(key=lambda e: e[0])

        best = 0.0
        h = 0.0
        i = 0
        n = len(events)
        while i < n:
            d_k = events[i][0]
            while i < n and events[i][0] <= d_k + 1e-12:
                h += events[i][1]
                i += 1
            span = d_k - t
            if span > 1e-12 and d_k <= window_end + 1e-9:
                best = max(best, h / span)
        return best

    # -- policy ------------------------------------------------------------

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        return max(self.min_speed, min(1.0, self.intensity(ctx)))
