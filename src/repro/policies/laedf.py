"""Look-ahead EDF (Pillai & Shin, SOSP 2001).

The aggressive member of the RT-DVS pair: instead of tracking used
utilization, laEDF *defers* as much work as possible past the earliest
active deadline ``d_n`` — each task, visited from the latest deadline
backwards, keeps only the work that provably cannot wait — and runs
just fast enough (``s / (d_n - t)``) to clear the non-deferrable part
before ``d_n``.

**Safety note.**  The published deferral formula is a heuristic: its
``(1 - U)``-bandwidth reservation is fluid — it ignores the release
granularity of short-period tasks competing with already-deferred
work — and in loaded corner cases it over-defers until even full speed
cannot catch up (``tests/test_policies_safety.py`` reproduces such a
miss).  By default this implementation therefore floors the deferral
speed with the *slack-analysis safety envelope*: the dispatched job may
take at most ``rem + slack(t)`` wall time, where ``slack`` is the
(conservative) heuristic slack against full-speed execution — any speed
inside that envelope is feasible by the induction of DESIGN.md §4.3.
Pass ``safe=False`` for the verbatim published formula (the engine will
raise on the resulting misses unless ``allow_misses`` is set).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.slack import heuristic_slack
from repro.policies.base import DvsPolicy
from repro.tasks.job import Job
from repro.types import Speed

if TYPE_CHECKING:
    from repro.sim.engine import SimContext


class LaEdfPolicy(DvsPolicy):
    """Look-ahead RT-DVS for EDF."""

    name = "laEDF"

    def __init__(self, safe: bool = True) -> None:
        super().__init__()
        self.safe = safe
        if not safe:
            self.name = "laEDF-raw"

    # -- the published deferral computation ------------------------------

    def deferral_speed(self, ctx: "SimContext") -> Speed:
        """The raw look-ahead speed ``s / (d_n - t)`` (may exceed 1)."""
        t = ctx.time
        active = ctx.active_jobs
        if not active:
            return 0.0
        d_n = min(j.deadline for j in active)
        horizon = d_n - t
        if horizon <= 1e-12:
            return 1.0

        # Per-task view: remaining budget and deadline of the current
        # incomplete job (tasks without one defer trivially; keeping
        # their utilization inside `u` for the whole loop reserves
        # bandwidth for their future jobs at every span, which is at
        # least as conservative as any iteration position for them).
        entries = [(j.deadline, j.remaining_wcet, j.task.utilization)
                   for j in active]
        # Visit from the latest deadline backwards (Pillai & Shin Fig. 4).
        entries.sort(key=lambda e: e[0], reverse=True)
        u = sum(task.utilization for task in ctx.taskset)
        s = 0.0
        for deadline, c_left, task_util in entries:
            u -= task_util
            span = deadline - d_n
            if span > 1e-12:
                # Defer everything the spare bandwidth (1 - u) after d_n
                # can absorb; the remainder x must run before d_n.
                x = max(0.0, c_left - (1.0 - u) * span)
                u += (c_left - x) / span
            else:
                # The earliest-deadline task cannot defer anything.
                x = c_left
            s += x
        return s / horizon

    def select_speed(self, job: Job, ctx: "SimContext") -> Speed:
        speed = self.deferral_speed(ctx)
        if self.safe:
            remaining = job.remaining_wcet
            if remaining > 1e-12:
                slack = heuristic_slack(ctx.slack_state())
                speed = max(speed, remaining / (remaining + slack))
        return max(self.min_speed, min(1.0, speed))
