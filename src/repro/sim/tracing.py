"""Schedule trace recording.

A trace is a gap-free sequence of segments covering ``[0, horizon]``:
every instant is either running one job at one speed, idling, or inside
a speed transition.  Traces back the validation layer
(:mod:`repro.analysis.validation`), the examples' Gantt rendering, and
several tests; recording can be disabled for large sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.errors import SimulationError
from repro.types import SPEED_EPS, TIME_EPS, Energy, Speed, Time


class SegmentKind(Enum):
    """What the processor was doing during a segment."""

    RUN = "run"
    IDLE = "idle"
    SWITCH = "switch"
    SLEEP = "sleep"


@dataclass(frozen=True)
class TraceNote:
    """A zero-duration annotation pinned to one instant of the trace.

    Notes carry events that are not processor activity — governor
    interventions, injected transition faults, detected overruns — so
    they live beside the segment sequence rather than inside it and do
    not participate in the gap-free-coverage invariant.
    """

    time: Time
    kind: str
    detail: str


@dataclass(frozen=True)
class Segment:
    """One homogeneous stretch of processor activity."""

    start: Time
    end: Time
    kind: SegmentKind
    speed: Speed
    energy: Energy
    job: str | None = None
    task: str | None = None

    @property
    def duration(self) -> Time:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start - SPEED_EPS:
            raise SimulationError(
                f"segment ends before it starts: [{self.start}, {self.end}]")


class TraceRecorder:
    """Collects segments; merges adjacent identical ones.

    ``enabled`` gates only the *segment* stream — the part whose cost
    scales with the schedule length.  Notes are always buffered: they
    record rare, audit-critical events (governor interventions,
    injected faults, overruns), and disabling tracing for a large
    sweep must not silently drop them (they surface on
    :attr:`repro.sim.results.SimulationResult.notes` either way).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._segments: list[Segment] = []
        self._notes: list[TraceNote] = []

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def notes(self) -> tuple[TraceNote, ...]:
        return tuple(self._notes)

    def note(self, time: Time, kind: str, detail: str) -> None:
        """Record an instantaneous annotation (kept even when disabled)."""
        self._notes.append(TraceNote(time=time, kind=kind, detail=detail))

    def notes_of_kind(self, kind: str) -> tuple[TraceNote, ...]:
        return tuple(n for n in self._notes if n.kind == kind)

    def record(self, segment: Segment) -> None:
        """Append a segment (no-op when disabled; merges contiguous twins)."""
        if not self.enabled:
            return
        if segment.duration <= 0:
            return
        if self._segments:
            last = self._segments[-1]
            if segment.start < last.end - TIME_EPS:
                raise SimulationError(
                    f"overlapping segments: previous ends at {last.end}, "
                    f"new starts at {segment.start}")
            if (segment.kind == last.kind and segment.job == last.job
                    and abs(segment.speed - last.speed) < SPEED_EPS
                    and abs(segment.start - last.end) < TIME_EPS):
                merged = Segment(
                    start=last.start, end=segment.end, kind=last.kind,
                    speed=last.speed, energy=last.energy + segment.energy,
                    job=last.job, task=last.task)
                self._segments[-1] = merged
                return
        self._segments.append(segment)

    def run(self, start: Time, end: Time, job: str, task: str,
            speed: Speed, energy: Energy) -> None:
        """Record a job-execution segment."""
        self.record(Segment(start=start, end=end, kind=SegmentKind.RUN,
                            speed=speed, energy=energy, job=job, task=task))

    def idle(self, start: Time, end: Time, energy: Energy) -> None:
        """Record an idle segment."""
        self.record(Segment(start=start, end=end, kind=SegmentKind.IDLE,
                            speed=0.0, energy=energy))

    def switch(self, start: Time, end: Time, energy: Energy,
               to_speed: Speed) -> None:
        """Record a speed-transition segment."""
        self.record(Segment(start=start, end=end, kind=SegmentKind.SWITCH,
                            speed=to_speed, energy=energy))

    def sleep(self, start: Time, end: Time, energy: Energy) -> None:
        """Record a sleep episode (incl. its wake-up window)."""
        self.record(Segment(start=start, end=end, kind=SegmentKind.SLEEP,
                            speed=0.0, energy=energy))

    def total_energy(self) -> Energy:
        return sum(s.energy for s in self._segments)

    def busy_time(self) -> Time:
        return sum(s.duration for s in self._segments
                   if s.kind == SegmentKind.RUN)

    def idle_time(self) -> Time:
        return sum(s.duration for s in self._segments
                   if s.kind == SegmentKind.IDLE)

    def executed_work(self, job: str | None = None) -> float:
        """Work retired (speed x duration), optionally for one job."""
        return sum(s.duration * s.speed for s in self._segments
                   if s.kind == SegmentKind.RUN
                   and (job is None or s.job == job))

    def render_gantt(self, width: int = 80, end: Time | None = None) -> str:
        """A coarse ASCII Gantt strip (one char per time bucket).

        One merge-walk over the (sorted) segment list: bucket midpoints
        and segments advance together, so rendering is O(width +
        segments) instead of rescanning the whole list per bucket.
        Buckets outside every segment — beyond the end of the trace, or
        inside a genuine recording gap — render as ``_``, distinct from
        ``.`` which marks *recorded* idle time.
        """
        if not self._segments:
            return "(empty trace)"
        horizon = end if end is not None else self._segments[-1].end
        if horizon <= 0:
            return "(empty trace)"
        bucket = horizon / width
        segments = self._segments
        chars = []
        cursor = 0
        for i in range(width):
            t_mid = (i + 0.5) * bucket
            while cursor < len(segments) and segments[cursor].end <= t_mid:
                cursor += 1
            if cursor >= len(segments) or segments[cursor].start > t_mid:
                chars.append("_")  # unrecorded: past the trace, or a gap
                continue
            seg = segments[cursor]
            if seg.kind == SegmentKind.IDLE:
                chars.append(".")
            elif seg.kind == SegmentKind.SWITCH:
                chars.append("|")
            elif seg.kind == SegmentKind.SLEEP:
                chars.append("z")
            else:
                chars.append((seg.task or "?")[0].upper())
        return "".join(chars)
