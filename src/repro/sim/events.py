"""A small, deterministic discrete-event queue.

The periodic engine only needs "next release" bookkeeping, but the
sporadic/aperiodic extensions (see :mod:`repro.tasks`) and tests use a
general event queue.  Ordering is total: time, then an explicit kind
priority (completions drain before releases at the same instant), then
a monotone sequence number — so simulations are bit-for-bit
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

from repro.errors import SimulationError
from repro.types import Time


class EventKind(IntEnum):
    """Event classes in drain order at equal timestamps."""

    COMPLETION = 0
    RELEASE = 1
    TIMER = 2


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence."""

    time: Time
    kind: EventKind
    payload: Any = None
    seq: int = field(default=0, compare=False)

    def sort_key(self) -> tuple:
        return (self.time, int(self.kind), self.seq)


class EventQueue:
    """A heap of :class:`Event` with stable, deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, Event]] = []
        self._counter = itertools.count()
        self._last_popped: Time | None = None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: Time, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; events may not be scheduled in the past."""
        if self._last_popped is not None and time < self._last_popped - 1e-12:
            raise SimulationError(
                f"event at {time} scheduled before already-processed time "
                f"{self._last_popped}")
        event = Event(time=time, kind=kind, payload=payload,
                      seq=next(self._counter))
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def peek(self) -> Event:
        """The next event without removing it."""
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0][1]

    def pop(self) -> Event:
        """Remove and return the next event."""
        if not self._heap:
            raise SimulationError("pop on empty event queue")
        event = heapq.heappop(self._heap)[1]
        self._last_popped = event.time
        return event

    def next_time(self) -> Time | None:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0][1].time if self._heap else None
