"""Ready-queue schedulers.

EDF is the dynamic-priority policy the paper targets; rate-monotonic and
FIFO are included as substrate baselines (and to validate the kernel
against classical analyses).  A scheduler is a pure priority function
over released, incomplete jobs — preemption falls out of the engine
re-picking at every scheduling point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.tasks.job import Job


class Scheduler(ABC):
    """Picks the job to run among the ready ones."""

    name: str = "abstract"

    @abstractmethod
    def sort_key(self, job: Job) -> tuple:
        """Total priority order; the minimum key runs.

        Keys must be unique per job (include stable tie-breaks) so the
        schedule is deterministic.
        """

    def pick(self, ready: Sequence[Job]) -> Job | None:
        """The highest-priority ready job, or ``None`` when idle."""
        if not ready:
            return None
        if len(ready) == 1:
            return ready[0]
        return min(ready, key=self.sort_key)

    def sorted_ready(self, ready: Sequence[Job]) -> list[Job]:
        """Ready jobs from highest to lowest priority."""
        return sorted(ready, key=self.sort_key)


class EDFScheduler(Scheduler):
    """Earliest deadline first; ties by release time, then task name.

    The tie-breaks make simulated schedules reproducible and match the
    determinism assumption of the slack analysis (a job reported as
    "earliest deadline" really is the one dispatched).
    """

    name = "edf"

    def sort_key(self, job: Job) -> tuple:
        return (job.deadline, job.release, job.task.name, job.index)


class RMScheduler(Scheduler):
    """Rate monotonic: shorter period = higher priority (static)."""

    name = "rm"

    def sort_key(self, job: Job) -> tuple:
        return (job.task.period, job.task.name, job.index)


class FIFOScheduler(Scheduler):
    """First released runs first; no preemption benefit, baseline only."""

    name = "fifo"

    def sort_key(self, job: Job) -> tuple:
        return (job.release, job.task.name, job.index)
