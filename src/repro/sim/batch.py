"""Vectorized multi-seed batch engine for one sweep cell.

The scalar engine (:mod:`repro.sim.engine`) simulates one (taskset, seed,
policy) run at a time.  A sweep cell is N near-identical runs that differ
only in the seeded workload, so this module steps *all* seeds of one cell
— and all batch-eligible policies — in lockstep: 2-D numpy arrays over
(policy x seed, task) hold remaining work, release times, absolute
deadlines and per-row clocks/speeds, with vectorized EDF selection and a
vectorized port of the exact slack-time analysis for the array-friendly
policies.

Byte-identity contract
----------------------
The batch engine exists purely as an execution strategy: for every seed it
completes, the resulting :class:`~repro.experiments.cache.PolicySummary`
values are bitwise identical to what the scalar engine produces (same
fingerprints, same cache payloads).  That is achievable because every
floating-point expression here replicates the scalar engine's operation
order exactly (e.g. repeated ``deadline += period`` becomes ``np.cumsum``,
which accumulates sequentially; python ``sum`` over non-negative floats
equals a zero-padded ``np.cumsum`` tail; ``speed ** alpha`` goes through
libm ``pow`` because numpy's vectorized pow may differ by an ulp).
Whenever a seed strays anywhere the lockstep loop cannot reproduce
bit-for-bit — a deadline miss, a policy error, a degenerate taskset, an
ambiguous slack grouping — the seed is *flagged* and handed back to the
caller, which re-runs it on the scalar engine.  The differential guard
(``tests/test_batch_engine.py``, ``scripts/batch_gate.py`` and
``bench_record.py --check``) enforces the contract continuously.

Eligibility
-----------
Policies advertise vector support through the ``batch_kernel`` hook on
:class:`repro.policies.base.DvsPolicy`; the kernels implemented here cover
``none``, ``static``, ``ccEDF`` and ``lpSTA``.  Runs with faults, tracing,
audit, chaos, telemetry, custom factories or governor wrapping always use
the scalar engine (see :func:`decide_batch`).  When numpy is not
installed, :func:`batch_available` is False and every sweep silently runs
scalar; ``batch="on"`` raises a clear error instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

from repro.analysis.schedulability import minimum_constant_speed
from repro.analysis.slack import scale_tasks
from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.cpu.transition import NoOverhead
from repro.errors import ExperimentError
from repro.profiling import PROFILER as _PROFILER
from repro.types import DEADLINE_EPS, SPEED_EPS, TIME_EPS, WORK_EPS

__all__ = [
    "BATCH_AUTO_MIN_SEEDS",
    "BATCH_MODES",
    "BatchDecision",
    "batch_available",
    "batch_eligible_policies",
    "decide_batch",
    "numpy_missing_message",
    "run_batch_suites",
]

BATCH_MODES = ("auto", "on", "off")

#: Window cap used by the default lpSTA policy; the vector slack kernel
#: is only valid for the default configuration (make_policy defaults).
_LPSTA_WINDOW_CAP = 2.0

#: Epsilon used by exact_slack when grouping deadlines / bounding the window.
_SLACK_EPS = 1e-12

_NUMPY_HINT = (
    "repro.sim.batch requires numpy (declared in pyproject.toml "
    "dependencies) but it is not importable in this environment. "
    "Install it with 'pip install numpy' to enable batched sweeps; "
    "until then every sweep automatically falls back to the scalar "
    "engine (results are identical, only slower)."
)

#: Debug tap: set to a list to record (speed, duration, energy) for every
#: vector dispatch, in execution order.  Used by the differential tests.
_DEBUG = None

#: Measured scalar/batch crossover: below this many seeds per group the
#: numpy dispatch overhead outweighs the vectorization win (~0.8x at 4
#: seeds, ~1.2x at 8, ~2x at 32, >5x at 256 on the reference host), so
#: ``batch="auto"`` only batches groups with at least this many uncached
#: seeds.  ``batch="on"`` forces batching down to 2 seeds — the
#: differential gates rely on that to exercise the vector kernels on
#: small cells.
BATCH_AUTO_MIN_SEEDS = 8


def batch_available() -> bool:
    """True when numpy is importable and batching can run at all."""

    return _np is not None


def numpy_missing_message() -> str:
    """The human-readable explanation used when numpy is absent."""

    return _NUMPY_HINT


def batch_eligible_policies() -> tuple[str, ...]:
    """Registry policy names whose default instances expose a batch kernel."""

    from repro.policies.registry import batch_eligible_names

    return batch_eligible_names()


@dataclass(frozen=True)
class BatchDecision:
    """Outcome of :func:`decide_batch`: whether to batch, and why (not).

    ``min_seeds`` is the smallest group of uncached seeds worth
    vectorizing under the decided mode (crossover-guarded for ``auto``,
    2 for a forced ``on``); smaller groups run scalar either way.
    """

    use: bool
    reason: str
    min_seeds: int = 2


def decide_batch(
    mode: str,
    *,
    policy_names: Sequence[str],
    overhead_aware: bool = False,
    policy_factory: Optional[Callable] = None,
    faults_factory: Optional[Callable] = None,
    audit_every: Optional[int] = None,
    unit_timeout: Optional[float] = None,
    chaos: object = None,
    telemetry_enabled: bool = False,
) -> BatchDecision:
    """Decide whether a sweep may use the batch engine.

    ``mode`` is ``"auto"``, ``"on"`` or ``"off"``.  ``auto`` batches only
    when at least one requested policy is batch-eligible and nothing in
    the sweep requires per-run engine instrumentation (faults, audit,
    chaos, telemetry, per-unit deadlines, custom factories).  ``on``
    raises :class:`ExperimentError` with the blocking reasons instead of
    silently degrading; ``off`` never batches.
    """

    if mode not in BATCH_MODES:
        raise ExperimentError(
            f"batch mode must be one of {BATCH_MODES}, got {mode!r}"
        )
    if mode == "off":
        return BatchDecision(False, "batch=off")
    reasons = []
    if _np is None:
        reasons.append(_NUMPY_HINT)
    eligible = set(batch_eligible_policies())
    if not any(name in eligible for name in policy_names):
        reasons.append(
            "no batch-eligible policy requested (eligible: "
            + ", ".join(sorted(eligible))
            + ")"
        )
    if overhead_aware:
        reasons.append("overhead_aware wraps policies with governors")
    if policy_factory is not None:
        reasons.append("custom policy_factory supplies opaque policies")
    if faults_factory is not None:
        reasons.append("fault injection requires the scalar engine")
    if audit_every is not None:
        reasons.append("spot audit traces individual runs")
    if unit_timeout is not None:
        reasons.append("per-unit deadlines require per-unit execution")
    if chaos is not None:
        reasons.append("chaos injection hooks fire per unit")
    if telemetry_enabled:
        reasons.append("telemetry counters are folded per scalar run")
    if not reasons:
        return BatchDecision(
            True, "eligible",
            BATCH_AUTO_MIN_SEEDS if mode == "auto" else 2)
    text = "; ".join(reasons)
    if mode == "on":
        raise ExperimentError(
            "batch='on' requested but the sweep is not batch-eligible: "
            + text
        )
    return BatchDecision(False, text)


def _processor_supported(processor: Processor) -> bool:
    """Only the ideal analytic processor model is replicated bitwise."""

    return (
        type(processor.scale) is ContinuousScale
        and type(processor.power_model) is PolynomialPowerModel
        and type(processor.transition_model) is NoOverhead
        and processor.sleep_power == 0.0
    )


class _Fallback(Exception):
    """Internal: this seed cannot be batched; run it on the scalar engine."""


def run_batch_suites(
    x: float,
    seeds: Sequence[int],
    *,
    make_workload: Callable,
    policy_names: Sequence[str],
    processor: Processor,
    horizon: float,
    allow_misses: bool = False,
):
    """Profiling seam: ``engine.batch`` wraps the vectorized cell run.

    Scalar fallback runs the batch engine triggers nest their own
    ``engine.run`` frames inside this one; self-time accounting keeps
    the two attributions disjoint.  See :func:`_run_batch_suites` for
    the actual contract.
    """
    prof = _PROFILER
    if not prof.enabled:
        return _run_batch_suites(
            x, seeds, make_workload=make_workload,
            policy_names=policy_names, processor=processor,
            horizon=horizon, allow_misses=allow_misses)
    prof.push("engine.batch")
    try:
        return _run_batch_suites(
            x, seeds, make_workload=make_workload,
            policy_names=policy_names, processor=processor,
            horizon=horizon, allow_misses=allow_misses)
    finally:
        prof.pop()


def _run_batch_suites(
    x: float,
    seeds: Sequence[int],
    *,
    make_workload: Callable,
    policy_names: Sequence[str],
    processor: Processor,
    horizon: float,
    allow_misses: bool = False,
):
    """Run one cell's policy suites for many seeds in lockstep.

    Returns a list aligned with ``seeds`` where each entry is either a
    ``{policy_name: PolicySummary}`` dict (bitwise identical to the
    scalar ``run_suite`` result for that seed) or ``None``, meaning the
    caller must run that seed on the scalar engine (this covers both
    genuinely ineligible seeds and seeds whose scalar run would raise —
    the scalar fallback reproduces errors and retry semantics exactly).
    Returns ``None`` for the whole cell when batching is impossible for
    every seed (e.g. unsupported processor model).
    """

    if _np is None:
        return None
    if not _processor_supported(processor):
        return None
    if horizon is None or not horizon > 0.0:
        return None
    n = len(seeds)
    if n == 0:
        return []

    from repro.experiments.cache import PolicySummary
    from repro.policies.registry import POLICY_FACTORIES, make_policy
    from repro.sim.engine import simulate

    # The scalar run_suite result dict: baseline first, then the
    # requested policies in order (skipping the baseline, deduplicated —
    # a duplicate name overwrites its identical earlier entry).
    suite_order = ["none"]
    for name in policy_names:
        if name != "none" and name not in suite_order:
            suite_order.append(name)
    kernels = {}
    for name in suite_order:
        factory = POLICY_FACTORIES.get(name)
        kernels[name] = getattr(factory, "batch_kernel", None)
    if kernels["none"] is None:  # pragma: no cover - defensive
        return None
    vector_names = [name for name in suite_order if kernels[name]]
    scalar_names = [name for name in suite_order if not kernels[name]]

    need_static = any(kernels[n_] == "static" for n_ in vector_names)
    need_lpsta = any(kernels[n_] == "lpsta" for n_ in vector_names)

    np = _np
    out = [None] * n

    # ---- per-seed setup: python loop, everything lands in 2-D arrays ----
    setups = []
    m = None
    for pos, seed in enumerate(seeds):
        try:
            taskset, model = make_workload(float(x), seed)
            taskset.assert_feasible_edf()
            tasks = taskset.tasks
            if m is None:
                m = len(tasks)
            if len(tasks) != m or m == 0:
                raise _Fallback
            # Implicit deadlines (deadline == period, the same float) make
            # the slack event ladder static: (a + dl) + per and
            # (a + per) + dl are the *same* float expression, so the
            # per-call repeated-addition walk equals arrival + dl for the
            # prefix-summed arrival table.  Those seeds pre-enumerate
            # arrivals out to the widest possible analysis fence.
            ladder_ok = all(t.deadline == t.period for t in tasks)
            lad_end = None
            if need_lpsta and ladder_ok:
                max_per = max(t.period for t in tasks)
                max_dl = max(t.deadline for t in tasks)
                lad_end = (horizon + _LPSTA_WINDOW_CAP * max_per
                           + max_dl + 1.0)
            rel_rows = []
            work_rows = []
            for task in tasks:
                # Inlined PeriodicArrival.arrival_time: the same
                # phase-then-repeated-addition walk, without 65k method
                # dispatches per cell.
                per = task.period
                t_k = task.phase
                vals = []
                k = 0
                jobs = None
                while True:
                    vals.append(t_k)
                    if jobs is None and t_k >= horizon - TIME_EPS:
                        jobs = k
                    if jobs is not None and (
                            lad_end is None or t_k > lad_end):
                        break
                    k += 1
                    if k > 4_000_000:
                        raise _Fallback  # degenerate period vs horizon
                    t_k = t_k + per
                wvals = [model.work(task, i) for i in range(jobs)]
                for w in wvals:
                    if w <= 0.0 or w > task.wcet + TIME_EPS:
                        raise _Fallback  # Job.from_task would reject this
                rel_rows.append(vals)
                work_rows.append(wvals)
            entry = {
                "pos": pos,
                "tasks": tasks,
                "taskset": taskset,
                "model": model,
                "rel_rows": rel_rows,
                "work_rows": work_rows,
                "ladder_ok": ladder_ok,
            }
            if need_static or need_lpsta:
                s_min = minimum_constant_speed(taskset)
                if need_static:
                    entry["s_static"] = max(s_min, processor.min_speed)
                if need_lpsta:
                    s_lp = max(s_min, processor.min_speed, 1e-9)
                    scaled = scale_tasks(tasks, s_lp)
                    entry["s_lp"] = s_lp
                    entry["scaled"] = scaled
            setups.append(entry)
        except _Fallback:
            continue
        except Exception:
            continue  # scalar fallback reproduces (and reports) the error
    if not setups:
        return out

    R = len(setups)
    H = float(horizon)

    period = np.empty((R, m))
    wcet = np.empty((R, m))
    dl_rel = np.empty((R, m))
    util0 = np.empty((R, m))
    name_rank = np.empty((R, m), dtype=np.int64)
    max_period = np.empty(R)
    s_static = np.ones(R)
    s_lp = np.ones(R)
    scaled_wcet = np.zeros((R, m))
    scaled_util = np.zeros((R, m))
    corr = np.zeros((R, m))

    l_max = 1
    for e in setups:
        l_max = max(l_max, max(len(v) for v in e["rel_rows"]))
    rel_tab = np.empty((R, m, l_max))
    work_tab = np.zeros((R, m, l_max))

    for r, e in enumerate(setups):
        tasks = e["tasks"]
        ranks = {nm: i for i, nm in enumerate(sorted(t.name for t in tasks))}
        for j, task in enumerate(tasks):
            period[r, j] = task.period
            wcet[r, j] = task.wcet
            dl_rel[r, j] = task.deadline
            util0[r, j] = task.utilization
            name_rank[r, j] = ranks[task.name]
            vals = e["rel_rows"][j]
            rel_tab[r, j, : len(vals)] = vals
            rel_tab[r, j, len(vals):] = vals[-1]
            wvals = e["work_rows"][j]
            if wvals:
                work_tab[r, j, : len(wvals)] = wvals
        max_period[r] = max(t.period for t in tasks)
        if need_static:
            s_static[r] = e["s_static"]
        if need_lpsta:
            s_lp[r] = e["s_lp"]
            for j, st in enumerate(e["scaled"]):
                scaled_wcet[r, j] = st.wcet
                scaled_util[r, j] = st.utilization
                if st.deadline < st.period:
                    corr[r, j] = st.wcet * (st.period - st.deadline) / st.period

    # Static slack-event ladder (implicit-deadline cells): every future
    # invocation deadline, merged and stably sorted once per seed.  The
    # runtime kernel only masks (released / beyond-fence) and merges the
    # <= m active entries — no per-call sort.
    lad_d = None
    if need_lpsta and all(e["ladder_ok"] for e in setups):
        seed_lads = []
        w_lad = 0
        for r, e in enumerate(setups):
            ds, ars, tids = [], [], []
            for j, task in enumerate(e["tasks"]):
                dlj = task.deadline
                for a in e["rel_rows"][j]:
                    ds.append(a + dlj)
                    ars.append(a)
                    tids.append(j)
            ds = np.asarray(ds)
            # Stable sort of the task-major enumeration reproduces the
            # scalar's list order: ties keep (task, invocation) order,
            # matching [task 0 ladder, task 1 ladder, ...] + stable sort.
            o = np.argsort(ds, kind="stable")
            seed_lads.append(
                (ds[o], np.asarray(ars)[o], np.asarray(tids)[o]))
            w_lad = max(w_lad, len(ds))
        lad_d = np.full((R, w_lad), np.inf)
        # Packed (deadline, arrival, weight) per entry: one gather pulls
        # a whole window slice.
        lad_pack = np.zeros((R, w_lad, 3))
        lad_pack[:, :, 0] = np.inf
        lad_pack[:, :, 1] = np.inf
        lad_cov = np.empty(R)
        for r, (ds, ars, tids) in enumerate(seed_lads):
            lad_d[r, : len(ds)] = ds
            lad_pack[r, : len(ds), 0] = ds
            lad_pack[r, : len(ds), 1] = ars
            lad_pack[r, : len(ds), 2] = scaled_wcet[r][tids]
            lad_cov[r] = min(
                setups[r]["rel_rows"][j][-1] + task.deadline
                for j, task in enumerate(setups[r]["tasks"]))
        # Fence never exceeds t + cap * max_period (implicit deadlines
        # keep active deadlines within t + max_period), so a sliding
        # window this wide always covers every in-fence event.
        lad_win = 4 + max(
            sum(int(_LPSTA_WINDOW_CAP * max(t.period for t in e["tasks"])
                    / t.period) + 2 for t in e["tasks"])
            for e in setups)
        lad_win = min(lad_win, w_lad)

    data = {
        "period": period,
        "wcet": wcet,
        "dl_rel": dl_rel,
        "util0": util0,
        "name_rank": name_rank,
        "max_period": max_period,
        "s_static": s_static,
        "s_lp": s_lp,
        "scaled_wcet": scaled_wcet,
        "scaled_util": scaled_util,
        "corr": corr,
        "rel_tab": rel_tab,
        "work_tab": work_tab,
        "lad_d": lad_d,
        "lad_pack": lad_pack if lad_d is not None else None,
        "lad_cov": lad_cov if lad_d is not None else None,
        "lad_win": lad_win if lad_d is not None else None,
        "horizon": H,
        "min_speed": float(processor.min_speed),
        "idle_power": float(processor.idle_power),
        "dynamic": float(processor.power_model.dynamic),
        "alpha": float(processor.power_model.alpha),
        "static_power": float(processor.power_model.static),
    }

    kernel_list = [kernels[name] for name in vector_names]
    res = _simulate_cell_vec(kernel_list, data)
    # Each result array is (P, R): policy-major over the same seeds.
    flagged = res["flagged"].any(axis=0)
    policy_row = {name: p for p, name in enumerate(vector_names)}
    busy_b = res["busy"]
    idle_b = res["idle"]

    # total_energy = busy + idle + switch + sleep; switch/sleep stay +0.0
    # here, and x + 0.0 == x bitwise for the non-negative sums involved.
    base_total = busy_b[policy_row["none"]] + idle_b[policy_row["none"]]
    flagged |= ~(base_total > 0.0)  # scalar normalized_energy would raise

    # Ineligible policies in a mixed suite run scalar per seed, inside the
    # batch, against the vectorized baseline total (bitwise identical).
    scalar_runs = {}
    if scalar_names:
        for r, e in enumerate(setups):
            if flagged[r]:
                continue
            for name in scalar_names:
                try:
                    result = simulate(
                        e["taskset"],
                        processor,
                        make_policy(name),
                        e["model"],
                        horizon=H,
                        allow_misses=allow_misses,
                    )
                except Exception:
                    flagged[r] = True
                    break
                scalar_runs[(r, name)] = result

    for r, e in enumerate(setups):
        if flagged[r]:
            continue
        bt = float(base_total[r])
        summaries = {}
        ok = True
        for name in suite_order:
            p = policy_row.get(name)
            if p is not None:
                total = float(busy_b[p, r] + idle_b[p, r])
                summaries[name] = PolicySummary(
                    normalized=total / bt,
                    misses=0,
                    switches=int(res["switches"][p, r]),
                    overruns=0,
                    released=int(res["released"][p, r]),
                    interventions=0,
                    dispatches=0,
                )
            else:
                result = scalar_runs.get((r, name))
                if result is None:  # pragma: no cover - defensive
                    ok = False
                    break
                metrics = dict(result.policy_metrics)
                summaries[name] = PolicySummary(
                    normalized=result.total_energy / bt,
                    misses=len(result.deadline_misses),
                    switches=result.switch_count,
                    overruns=result.overrun_jobs,
                    released=result.jobs_released,
                    interventions=int(metrics.get("interventions", 0)),
                    dispatches=int(metrics.get("dispatches", 0)),
                )
        if ok:
            out[e["pos"]] = summaries
    return out


def _simulate_cell_vec(kernel_names, data):
    """Lockstep-simulate every (policy, seed) row of one cell at once.

    Rows are laid out policy-major: row ``p * R + r`` runs kernel
    ``kernel_names[p]`` on seed index ``r``.  Each iteration advances
    every live row to its own next scheduling point (job completion,
    preemption fence or idle-until-release), replicating the scalar
    engine's operation order bitwise.  Rows that hit anything the vector
    path cannot reproduce exactly are flagged for scalar fallback.

    Returns ``(P, R)`` arrays: busy/idle energies, switch and release
    counts, and the per-row fallback flags.
    """

    np = _np
    period0 = data["period"]
    R, m = period0.shape
    P = len(kernel_names)
    N = P * R
    H = data["horizon"]
    min_speed = data["min_speed"]
    idle_power = data["idle_power"]
    dyn = data["dynamic"]
    alpha = data["alpha"]
    stat = data["static_power"]
    big_rank = np.iinfo(np.int64).max

    # Per-(row, task) constants, tiled policy-major.
    period = np.tile(period0, (P, 1))
    wcet = np.tile(data["wcet"], (P, 1))
    dl_rel = np.tile(data["dl_rel"], (P, 1))
    util0 = np.tile(data["util0"], (P, 1))
    name_rank = np.tile(data["name_rank"], (P, 1))
    s_static = np.tile(data["s_static"], P)
    s_lp = np.tile(data["s_lp"], P)
    max_period = np.tile(data["max_period"], P)
    scaled_wcet = np.tile(data["scaled_wcet"], (P, 1))
    scaled_util = np.tile(data["scaled_util"], (P, 1))
    corr = np.tile(data["corr"], (P, 1))

    # Release/work tables stay un-tiled; rows index them via flat ids.
    L = data["rel_tab"].shape[2]
    rel_flat = data["rel_tab"].reshape(R * m, L)
    work_flat = data["work_tab"].reshape(R * m, L)
    slot_rows = (np.arange(N) % R)[:, None] * m + np.arange(m)[None, :]

    kid = np.repeat(np.arange(P), R)
    need_util = any(kn == "ccedf" for kn in kernel_names)

    lad_d = data.get("lad_d")
    lad_pack = data.get("lad_pack")
    lad_cov = data.get("lad_cov")
    lad_win = data.get("lad_win")
    if lad_d is not None:
        lad_last = lad_d.shape[1] - 1
        # Per-row sliding window start into the sorted ladder: entries
        # with d <= t are never future events (arrival > t implies
        # d > t) and extras below t cannot be the minimum, so the
        # pointer only ever advances.
        lad_lo = np.zeros(N, dtype=np.int64)
        lad_arange = np.arange(lad_win)
    rr_all = np.arange(N)[:, None]
    H_eps = H - TIME_EPS

    now = np.zeros(N)
    cur = np.ones(N)
    busy = np.zeros(N)
    idle = np.zeros(N)
    switches = np.zeros(N, dtype=np.int64)
    released = np.zeros(N, dtype=np.int64)
    seq = np.zeros(N, dtype=np.int64)
    flagged = np.zeros(N, dtype=bool)
    done = np.zeros(N, dtype=bool)

    active = np.zeros((N, m), dtype=bool)
    executed = np.zeros((N, m))
    release_t = np.zeros((N, m))
    deadline = np.zeros((N, m))
    work = np.zeros((N, m))
    rel_seq = np.zeros((N, m), dtype=np.int64)
    next_idx = np.zeros((N, m), dtype=np.int64)
    nxt = rel_flat[slot_rows, next_idx]
    util = util0.copy() if need_util else None

    def snap(v):
        # snap_nonnegative: -TIME_EPS <= v < 0 -> 0.0, else unchanged
        return np.where((v >= -TIME_EPS) & (v < 0.0), 0.0, v)

    # numpy's vectorized pow ufunc is allowed to differ from libm pow by
    # an ulp; the scalar engine's `speed ** alpha` goes through libm, so
    # the power evaluation must too (memoized — speeds repeat heavily).
    pow_cache: dict = {}

    def libm_pow(values):
        uniq, inv = np.unique(values, return_inverse=True)
        out = np.empty(uniq.shape)
        for i, v in enumerate(uniq.tolist()):
            p = pow_cache.get(v)
            if p is None:
                p = math.pow(v, alpha) if v > 0.0 else float("nan")
                pow_cache[v] = p
            out[i] = p
        return out[inv]

    def release_and_check(step_rows):
        nonlocal seq, released, next_idx
        rows_ok = step_rows & ~flagged
        while True:
            due = (
                rows_ok[:, None]
                & (nxt <= now[:, None] + TIME_EPS)
                & (nxt < H - TIME_EPS)
            )
            if not due.any():
                break
            conflict = (due & active).any(axis=1)
            if conflict.any():
                # Scalar would stack a second live job of the same task;
                # the transient two-job state is not representable here.
                flagged[conflict] = True
                rows_ok &= ~conflict
                due &= rows_ok[:, None]
                if not due.any():
                    break
            w_new = work_flat[slot_rows, next_idx]
            ordinal = np.cumsum(due, axis=1)
            rel_seq[due] = (seq[:, None] + ordinal - 1)[due]
            release_t[due] = nxt[due]
            deadline[due] = (nxt + dl_rel)[due]
            work[due] = w_new[due]
            executed[due] = 0.0
            if util is not None:
                util[due] = util0[due]
            active[due] = True
            cnt = due.sum(axis=1)
            seq += cnt
            released += cnt
            next_idx += due
            nxt[:] = rel_flat[slot_rows, next_idx]
        missed = (active & (deadline < now[:, None] - DEADLINE_EPS)).any(axis=1)
        flagged[step_rows & missed] = True

    def slack_sta(rows, d_first):
        """Vectorized exact_slack for the picked rows; returns (slack, bad)."""

        k = rows.shape[0]
        rr = rr_all[:k]
        t = now[rows]
        act = active[rows]
        de = deadline[rows]
        # max(0, x) == max(0, snap(x)) bitwise for every x, so the snap
        # is dropped here.
        budget = np.where(
            act,
            np.maximum(0.0, wcet[rows] - executed[rows])
            / s_lp[rows][:, None],
            0.0,
        )

        # Active budgets in engine-list order (= release sequence order)
        # for the tail guard's left-to-right addition chain.
        order = np.argsort(
            np.where(act, rel_seq[rows], big_rank), axis=1, kind="stable"
        )
        a_w = budget[rr, order]

        if lad_d is not None:
            # Static-ladder path.  Implicit deadlines keep every active
            # deadline within t + max_period, so the scalar's
            # max(latest_active, t + cap*maxP) is the cap term bitwise.
            window_end = t + _LPSTA_WINDOW_CAP * max_period[rows]
            fence = window_end + _SLACK_EPS
            # Slide a window over the pre-sorted invocation deadlines
            # (entries with d <= t can never matter: future events have
            # arrival > t, and zero-weight extras below the dispatched
            # deadline are unusable candidates), mask it, and stably
            # sort [actives | window] — exactly the scalar's list +
            # stable sort, at window width instead of full size.  The
            # period grid makes exact cross-task deadline ties routine,
            # and only the stable merge reproduces the scalar's
            # within-group addition order (actives in list order, then
            # events task-major).  Already-released invocations keep
            # their deadline with weight 0: such extra candidates can
            # never lower the minimum because the dispatched job's own
            # deadline (d_first) is always a real candidate and g grows
            # between real candidates.
            srow = rows % R
            lo = lad_lo[rows]
            while True:
                adv = (lad_d[srow, lo] <= t) & (lo < lad_last)
                if not adv.any():
                    break
                lo += adv
            lad_lo[rows] = lo
            cols = np.minimum(lo[:, None] + lad_arange, lad_last)
            G = lad_pack[srow[:, None], cols]
            D = G[..., 0]
            A = G[..., 1]
            in_fence = D <= fence[:, None]
            # The window's last entry must already lie beyond the fence
            # (and the pre-enumerated ladder must cover the fence), else
            # events could be missed or clamp-duplicated -> scalar.
            cov_bad = (fence > lad_cov[srow]) | in_fence[:, -1]
            in_fence &= ~cov_bad[:, None]
            # Released iff arrival <= now + eps and arrival < H - eps —
            # exactly the release rule, so no per-task gather is needed.
            fut = (A > t[:, None] + TIME_EPS) | (A >= H_eps)
            sw_e = np.where(in_fence & fut, G[..., 2], 0.0)
            sd_e = np.where(in_fence, D, np.inf)
            dl = np.where(act, de, np.inf)
            a_d = dl[rr, order]
            d_all = np.concatenate([a_d, sd_e], axis=1)
            w_all = np.concatenate([a_w, sw_e], axis=1)
            o2 = np.argsort(d_all, axis=1, kind="stable")
            sd = d_all[rr, o2]
            sw = w_all[rr, o2]
        else:
            # Dynamic path (constrained deadlines): rebuild and sort the
            # event walk per call — repeated addition == cumsum.
            cov_bad = None
            dl = np.where(act, de, np.inf)
            latest = np.max(np.where(act, de, -np.inf), axis=1)
            window_end = np.maximum(
                latest, t + _LPSTA_WINDOW_CAP * max_period[rows]
            )
            fence = window_end + _SLACK_EPS
            a_d = dl[rr, order]
            d0 = nxt[rows] + dl_rel[rows]
            per = period[rows]
            cnt = np.where(
                d0 <= fence[:, None],
                np.floor((fence[:, None] - d0) / per) + 1.0,
                0.0,
            )
            K = max(int(cnt.max()) + 2, 2) if cnt.size else 2
            while True:
                dmat = np.empty((k, m, K))
                dmat[:, :, 0] = d0
                dmat[:, :, 1:] = per[:, :, None]
                np.cumsum(dmat, axis=2, out=dmat)
                if not (dmat[:, :, -1] <= fence[:, None]).any():
                    break
                K *= 2  # pragma: no cover - cnt bound is exact
            valid = dmat <= fence[:, None, None]
            d_ev = np.where(valid, dmat, np.inf).reshape(k, m * K)
            w_ev = np.where(
                valid, scaled_wcet[rows][:, :, None], 0.0
            ).reshape(k, m * K)
            d_all = np.concatenate([a_d, d_ev], axis=1)
            w_all = np.concatenate([a_w, w_ev], axis=1)
            o2 = np.argsort(d_all, axis=1, kind="stable")
            sd = d_all[rr, o2]
            sw = w_all[rr, o2]
        h = np.cumsum(sw, axis=1)

        gaps = sd[:, 1:] - sd[:, :-1]
        # Scalar grouping folds against the group head with a 1e-12 slop;
        # near-but-not-equal deadlines can group differently -> fall back.
        bad = ((gaps > 0.0) & (gaps <= _SLACK_EPS)).any(axis=1)
        if cov_bad is not None:
            bad |= cov_bad

        is_end = np.empty(sd.shape, dtype=bool)
        is_end[:, -1] = True
        # gaps is nan inside the trailing inf padding; nan != 0 marks
        # those as ends, which is harmless — isfinite() excludes them.
        is_end[:, :-1] = gaps != 0.0
        usable = (
            is_end & np.isfinite(sd) & (sd >= d_first[:, None] - _SLACK_EPS)
        )
        g = sd - t[:, None] - h
        best = np.min(np.where(usable, g, np.inf), axis=1)

        # _tail_guard: python sum over actives (in list order) then, per
        # task in taskset order, a utilization term and a constrained-
        # deadline correction.  That exact left-to-right addition chain
        # is one sequential cumsum over [active budgets | t_0 c_0 t_1
        # ...].  On the ladder path every deadline is implicit, so the
        # scalar adds no correction terms at all and they are omitted.
        if lad_d is not None:
            terms = np.empty((k, 2 * m))
            terms[:, :m] = a_w
            terms[:, m:] = scaled_util[rows] * np.maximum(
                0.0, window_end[:, None] - nxt[rows]
            )
        else:
            terms = np.empty((k, m + 2 * m))
            terms[:, :m] = a_w
            terms[:, m::2] = scaled_util[rows] * np.maximum(
                0.0, window_end[:, None] - nxt[rows]
            )
            terms[:, m + 1::2] = corr[rows]
        tot = np.cumsum(terms, axis=1)[:, -1]
        tail = window_end - t - tot
        best = np.minimum(best, tail)
        return np.maximum(0.0, best), bad

    def dispatch(rows, fence):
        k = rows.shape[0]
        dl = np.where(active[rows], deadline[rows], np.inf)
        d_first = dl.min(axis=1)
        cand = active[rows] & (dl == d_first[:, None])
        rel = np.where(cand, release_t[rows], np.inf)
        cand &= rel == rel.min(axis=1)[:, None]
        rank = np.where(cand, name_rank[rows], big_rank)
        j = rank.argmin(axis=1)

        w_p = work[rows, j]
        ex_p = executed[rows, j]
        rw = snap(w_p - ex_p)

        desired = np.empty(k)
        kk = kid[rows]
        for p, kernel in enumerate(kernel_names):
            sel = kk == p
            if not sel.any():
                continue
            sub = rows[sel]
            if kernel == "full_speed":
                desired[sel] = 1.0
            elif kernel == "static":
                desired[sel] = s_static[sub]
            elif kernel == "ccedf":
                # sum(dict.values()) in taskset order == sequential cumsum
                tot = np.cumsum(util[sub], axis=1)[:, -1]
                desired[sel] = np.maximum(tot, min_speed)
            elif kernel == "lpsta":
                ex_sub = ex_p[sel]
                rwc = np.maximum(0.0, wcet[sub, j[sel]] - ex_sub)
                slack, slack_bad = slack_sta(sub, d_first[sel])
                flagged[sub[slack_bad]] = True
                allot = rwc / s_lp[sub] + slack
                val = np.minimum(1.0, np.maximum(min_speed, rwc / allot))
                desired[sel] = np.where(rwc <= _SLACK_EPS, cur[sub], val)
            else:  # pragma: no cover - unknown kernel
                flagged[sub] = True
                desired[sel] = 1.0

        bad = np.isnan(desired)
        q = np.minimum(1.0, np.maximum(min_speed, desired))
        bad |= (q <= 0.0) | (q > 1.0 + TIME_EPS)
        prev = cur[rows]
        sw = np.abs(q - prev) > SPEED_EPS
        speed = np.where(sw, q, prev)
        switches[rows] = switches[rows] + sw.astype(np.int64)
        cur[rows] = speed

        completion = now[rows] + rw / speed
        to_completion = completion <= fence
        next_point = np.where(to_completion, completion, fence)
        retired = np.where(
            to_completion,
            rw,
            np.minimum(speed * (next_point - now[rows]), rw),
        )
        duration = next_point - now[rows]
        bad |= ~(duration > 0.0)
        new_total = ex_p + np.maximum(0.0, retired)
        bad |= new_total > w_p + 1e-6
        ex_new = np.minimum(new_total, w_p)
        energy = (dyn * libm_pow(speed) + stat) * duration
        if _DEBUG is not None:
            for i in range(k):
                _DEBUG.append(
                    (float(speed[i]), float(duration[i]), float(energy[i]))
                )
        busy[rows] = busy[rows] + energy
        now[rows] = next_point

        fin = snap(w_p - ex_new) <= WORK_EPS
        ex_new = np.where(fin, w_p, ex_new)
        executed[rows, j] = ex_new
        # met_deadline(eps=DEADLINE_EPS) is completion <= deadline + eps
        bad |= fin & (next_point > deadline[rows, j] + DEADLINE_EPS)
        active[rows, j] = active[rows, j] & ~fin
        if util is not None:
            util[rows, j] = np.where(fin, w_p / period[rows, j], util[rows, j])
        flagged[rows[bad]] = True

    # Iteration bound: each job contributes at most a handful of
    # scheduling points; anything beyond that is a stall -> fall back.
    total_jobs = int((L - 1) * m)
    max_iters = 32 + 16 * max(total_jobs, 1)
    iters = 0

    with np.errstate(invalid="ignore", divide="ignore"):
        # Initial releases at t=0 (Simulator._reset + _process_releases).
        release_and_check(~done)
        done |= now >= H - TIME_EPS

        while True:
            live = ~(flagged | done)
            if not live.any():
                break
            iters += 1
            if iters > max_iters:  # pragma: no cover - defensive
                flagged[live] = True
                break
            nxt_min = nxt.min(axis=1)
            nr_glob = np.where(nxt_min < H - TIME_EPS, nxt_min, H)
            has_active = active.any(axis=1)
            idle_rows = live & ~has_active
            disp_rows = live & has_active
            if idle_rows.any():
                until = nr_glob
                stall = idle_rows & (until <= now + TIME_EPS)
                if stall.any():  # pragma: no cover - defensive
                    flagged[stall] = True
                    idle_rows &= ~stall
                add = idle_power * (until - now)
                idle[idle_rows] = idle[idle_rows] + add[idle_rows]
                now[idle_rows] = until[idle_rows]
            if disp_rows.any():
                rows = np.nonzero(disp_rows)[0]
                dispatch(rows, nr_glob[rows])
            release_and_check(live)
            done |= now >= H - TIME_EPS

    # Simulator._final_miss_check: any still-active job due within the
    # horizon is a miss -> scalar fallback.
    pending = (active & (deadline <= H + TIME_EPS)).any(axis=1)
    flagged |= pending

    return {
        "busy": busy.reshape(P, R),
        "idle": idle.reshape(P, R),
        "switches": switches.reshape(P, R),
        "released": released.reshape(P, R),
        "flagged": flagged.reshape(P, R),
    }
