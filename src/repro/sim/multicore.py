"""Partitioned multiprocessor DVS-EDF.

The standard way the uniprocessor DVS results extend to multicore:
**partition** the task set onto ``m`` identical cores (each task runs
all its jobs on one core), then run an independent DVS-EDF instance per
core.  No migration, no global queue — every uniprocessor guarantee in
this library transfers verbatim to each partition, and the per-core
slack analyses remain exact.

Partitioning heuristics (bin packing by worst-case utilization):

* ``first_fit_decreasing`` — the classic FFD; tight packings that
  leave later cores lightly loaded or empty;
* ``worst_fit_decreasing`` — load balancing; spreads utilization
  evenly, which convex power rewards (running ``m`` cores at ``U/m``
  beats one core at ``U``) — the effect EXP-F12 measures.

Energy accounting sums the per-core results; idle cores pay their idle
power for the whole horizon (they exist whether or not they get work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cpu.processor import Processor
from repro.errors import ConfigurationError, InfeasibleTaskSetError
from repro.policies.base import DvsPolicy
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.tasks.execution import ExecutionModel
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.types import Energy, Time


def first_fit_decreasing(taskset: TaskSet, cores: int) -> list[list[PeriodicTask]]:
    """FFD partitioning by utilization; raises when the set won't fit."""
    return _pack(taskset, cores, choose=_first_fit)


def worst_fit_decreasing(taskset: TaskSet, cores: int) -> list[list[PeriodicTask]]:
    """WFD (load-balancing) partitioning by utilization."""
    return _pack(taskset, cores, choose=_worst_fit)


def _first_fit(loads: list[float], utilization: float) -> int | None:
    for i, load in enumerate(loads):
        if load + utilization <= 1.0 + 1e-9:
            return i
    return None


def _worst_fit(loads: list[float], utilization: float) -> int | None:
    best = None
    for i, load in enumerate(loads):
        if load + utilization <= 1.0 + 1e-9:
            if best is None or load < loads[best]:
                best = i
    return best


def _pack(taskset: TaskSet, cores: int,
          choose: Callable[[list[float], float], int | None],
          ) -> list[list[PeriodicTask]]:
    if cores < 1:
        raise ConfigurationError(f"need >= 1 core, got {cores}")
    ordered = sorted(taskset, key=lambda t: t.utilization, reverse=True)
    bins: list[list[PeriodicTask]] = [[] for _ in range(cores)]
    loads = [0.0] * cores
    for task in ordered:
        index = choose(loads, task.utilization)
        if index is None:
            raise InfeasibleTaskSetError(
                f"task {task.name!r} (u={task.utilization:.3f}) does not "
                f"fit on any of {cores} cores (loads={loads})")
        bins[index].append(task)
        loads[index] += task.utilization
    return bins


@dataclass
class MulticoreResult:
    """Aggregated outcome of a partitioned run."""

    per_core: list[SimulationResult | None]
    partitions: list[list[str]]
    horizon: Time
    idle_core_energy: Energy = 0.0

    @property
    def total_energy(self) -> Energy:
        return self.idle_core_energy + sum(
            r.total_energy for r in self.per_core if r is not None)

    @property
    def missed(self) -> bool:
        return any(r.missed for r in self.per_core if r is not None)

    @property
    def deadline_miss_count(self) -> int:
        return sum(len(r.deadline_misses) for r in self.per_core
                   if r is not None)

    def normalized_energy(self, baseline: "MulticoreResult") -> float:
        if baseline.total_energy <= 0:
            raise ConfigurationError("baseline energy is zero")
        return self.total_energy / baseline.total_energy

    def core_loads(self, taskset: TaskSet) -> list[float]:
        """Worst-case utilization packed onto each core."""
        return [sum(taskset[name].utilization for name in names)
                for names in self.partitions]


def simulate_partitioned(
    taskset: TaskSet,
    cores: int,
    processor_factory: Callable[[], Processor],
    policy_factory: Callable[[], DvsPolicy],
    execution_model: ExecutionModel,
    *,
    horizon: Time,
    partition: Callable[[TaskSet, int],
                        list[list[PeriodicTask]]] = worst_fit_decreasing,
    **simulate_kwargs,
) -> MulticoreResult:
    """Partition *taskset* onto *cores* and simulate each independently.

    Fresh processor and policy instances are created per core (policies
    are stateful).  Empty cores contribute ``idle_power * horizon``.
    Extra keyword arguments are forwarded to each per-core
    :func:`repro.sim.engine.simulate` call.
    """
    bins = partition(taskset, cores)
    per_core: list[SimulationResult | None] = []
    idle_energy = 0.0
    for tasks in bins:
        if not tasks:
            idle_energy += processor_factory().idle_energy(horizon)
            per_core.append(None)
            continue
        subset = TaskSet(tasks)
        result = simulate(subset, processor_factory(), policy_factory(),
                          execution_model, horizon=horizon,
                          **simulate_kwargs)
        per_core.append(result)
    return MulticoreResult(
        per_core=per_core,
        partitions=[[t.name for t in tasks] for tasks in bins],
        horizon=horizon,
        idle_core_energy=idle_energy)
