"""Simulation kernel: schedulers, engine, tracing, results."""

from repro.sim.scheduler import Scheduler, EDFScheduler, RMScheduler, FIFOScheduler
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.tracing import Segment, SegmentKind, TraceRecorder
from repro.sim.results import DeadlineMiss, SimulationResult, TaskStats
from repro.sim.engine import SimContext, Simulator, simulate
from repro.sim.multicore import (
    MulticoreResult,
    first_fit_decreasing,
    worst_fit_decreasing,
    simulate_partitioned,
)

__all__ = [
    "Scheduler",
    "EDFScheduler",
    "RMScheduler",
    "FIFOScheduler",
    "Event",
    "EventKind",
    "EventQueue",
    "Segment",
    "SegmentKind",
    "TraceRecorder",
    "DeadlineMiss",
    "SimulationResult",
    "TaskStats",
    "SimContext",
    "Simulator",
    "simulate",
    "MulticoreResult",
    "first_fit_decreasing",
    "worst_fit_decreasing",
    "simulate_partitioned",
]
