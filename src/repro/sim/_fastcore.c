/* The compiled scalar engine core (DESIGN.md section 13).
 *
 * A hand-written CPython extension mirroring Simulator's event loop,
 * plus the exact/heuristic slack walks, under the byte-identity
 * contract: every float expression reproduces the interpreted
 * engine's operation order exactly, and every polymorphic boundary
 * (policy hooks, execution/arrival models, fault plans, non-default
 * scales/power/transition models, idle planners) stays a Python
 * callback, so stochastic draws, caches and error messages are the
 * interpreted ones by construction.  Rare events (deadline misses,
 * overrun notes, transition-fault notes, engine errors) are delegated
 * to repro.sim.fastcore helpers so string formatting and exception
 * types never fork from the Python implementation.
 *
 * CoreEngine exposes the same private attribute surface SimContext
 * reads from Simulator (_now, _active, _next_release, ...), so the
 * existing SimContext class wraps it unchanged and policies observe
 * identical state.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <string.h>

#define K_TIME_EPS 1e-9
#define K_SPEED_EPS 1e-12
#define K_WORK_EPS 1e-9
#define K_DEADLINE_EPS 1e-6

/* snap_nonnegative(value, eps=TIME_EPS) */
static inline double
snap_nonneg(double v)
{
    if (-K_TIME_EPS <= v && v < 0.0)
        return 0.0;
    return v;
}

/* ------------------------------------------------------------------ */
/* interned attribute/method names (module-lifetime, never freed)      */
/* ------------------------------------------------------------------ */

static PyObject *s_complete, *s_executed, *s_first_dispatch_time,
    *s_preemption_count, *s_enabled, *s_sleep, *s_wake_time,
    *s_achieved, *s_extra_time, *s_faulted, *s_deadline, *s_work;

static int
intern_names(void)
{
#define MK(var, text) \
    if ((var = PyUnicode_InternFromString(text)) == NULL) return -1;
    MK(s_complete, "complete")
    MK(s_executed, "executed")
    MK(s_first_dispatch_time, "first_dispatch_time")
    MK(s_preemption_count, "preemption_count")
    MK(s_enabled, "enabled")
    MK(s_sleep, "sleep")
    MK(s_wake_time, "wake_time")
    MK(s_achieved, "achieved")
    MK(s_extra_time, "extra_time")
    MK(s_faulted, "faulted")
    MK(s_deadline, "deadline")
    MK(s_work, "work")
#undef MK
    return 0;
}

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */

static int
attr_as_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *val = PyObject_GetAttr(obj, name);
    if (val == NULL)
        return -1;
    *out = PyFloat_AsDouble(val);
    Py_DECREF(val);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Convert a Python sequence of numbers to a fresh double array. */
static double *
seq_as_doubles(PyObject *seq, Py_ssize_t *out_n)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence of floats");
    if (fast == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    double *arr = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    if (arr == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        arr[i] = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, i));
        if (arr[i] == -1.0 && PyErr_Occurred()) {
            PyMem_Free(arr);
            Py_DECREF(fast);
            return NULL;
        }
    }
    Py_DECREF(fast);
    *out_n = n;
    return arr;
}

static long *
seq_as_longs(PyObject *seq, Py_ssize_t *out_n)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence of ints");
    if (fast == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    long *arr = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(long));
    if (arr == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        arr[i] = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        if (arr[i] == -1 && PyErr_Occurred()) {
            PyMem_Free(arr);
            Py_DECREF(fast);
            return NULL;
        }
    }
    Py_DECREF(fast);
    *out_n = n;
    return arr;
}

/* ------------------------------------------------------------------ */
/* CoreEngine                                                          */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *job;      /* strong ref */
    double deadline;
    double release;
    double work;
    double executed;
    Py_ssize_t task;    /* index into the task arrays */
    long index;
    long preempt;
    int missed;
    int dispatched;
} JobSlot;

typedef struct {
    PyObject_HEAD

    /* configuration objects (strong refs; surfaced to SimContext) */
    PyObject *taskset, *processor, *scheduler, *execution_model,
        *arrival_model, *trace, *result, *telemetry;
    PyObject *next_release_dict, *next_index_dict;  /* live dicts */
    PyObject *tasks;        /* tuple of PeriodicTask */
    PyObject *names;        /* tuple of str */
    PyObject *name2idx;     /* dict name -> int */
    PyObject *task_stats;   /* tuple of TaskStats, task order */

    /* bound methods / callables */
    PyObject *m_select_speed, *m_on_release, *m_on_completion,
        *m_observe, *m_plan_idle, *m_work, *m_arrival, *m_quantize,
        *m_active_energy, *m_transition, *m_transition_outcome;
    /* fastcore rare-event helpers */
    PyObject *h_mk_job, *h_miss, *h_overrun_note, *h_stuck_note,
        *h_requant_note, *h_bad_speed, *h_bad_quant, *h_no_progress,
        *h_overexec, *h_neg_exec, *h_round_key, *h_trace_run;

    PyObject *ctx;          /* set for the duration of run() only */

    /* per-task static data */
    Py_ssize_t n_tasks;
    double *t_period, *t_rel_deadline, *t_wcet;
    long *t_rank;

    /* per-task run state */
    double *next_release;   /* mirrors next_release_dict */
    long *next_index;       /* mirrors next_index_dict */
    double *last_arrival;   /* NAN == no arrival yet */

    /* per-task stat accumulators (missed stays owned by Python) */
    long *st_released, *st_completed, *st_preempt;
    double *st_exec, *st_resp, *st_maxresp;

    /* active jobs */
    JobSlot *active;
    Py_ssize_t n_active, cap_active;

    /* run state */
    double now, current_speed, horizon;
    long release_version, switch_attempts;
    PyObject *last_running;  /* strong ref or NULL */

    /* flags */
    int allow_misses, record_trace, faults_transitions, allow_overrun,
        is_periodic, periodic_inline, quant_kind, power_kind,
        trans_none, has_idle_policy;

    /* inline model parameters */
    double q_min;
    const double *q_levels;
    Py_ssize_t q_nlevels;
    double p_alpha, p_dynamic, p_static;
    double idle_power, sleep_power, wakeup_energy;

    /* result accumulators */
    double busy_energy, idle_energy, switch_energy, sleep_energy;
    double busy_time, idle_time, switch_time, sleep_time;
    long switch_count, sleep_episodes, idle_episodes, dispatches,
        jobs_released, jobs_completed, overruns, transition_faults;

    /* speed_time: chronological first-occurrence accumulation */
    double *spd_exact, *spd_dur;
    PyObject **spd_key;     /* strong refs: round(speed, 12) floats */
    Py_ssize_t n_spd, cap_spd;
} CoreEngine;

static void
CoreEngine_dealloc(CoreEngine *self)
{
    Py_XDECREF(self->taskset); Py_XDECREF(self->processor);
    Py_XDECREF(self->scheduler); Py_XDECREF(self->execution_model);
    Py_XDECREF(self->arrival_model); Py_XDECREF(self->trace);
    Py_XDECREF(self->result); Py_XDECREF(self->telemetry);
    Py_XDECREF(self->next_release_dict); Py_XDECREF(self->next_index_dict);
    Py_XDECREF(self->tasks); Py_XDECREF(self->names);
    Py_XDECREF(self->name2idx); Py_XDECREF(self->task_stats);
    Py_XDECREF(self->m_select_speed); Py_XDECREF(self->m_on_release);
    Py_XDECREF(self->m_on_completion); Py_XDECREF(self->m_observe);
    Py_XDECREF(self->m_plan_idle);
    Py_XDECREF(self->m_work); Py_XDECREF(self->m_arrival);
    Py_XDECREF(self->m_quantize); Py_XDECREF(self->m_active_energy);
    Py_XDECREF(self->m_transition); Py_XDECREF(self->m_transition_outcome);
    Py_XDECREF(self->h_mk_job); Py_XDECREF(self->h_miss);
    Py_XDECREF(self->h_overrun_note); Py_XDECREF(self->h_stuck_note);
    Py_XDECREF(self->h_requant_note); Py_XDECREF(self->h_bad_speed);
    Py_XDECREF(self->h_bad_quant); Py_XDECREF(self->h_no_progress);
    Py_XDECREF(self->h_overexec); Py_XDECREF(self->h_neg_exec);
    Py_XDECREF(self->h_round_key); Py_XDECREF(self->h_trace_run);
    Py_XDECREF(self->ctx); Py_XDECREF(self->last_running);
    for (Py_ssize_t i = 0; i < self->n_active; i++)
        Py_XDECREF(self->active[i].job);
    for (Py_ssize_t i = 0; i < self->n_spd; i++)
        Py_XDECREF(self->spd_key[i]);
    PyMem_Free(self->active);
    PyMem_Free(self->t_period); PyMem_Free(self->t_rel_deadline);
    PyMem_Free(self->t_wcet); PyMem_Free(self->t_rank);
    PyMem_Free(self->next_release); PyMem_Free(self->next_index);
    PyMem_Free(self->last_arrival);
    PyMem_Free(self->st_released); PyMem_Free(self->st_completed);
    PyMem_Free(self->st_preempt); PyMem_Free(self->st_exec);
    PyMem_Free(self->st_resp); PyMem_Free(self->st_maxresp);
    PyMem_Free(self->spd_exact); PyMem_Free(self->spd_dur);
    PyMem_Free(self->spd_key);
    PyMem_Free((void *)self->q_levels);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Pull one attribute off the config namespace into a strong ref. */
static int
ns_get(PyObject *ns, const char *name, PyObject **slot)
{
    PyObject *val = PyObject_GetAttrString(ns, name);
    if (val == NULL)
        return -1;
    *slot = val;
    return 0;
}

static int
ns_get_double(PyObject *ns, const char *name, double *out)
{
    PyObject *val = PyObject_GetAttrString(ns, name);
    if (val == NULL)
        return -1;
    *out = PyFloat_AsDouble(val);
    Py_DECREF(val);
    return (*out == -1.0 && PyErr_Occurred()) ? -1 : 0;
}

static int
ns_get_int(PyObject *ns, const char *name, int *out)
{
    PyObject *val = PyObject_GetAttrString(ns, name);
    if (val == NULL)
        return -1;
    long v = PyLong_AsLong(val);
    Py_DECREF(val);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = (int)v;
    return 0;
}

static int
CoreEngine_init(CoreEngine *self, PyObject *args, PyObject *kwds)
{
    PyObject *ns;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError, "CoreEngine takes no kwargs");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O", &ns))
        return -1;

#define GET(field) if (ns_get(ns, #field, &self->field) < 0) return -1;
    GET(taskset) GET(processor) GET(scheduler) GET(execution_model)
    GET(arrival_model) GET(trace) GET(result) GET(telemetry)
    GET(tasks) GET(names) GET(name2idx) GET(task_stats)
#undef GET
    if (ns_get(ns, "next_release", &self->next_release_dict) < 0 ||
        ns_get(ns, "next_index", &self->next_index_dict) < 0)
        return -1;
#define GETM(field) if (ns_get(ns, #field + 2, &self->field) < 0) return -1;
    GETM(m_select_speed) GETM(m_on_release) GETM(m_on_completion)
    GETM(m_observe)
    GETM(m_plan_idle) GETM(m_work) GETM(m_arrival) GETM(m_quantize)
    GETM(m_active_energy) GETM(m_transition) GETM(m_transition_outcome)
    GETM(h_mk_job) GETM(h_miss) GETM(h_overrun_note) GETM(h_stuck_note)
    GETM(h_requant_note) GETM(h_bad_speed) GETM(h_bad_quant)
    GETM(h_no_progress) GETM(h_overexec) GETM(h_neg_exec)
    GETM(h_round_key) GETM(h_trace_run)
#undef GETM

    if (ns_get_double(ns, "horizon", &self->horizon) < 0 ||
        ns_get_double(ns, "q_min", &self->q_min) < 0 ||
        ns_get_double(ns, "p_alpha", &self->p_alpha) < 0 ||
        ns_get_double(ns, "p_dynamic", &self->p_dynamic) < 0 ||
        ns_get_double(ns, "p_static", &self->p_static) < 0 ||
        ns_get_double(ns, "idle_power", &self->idle_power) < 0 ||
        ns_get_double(ns, "sleep_power", &self->sleep_power) < 0 ||
        ns_get_double(ns, "wakeup_energy", &self->wakeup_energy) < 0)
        return -1;
    if (ns_get_int(ns, "allow_misses", &self->allow_misses) < 0 ||
        ns_get_int(ns, "record_trace", &self->record_trace) < 0 ||
        ns_get_int(ns, "faults_transitions", &self->faults_transitions) < 0 ||
        ns_get_int(ns, "allow_overrun", &self->allow_overrun) < 0 ||
        ns_get_int(ns, "is_periodic", &self->is_periodic) < 0 ||
        ns_get_int(ns, "periodic_inline", &self->periodic_inline) < 0 ||
        ns_get_int(ns, "quant_kind", &self->quant_kind) < 0 ||
        ns_get_int(ns, "power_kind", &self->power_kind) < 0 ||
        ns_get_int(ns, "trans_none", &self->trans_none) < 0 ||
        ns_get_int(ns, "has_idle_policy", &self->has_idle_policy) < 0)
        return -1;

    PyObject *seq;
    Py_ssize_t n = 0, n2 = 0;
#define GETARR(attr, field, conv) \
    seq = PyObject_GetAttrString(ns, attr); \
    if (seq == NULL) return -1; \
    self->field = conv(seq, &n2); \
    Py_DECREF(seq); \
    if (self->field == NULL) return -1;
    GETARR("period", t_period, seq_as_doubles) n = n2;
    GETARR("rel_deadline", t_rel_deadline, seq_as_doubles)
    GETARR("wcet", t_wcet, seq_as_doubles)
    GETARR("name_rank", t_rank, seq_as_longs)
    GETARR("release0", next_release, seq_as_doubles)
#undef GETARR
    self->n_tasks = n;

    seq = PyObject_GetAttrString(ns, "q_levels");
    if (seq == NULL)
        return -1;
    self->q_levels = seq_as_doubles(seq, &self->q_nlevels);
    Py_DECREF(seq);
    if (self->q_levels == NULL)
        return -1;

    self->next_index = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(long));
    self->last_arrival = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    self->st_released = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(long));
    self->st_completed = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(long));
    self->st_preempt = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(long));
    self->st_exec = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    self->st_resp = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    self->st_maxresp = PyMem_Calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    if (self->next_index == NULL || self->last_arrival == NULL ||
        self->st_released == NULL || self->st_completed == NULL ||
        self->st_preempt == NULL || self->st_exec == NULL ||
        self->st_resp == NULL || self->st_maxresp == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        self->next_index[i] = 0;
        self->last_arrival[i] = NAN;
    }

    self->cap_active = 16;
    self->active = PyMem_Malloc((size_t)self->cap_active * sizeof(JobSlot));
    self->cap_spd = 8;
    self->spd_exact = PyMem_Malloc((size_t)self->cap_spd * sizeof(double));
    self->spd_dur = PyMem_Malloc((size_t)self->cap_spd * sizeof(double));
    self->spd_key = PyMem_Malloc((size_t)self->cap_spd * sizeof(PyObject *));
    if (self->active == NULL || self->spd_exact == NULL ||
        self->spd_dur == NULL || self->spd_key == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->n_active = 0;
    self->n_spd = 0;
    self->now = 0.0;
    self->current_speed = 1.0;
    self->release_version = 0;
    self->switch_attempts = 0;
    self->last_running = NULL;
    self->ctx = NULL;
    return 0;
}

/* ------------------------------------------------------------------ */
/* engine internals                                                    */
/* ------------------------------------------------------------------ */

static double
ce_release_min(CoreEngine *e)
{
    double best = e->next_release[0];
    for (Py_ssize_t i = 1; i < e->n_tasks; i++)
        if (e->next_release[i] < best)
            best = e->next_release[i];
    return best;
}

static double
ce_next_release_global(CoreEngine *e)
{
    double top = ce_release_min(e);
    if (top < e->horizon - K_TIME_EPS)
        return top;
    return e->horizon;
}

static Py_ssize_t
ce_find_slot(CoreEngine *e, PyObject *job)
{
    for (Py_ssize_t i = 0; i < e->n_active; i++)
        if (e->active[i].job == job)
            return i;
    return -1;
}

static void
ce_set_last_running(CoreEngine *e, PyObject *job)
{
    Py_XINCREF(job);
    Py_XDECREF(e->last_running);
    e->last_running = job;
}

/* EDF pick: min over (deadline, release, task-name rank, index). */
static Py_ssize_t
ce_pick(CoreEngine *e)
{
    if (e->n_active == 0)
        return -1;
    Py_ssize_t best = 0;
    for (Py_ssize_t i = 1; i < e->n_active; i++) {
        JobSlot *a = &e->active[i], *b = &e->active[best];
        if (a->deadline != b->deadline) {
            if (a->deadline < b->deadline)
                best = i;
            continue;
        }
        if (a->release != b->release) {
            if (a->release < b->release)
                best = i;
            continue;
        }
        long ra = e->t_rank[a->task], rb = e->t_rank[b->task];
        if (ra != rb) {
            if (ra < rb)
                best = i;
            continue;
        }
        if (a->index < b->index)
            best = i;
    }
    return best;
}

/* Register a miss through the Python helper (formats the note and
 * raises DeadlineMissError when misses abort the run). */
static int
ce_register_miss(CoreEngine *e, Py_ssize_t idx, double detected_at)
{
    e->active[idx].missed = 1;
    PyObject *t = PyFloat_FromDouble(detected_at);
    if (t == NULL)
        return -1;
    PyObject *r = PyObject_CallFunctionObjArgs(
        e->h_miss, e->result, e->trace, e->active[idx].job, t,
        e->allow_misses ? Py_True : Py_False, NULL);
    Py_DECREF(t);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static int
ce_check_misses(CoreEngine *e)
{
    double fence = e->now - K_DEADLINE_EPS;
    for (Py_ssize_t i = 0; i < e->n_active; i++) {
        if (e->active[i].deadline < fence && !e->active[i].missed) {
            if (ce_register_miss(e, i, e->now) < 0)
                return -1;
        }
    }
    return 0;
}

static int
ce_active_append(CoreEngine *e, JobSlot slot)
{
    if (e->n_active == e->cap_active) {
        Py_ssize_t cap = e->cap_active * 2;
        JobSlot *grown = PyMem_Realloc(e->active,
                                       (size_t)cap * sizeof(JobSlot));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        e->active = grown;
        e->cap_active = cap;
    }
    e->active[e->n_active++] = slot;
    return 0;
}

static int
ce_process_releases(CoreEngine *e)
{
    double top = ce_release_min(e);
    if (top > e->now + K_TIME_EPS)
        return ce_check_misses(e);
    for (Py_ssize_t i = 0; i < e->n_tasks; i++) {
        PyObject *task = PyTuple_GET_ITEM(e->tasks, i);
        PyObject *name = PyTuple_GET_ITEM(e->names, i);
        while (e->next_release[i] <= e->now + K_TIME_EPS &&
               e->next_release[i] < e->horizon - K_TIME_EPS) {
            long index = e->next_index[i];
            double release = e->next_release[i];
            PyObject *idx_obj = PyLong_FromLong(index);
            if (idx_obj == NULL)
                return -1;
            PyObject *work_obj = PyObject_CallFunctionObjArgs(
                e->m_work, task, idx_obj, NULL);
            Py_DECREF(idx_obj);
            if (work_obj == NULL)
                return -1;
            double work_in = PyFloat_AsDouble(work_obj);
            if (work_in == -1.0 && PyErr_Occurred()) {
                Py_DECREF(work_obj);
                return -1;
            }
            PyObject *rel_obj = PyFloat_FromDouble(release);
            PyObject *iobj = PyLong_FromLong(index);
            if (rel_obj == NULL || iobj == NULL) {
                Py_XDECREF(rel_obj); Py_XDECREF(iobj);
                Py_DECREF(work_obj);
                return -1;
            }
            PyObject *job = PyObject_CallFunctionObjArgs(
                e->h_mk_job, task, iobj, work_obj, rel_obj,
                e->allow_overrun ? Py_True : Py_False, NULL);
            Py_DECREF(rel_obj);
            Py_DECREF(iobj);
            if (job == NULL) {
                Py_DECREF(work_obj);
                return -1;
            }
            double jdl, jwork;
            if (attr_as_double(job, s_deadline, &jdl) < 0 ||
                attr_as_double(job, s_work, &jwork) < 0) {
                Py_DECREF(work_obj);
                Py_DECREF(job);
                return -1;
            }
            /* job.overrun: work > task.wcet + TIME_EPS */
            if (jwork > e->t_wcet[i] + K_TIME_EPS) {
                e->overruns++;
                PyObject *now_obj = PyFloat_FromDouble(e->now);
                PyObject *r = now_obj == NULL ? NULL :
                    PyObject_CallFunctionObjArgs(
                        e->h_overrun_note, e->trace, now_obj, job,
                        work_obj, NULL);
                Py_XDECREF(now_obj);
                if (r == NULL) {
                    Py_DECREF(work_obj);
                    Py_DECREF(job);
                    return -1;
                }
                Py_DECREF(r);
            }
            Py_DECREF(work_obj);
            JobSlot slot = {job, jdl, release, jwork, 0.0, i, index,
                            0, 0, 0};
            if (ce_active_append(e, slot) < 0) {
                Py_DECREF(job);
                return -1;
            }
            /* the slot owns the job reference from here on */
            e->jobs_released++;
            e->st_released[i]++;
            e->last_arrival[i] = release;
            e->next_index[i] = index + 1;
            PyObject *ni = PyLong_FromLong(index + 1);
            if (ni == NULL ||
                PyDict_SetItem(e->next_index_dict, name, ni) < 0) {
                Py_XDECREF(ni);
                return -1;
            }
            Py_DECREF(ni);
            double next_rel;
            if (e->periodic_inline) {
                /* arrival prefix sums are repeated addition */
                next_rel = release + e->t_period[i];
            }
            else {
                PyObject *i2 = PyLong_FromLong(index + 1);
                if (i2 == NULL)
                    return -1;
                PyObject *nr = PyObject_CallFunctionObjArgs(
                    e->m_arrival, task, i2, NULL);
                Py_DECREF(i2);
                if (nr == NULL)
                    return -1;
                next_rel = PyFloat_AsDouble(nr);
                Py_DECREF(nr);
                if (next_rel == -1.0 && PyErr_Occurred())
                    return -1;
            }
            e->next_release[i] = next_rel;
            PyObject *nrobj = PyFloat_FromDouble(next_rel);
            if (nrobj == NULL ||
                PyDict_SetItem(e->next_release_dict, name, nrobj) < 0) {
                Py_XDECREF(nrobj);
                return -1;
            }
            Py_DECREF(nrobj);
            e->release_version++;
            PyObject *r = PyObject_CallFunctionObjArgs(
                e->m_on_release, job, e->ctx, NULL);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
    }
    return ce_check_misses(e);
}

/* processor.quantize through the exactly-typed inline fast paths. */
static int
ce_quantize(CoreEngine *e, double speed, double *out)
{
    if (e->quant_kind == 0 && !isnan(speed)) {
        /* ContinuousScale: min(1.0, max(min_speed, speed)) */
        double m = (speed > e->q_min) ? speed : e->q_min;
        *out = (m < 1.0) ? m : 1.0;
        return 0;
    }
    if (e->quant_kind == 1 && !isnan(speed)) {
        if (speed >= 1.0) {
            *out = 1.0;
            return 0;
        }
        double key = speed - 1e-12;
        /* bisect_left: first level >= key */
        Py_ssize_t lo = 0, hi = e->q_nlevels;
        while (lo < hi) {
            Py_ssize_t mid = (lo + hi) / 2;
            if (e->q_levels[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        *out = (lo >= e->q_nlevels) ? 1.0 : e->q_levels[lo];
        return 0;
    }
    /* custom scale, or NaN (quantize raises ConfigurationError) */
    PyObject *arg = PyFloat_FromDouble(speed);
    if (arg == NULL)
        return -1;
    PyObject *r = PyObject_CallFunctionObjArgs(e->m_quantize, arg, NULL);
    Py_DECREF(arg);
    if (r == NULL)
        return -1;
    *out = PyFloat_AsDouble(r);
    Py_DECREF(r);
    return (*out == -1.0 && PyErr_Occurred()) ? -1 : 0;
}

static int
ce_active_energy(CoreEngine *e, double speed, double duration, double *out)
{
    if (e->power_kind == 0) {
        /* PolynomialPowerModel: (dynamic * s**alpha + static) * dt */
        *out = (e->p_dynamic * pow(speed, e->p_alpha) + e->p_static)
               * duration;
        return 0;
    }
    PyObject *s = PyFloat_FromDouble(speed);
    PyObject *d = PyFloat_FromDouble(duration);
    if (s == NULL || d == NULL) {
        Py_XDECREF(s); Py_XDECREF(d);
        return -1;
    }
    PyObject *r = PyObject_CallFunctionObjArgs(e->m_active_energy, s, d,
                                               NULL);
    Py_DECREF(s); Py_DECREF(d);
    if (r == NULL)
        return -1;
    *out = PyFloat_AsDouble(r);
    Py_DECREF(r);
    return (*out == -1.0 && PyErr_Occurred()) ? -1 : 0;
}

/* One (kind) segment through the recorder; only called when the
 * recorder actually keeps segments. */
static int
ce_trace_segment(CoreEngine *e, const char *method, double start,
                 double end, double energy)
{
    PyObject *r = PyObject_CallMethod(e->trace, method, "ddd",
                                      start, end, energy);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static int
ce_idle_until(CoreEngine *e, double until)
{
    if (until <= e->now + K_TIME_EPS) {
        /* max(now, until) */
        if (until > e->now)
            e->now = until;
        return 0;
    }
    double duration = until - e->now;
    double energy = e->idle_power * duration;
    e->idle_energy += energy;
    e->idle_time += duration;
    e->idle_episodes++;
    if (e->record_trace &&
        ce_trace_segment(e, "idle", e->now, until, energy) < 0)
        return -1;
    ce_set_last_running(e, NULL);
    e->now = until;
    return ce_check_misses(e);
}

static int
ce_sleep_until(CoreEngine *e, double until)
{
    double duration = until - e->now;
    double energy = e->sleep_power * duration + e->wakeup_energy;
    e->sleep_energy += energy;
    e->sleep_time += duration;
    e->sleep_episodes++;
    if (e->record_trace &&
        ce_trace_segment(e, "sleep", e->now, until, energy) < 0)
        return -1;
    ce_set_last_running(e, NULL);
    e->now = until;
    return ce_check_misses(e);
}

static int
ce_handle_empty(CoreEngine *e)
{
    double next_release = ce_next_release_global(e);
    if (e->horizon < next_release)
        next_release = e->horizon;
    if (!e->has_idle_policy)
        return ce_idle_until(e, next_release);
    PyObject *now_obj = PyFloat_FromDouble(e->now);
    PyObject *nr_obj = PyFloat_FromDouble(next_release);
    if (now_obj == NULL || nr_obj == NULL) {
        Py_XDECREF(now_obj); Py_XDECREF(nr_obj);
        return -1;
    }
    PyObject *plan = PyObject_CallFunctionObjArgs(
        e->m_plan_idle, e->ctx, now_obj, nr_obj, NULL);
    Py_DECREF(now_obj); Py_DECREF(nr_obj);
    if (plan == NULL)
        return -1;
    PyObject *sleep_obj = PyObject_GetAttr(plan, s_sleep);
    if (sleep_obj == NULL) {
        Py_DECREF(plan);
        return -1;
    }
    int do_sleep = PyObject_IsTrue(sleep_obj);
    Py_DECREF(sleep_obj);
    double wake_time;
    if (do_sleep < 0 || attr_as_double(plan, s_wake_time, &wake_time) < 0) {
        Py_DECREF(plan);
        return -1;
    }
    Py_DECREF(plan);
    /* min(max(plan.wake_time, now), horizon) */
    double wake = (e->now > wake_time) ? e->now : wake_time;
    if (e->horizon < wake)
        wake = e->horizon;
    if (!do_sleep)
        return ce_idle_until(e, wake);
    if (wake <= e->now + K_TIME_EPS)
        return ce_idle_until(e, next_release);
    return ce_sleep_until(e, wake);
}

static int
ce_speed_time_add(CoreEngine *e, double speed, double duration)
{
    for (Py_ssize_t i = 0; i < e->n_spd; i++) {
        if (e->spd_exact[i] == speed) {
            e->spd_dur[i] += duration;
            return 0;
        }
    }
    PyObject *s = PyFloat_FromDouble(speed);
    if (s == NULL)
        return -1;
    PyObject *key = PyObject_CallFunctionObjArgs(e->h_round_key, s, NULL);
    Py_DECREF(s);
    if (key == NULL)
        return -1;
    if (e->n_spd == e->cap_spd) {
        Py_ssize_t cap = e->cap_spd * 2;
        double *ex = PyMem_Realloc(e->spd_exact,
                                   (size_t)cap * sizeof(double));
        double *du = PyMem_Realloc(ex ? e->spd_dur : NULL,
                                   (size_t)cap * sizeof(double));
        PyObject **ke = PyMem_Realloc(du ? e->spd_key : NULL,
                                      (size_t)cap * sizeof(PyObject *));
        if (ex != NULL)
            e->spd_exact = ex;
        if (du != NULL)
            e->spd_dur = du;
        if (ke != NULL)
            e->spd_key = ke;
        if (ex == NULL || du == NULL || ke == NULL) {
            Py_DECREF(key);
            PyErr_NoMemory();
            return -1;
        }
        e->cap_spd = cap;
    }
    e->spd_exact[e->n_spd] = speed;
    e->spd_dur[e->n_spd] = duration;
    e->spd_key[e->n_spd] = key;    /* steal */
    e->n_spd++;
    return 0;
}

static int
ce_apply_speed(CoreEngine *e, PyObject *desired, double *out)
{
    double d = 0.0;
    int invalid = (desired == Py_None);
    if (!invalid) {
        d = PyFloat_AsDouble(desired);
        if (d == -1.0 && PyErr_Occurred())
            return -1;
        invalid = isnan(d);
    }
    if (invalid) {
        PyObject *r = PyObject_CallFunctionObjArgs(
            e->h_bad_speed, e->result, desired, NULL);
        Py_XDECREF(r);
        return -1;
    }
    double speed;
    if (ce_quantize(e, d, &speed) < 0)
        return -1;
    if (speed <= 0.0 || speed > 1.0 + K_TIME_EPS) {
        PyObject *s = PyFloat_FromDouble(speed);
        if (s != NULL) {
            PyObject *r = PyObject_CallFunctionObjArgs(e->h_bad_quant, s,
                                                       NULL);
            Py_XDECREF(r);
            Py_DECREF(s);
        }
        return -1;
    }
    if (fabs(speed - e->current_speed) <= K_SPEED_EPS) {
        *out = e->current_speed;
        return 0;
    }
    double extra_dt = 0.0;
    if (e->faults_transitions) {
        PyObject *att = PyLong_FromLong(e->switch_attempts);
        PyObject *cur = PyFloat_FromDouble(e->current_speed);
        PyObject *tgt = PyFloat_FromDouble(speed);
        if (att == NULL || cur == NULL || tgt == NULL) {
            Py_XDECREF(att); Py_XDECREF(cur); Py_XDECREF(tgt);
            return -1;
        }
        PyObject *outcome = PyObject_CallFunctionObjArgs(
            e->m_transition_outcome, att, cur, tgt, NULL);
        Py_DECREF(att); Py_DECREF(cur); Py_DECREF(tgt);
        if (outcome == NULL)
            return -1;
        e->switch_attempts++;
        PyObject *faulted = PyObject_GetAttr(outcome, s_faulted);
        if (faulted == NULL) {
            Py_DECREF(outcome);
            return -1;
        }
        int is_faulted = PyObject_IsTrue(faulted);
        Py_DECREF(faulted);
        double achieved, extra;
        if (is_faulted < 0 ||
            attr_as_double(outcome, s_achieved, &achieved) < 0 ||
            attr_as_double(outcome, s_extra_time, &extra) < 0) {
            Py_DECREF(outcome);
            return -1;
        }
        Py_DECREF(outcome);
        if (is_faulted)
            e->transition_faults++;
        if (fabs(achieved - e->current_speed) <= K_SPEED_EPS) {
            PyObject *r = PyObject_CallFunction(
                e->h_stuck_note, "Oddd", e->trace, e->now,
                e->current_speed, speed);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            if (ce_check_misses(e) < 0)
                return -1;
            *out = e->current_speed;
            return 0;
        }
        if (fabs(achieved - speed) > K_SPEED_EPS) {
            PyObject *r = PyObject_CallFunction(
                e->h_requant_note, "Oddd", e->trace, e->now, speed,
                achieved);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
        /* quantize(min(1.0, achieved)) */
        double clamped = (achieved < 1.0) ? achieved : 1.0;
        if (ce_quantize(e, clamped, &speed) < 0)
            return -1;
        extra_dt = extra;
        if (fabs(speed - e->current_speed) <= K_SPEED_EPS) {
            if (ce_check_misses(e) < 0)
                return -1;
            *out = e->current_speed;
            return 0;
        }
    }
    double dt = 0.0, de = 0.0;
    if (!e->trans_none) {
        PyObject *cur = PyFloat_FromDouble(e->current_speed);
        PyObject *tgt = PyFloat_FromDouble(speed);
        if (cur == NULL || tgt == NULL) {
            Py_XDECREF(cur); Py_XDECREF(tgt);
            return -1;
        }
        PyObject *pair = PyObject_CallFunctionObjArgs(e->m_transition,
                                                      cur, tgt, NULL);
        Py_DECREF(cur); Py_DECREF(tgt);
        if (pair == NULL)
            return -1;
        if (!PyArg_ParseTuple(pair, "dd", &dt, &de)) {
            Py_DECREF(pair);
            return -1;
        }
        Py_DECREF(pair);
    }
    dt += extra_dt;
    e->switch_count++;
    e->switch_energy += de;
    if (dt > 0.0) {
        double end = e->now + dt;
        if (e->horizon < end)
            end = e->horizon;
        e->switch_time += end - e->now;
        if (e->record_trace) {
            PyObject *r = PyObject_CallMethod(e->trace, "switch", "dddd",
                                              e->now, end, de, speed);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
        e->now = end;
    }
    e->current_speed = speed;
    if (ce_check_misses(e) < 0)
        return -1;
    *out = speed;
    return 0;
}

static int
ce_complete(CoreEngine *e, Py_ssize_t idx)
{
    JobSlot slot = e->active[idx];   /* takes over the job reference */
    PyObject *now_obj = PyFloat_FromDouble(e->now);
    if (now_obj == NULL)
        return -1;
    PyObject *r = PyObject_CallMethodObjArgs(slot.job, s_complete,
                                             now_obj, NULL);
    Py_DECREF(now_obj);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    memmove(&e->active[idx], &e->active[idx + 1],
            (size_t)(e->n_active - idx - 1) * sizeof(JobSlot));
    e->n_active--;
    e->jobs_completed++;
    e->st_completed[slot.task]++;
    double response = e->now - slot.release;
    if (response == 0.0)
        response = 0.0;   /* `or 0.0` canonicalizes -0.0 */
    e->st_resp[slot.task] += response;
    if (response > e->st_maxresp[slot.task])
        e->st_maxresp[slot.task] = response;
    int status = 0;
    /* met_deadline(eps=DEADLINE_EPS) on the just-set completion time */
    if (!(e->now <= slot.deadline + K_DEADLINE_EPS) && !slot.missed) {
        PyObject *t = PyFloat_FromDouble(e->now);
        PyObject *m = t == NULL ? NULL : PyObject_CallFunctionObjArgs(
            e->h_miss, e->result, e->trace, slot.job, t,
            e->allow_misses ? Py_True : Py_False, NULL);
        Py_XDECREF(t);
        if (m == NULL)
            status = -1;
        else
            Py_DECREF(m);
    }
    if (status == 0) {
        ce_set_last_running(e, NULL);
        PyObject *h = PyObject_CallFunctionObjArgs(e->m_on_completion,
                                                   slot.job, e->ctx, NULL);
        if (h == NULL)
            status = -1;
        else
            Py_DECREF(h);
    }
    Py_DECREF(slot.job);
    return status;
}

static int
ce_dispatch(CoreEngine *e, Py_ssize_t idx)
{
    PyObject *job = e->active[idx].job;
    Py_INCREF(job);
    int status = -1;

    if (e->last_running != NULL && e->last_running != job) {
        /* the engine invariant guarantees last_running is incomplete */
        Py_ssize_t li = ce_find_slot(e, e->last_running);
        if (li >= 0) {
            JobSlot *ls = &e->active[li];
            ls->preempt++;
            PyObject *pc = PyLong_FromLong(ls->preempt);
            if (pc == NULL ||
                PyObject_SetAttr(ls->job, s_preemption_count, pc) < 0) {
                Py_XDECREF(pc);
                goto done;
            }
            Py_DECREF(pc);
            e->st_preempt[ls->task]++;
        }
    }
    if (!e->active[idx].dispatched) {
        e->active[idx].dispatched = 1;
        PyObject *t = PyFloat_FromDouble(e->now);
        if (t == NULL ||
            PyObject_SetAttr(job, s_first_dispatch_time, t) < 0) {
            Py_XDECREF(t);
            goto done;
        }
        Py_DECREF(t);
    }
    e->dispatches++;
    PyObject *desired = PyObject_CallFunctionObjArgs(e->m_select_speed,
                                                     job, e->ctx, NULL);
    if (desired == NULL)
        goto done;
    PyObject *enabled = PyObject_GetAttr(e->telemetry, s_enabled);
    if (enabled == NULL) {
        Py_DECREF(desired);
        goto done;
    }
    int tele = PyObject_IsTrue(enabled);
    Py_DECREF(enabled);
    if (tele < 0) {
        Py_DECREF(desired);
        goto done;
    }
    if (tele) {
        PyObject *r = PyObject_CallFunctionObjArgs(e->m_observe, desired,
                                                   NULL);
        if (r == NULL) {
            Py_DECREF(desired);
            goto done;
        }
        Py_DECREF(r);
    }
    double speed;
    int rc = ce_apply_speed(e, desired, &speed);
    Py_DECREF(desired);
    if (rc < 0)
        goto done;

    if (e->now >= e->horizon - K_TIME_EPS) {
        ce_set_last_running(e, job);
        status = 0;
        goto done;
    }
    /* a release during a timed switch may change the best job */
    if (ce_process_releases(e) < 0)
        goto done;
    Py_ssize_t best = ce_pick(e);
    if (best < 0 || e->active[best].job != job) {
        ce_set_last_running(e, job);
        status = 0;
        goto done;
    }
    JobSlot *s = &e->active[idx];
    double remaining = snap_nonneg(s->work - s->executed);
    double completion = e->now + remaining / speed;
    double fence = ce_next_release_global(e);
    if (e->horizon < fence)
        fence = e->horizon;
    double next_point, retired;
    if (completion <= fence) {
        next_point = completion;
        retired = remaining;
    }
    else {
        next_point = fence;
        double cap = speed * (next_point - e->now);
        retired = (cap < remaining) ? cap : remaining;
    }
    double duration = next_point - e->now;
    if (duration <= 0.0) {
        PyObject *r = PyObject_CallFunction(e->h_no_progress, "dd",
                                            e->now, next_point);
        Py_XDECREF(r);
        goto done;
    }
    /* job.execute(retired), with slot state kept in lockstep */
    if (retired < -K_TIME_EPS) {
        PyObject *r = PyObject_CallFunction(e->h_neg_exec, "Od", job,
                                            retired);
        Py_XDECREF(r);
        goto done;
    }
    double inc = (retired > 0.0) ? retired : 0.0;
    double new_total = s->executed + inc;
    if (new_total > s->work + 1e-6) {
        PyObject *r = PyObject_CallFunction(e->h_overexec, "Od", job,
                                            new_total);
        Py_XDECREF(r);
        goto done;
    }
    s->executed = (new_total < s->work) ? new_total : s->work;
    PyObject *ex = PyFloat_FromDouble(s->executed);
    if (ex == NULL || PyObject_SetAttr(job, s_executed, ex) < 0) {
        Py_XDECREF(ex);
        goto done;
    }
    Py_DECREF(ex);
    double energy;
    if (ce_active_energy(e, speed, duration, &energy) < 0)
        goto done;
    e->busy_energy += energy;
    e->busy_time += duration;
    if (ce_speed_time_add(e, speed, duration) < 0)
        goto done;
    e->st_exec[s->task] += retired;
    if (e->record_trace) {
        PyObject *r = PyObject_CallFunction(
            e->h_trace_run, "OddOdd", e->trace, e->now, next_point, job,
            speed, energy);
        if (r == NULL)
            goto done;
        Py_DECREF(r);
    }
    e->now = next_point;
    ce_set_last_running(e, job);
    if (snap_nonneg(s->work - s->executed) <= K_WORK_EPS) {
        if (ce_complete(e, idx) < 0)
            goto done;
    }
    if (ce_process_releases(e) < 0)
        goto done;
    status = 0;
done:
    Py_DECREF(job);
    return status;
}

static int
ce_final_check(CoreEngine *e)
{
    for (Py_ssize_t i = 0; i < e->n_active; i++) {
        if (e->active[i].deadline <= e->horizon + K_TIME_EPS &&
            !e->active[i].missed) {
            if (ce_register_miss(e, i, e->horizon) < 0)
                return -1;
        }
    }
    return 0;
}

/* Write the C accumulators into the SimulationResult.  Called on both
 * the success and the error path, so partially-run state is visible
 * exactly as the interpreted engine would have left it. */
static int
ce_flush(CoreEngine *e)
{
    PyObject *res = e->result;
#define SETF(name, val) do { \
        PyObject *obj_ = PyFloat_FromDouble(val); \
        if (obj_ == NULL || PyObject_SetAttrString(res, name, obj_) < 0) { \
            Py_XDECREF(obj_); return -1; } \
        Py_DECREF(obj_); } while (0)
#define SETI(name, val) do { \
        PyObject *obj_ = PyLong_FromLong(val); \
        if (obj_ == NULL || PyObject_SetAttrString(res, name, obj_) < 0) { \
            Py_XDECREF(obj_); return -1; } \
        Py_DECREF(obj_); } while (0)
    SETF("busy_energy", e->busy_energy);
    SETF("idle_energy", e->idle_energy);
    SETF("switch_energy", e->switch_energy);
    SETF("sleep_energy", e->sleep_energy);
    SETF("busy_time", e->busy_time);
    SETF("idle_time", e->idle_time);
    SETF("switch_time", e->switch_time);
    SETF("sleep_time", e->sleep_time);
    SETI("switch_count", e->switch_count);
    SETI("sleep_episodes", e->sleep_episodes);
    SETI("idle_episodes", e->idle_episodes);
    SETI("dispatches", e->dispatches);
    SETI("jobs_released", e->jobs_released);
    SETI("jobs_completed", e->jobs_completed);
    SETI("overrun_jobs", e->overruns);
    SETI("transition_faults", e->transition_faults);
#undef SETF
#undef SETI
    /* speed_time: a fresh dict in chronological key-first-seen order;
     * exact speeds that round to the same key accumulate in place. */
    PyObject *st = PyDict_New();
    if (st == NULL)
        return -1;
    for (Py_ssize_t i = 0; i < e->n_spd; i++) {
        PyObject *key = e->spd_key[i];
        PyObject *prev = PyDict_GetItemWithError(st, key);
        if (prev == NULL && PyErr_Occurred()) {
            Py_DECREF(st);
            return -1;
        }
        double total = e->spd_dur[i];
        if (prev != NULL)
            total += PyFloat_AsDouble(prev);
        PyObject *val = PyFloat_FromDouble(total);
        if (val == NULL || PyDict_SetItem(st, key, val) < 0) {
            Py_XDECREF(val);
            Py_DECREF(st);
            return -1;
        }
        Py_DECREF(val);
    }
    if (PyObject_SetAttrString(res, "speed_time", st) < 0) {
        Py_DECREF(st);
        return -1;
    }
    Py_DECREF(st);
    for (Py_ssize_t i = 0; i < e->n_tasks; i++) {
        PyObject *ts = PyTuple_GET_ITEM(e->task_stats, i);
#define TSETI(name, val) do { \
            PyObject *obj_ = PyLong_FromLong(val); \
            if (obj_ == NULL || \
                PyObject_SetAttrString(ts, name, obj_) < 0) { \
                Py_XDECREF(obj_); return -1; } \
            Py_DECREF(obj_); } while (0)
#define TSETF(name, val) do { \
            PyObject *obj_ = PyFloat_FromDouble(val); \
            if (obj_ == NULL || \
                PyObject_SetAttrString(ts, name, obj_) < 0) { \
                Py_XDECREF(obj_); return -1; } \
            Py_DECREF(obj_); } while (0)
        TSETI("released", e->st_released[i]);
        TSETI("completed", e->st_completed[i]);
        TSETI("preemptions", e->st_preempt[i]);
        TSETF("total_executed", e->st_exec[i]);
        TSETF("total_response", e->st_resp[i]);
        TSETF("max_response", e->st_maxresp[i]);
#undef TSETI
#undef TSETF
    }
    return 0;
}

static PyObject *
CoreEngine_run(CoreEngine *self, PyObject *args)
{
    PyObject *ctx;
    if (!PyArg_ParseTuple(args, "O", &ctx))
        return NULL;
    Py_INCREF(ctx);
    Py_XDECREF(self->ctx);
    self->ctx = ctx;

    int status = ce_process_releases(self);
    while (status == 0 && self->now < self->horizon - K_TIME_EPS) {
        Py_ssize_t idx = ce_pick(self);
        if (idx < 0) {
            status = ce_handle_empty(self);
            if (status == 0)
                status = ce_process_releases(self);
            continue;
        }
        status = ce_dispatch(self, idx);
    }
    if (status == 0)
        status = ce_final_check(self);

    /* flush even when aborting (deadline miss, policy error) so the
     * partial result matches the interpreted engine's */
    if (status < 0) {
        PyObject *etype, *eval, *etb;
        PyErr_Fetch(&etype, &eval, &etb);
        (void)ce_flush(self);
        PyErr_Restore(etype, eval, etb);
    }
    else {
        status = ce_flush(self);
    }
    Py_CLEAR(self->ctx);
    if (status < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* SimContext surface                                                  */
/* ------------------------------------------------------------------ */

static PyObject *
CoreEngine_pessimistic_next_release(CoreEngine *self, PyObject *args)
{
    PyObject *name;
    if (!PyArg_ParseTuple(args, "U", &name))
        return NULL;
    PyObject *idx_obj = PyDict_GetItemWithError(self->name2idx, name);
    if (idx_obj == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, name);
        return NULL;
    }
    Py_ssize_t i = PyLong_AsSsize_t(idx_obj);
    if (i == -1 && PyErr_Occurred())
        return NULL;
    if (self->is_periodic)
        return PyFloat_FromDouble(self->next_release[i]);
    double v;
    if (isnan(self->last_arrival[i]))
        v = self->next_release[i];
    else
        v = self->last_arrival[i] + self->t_period[i];
    /* max(now, v) */
    return PyFloat_FromDouble((v > self->now) ? v : self->now);
}

static PyObject *
CoreEngine_next_release_global_py(CoreEngine *self,
                                  PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(ce_next_release_global(self));
}

static PyObject *
CoreEngine_get_active(CoreEngine *self, void *Py_UNUSED(closure))
{
    PyObject *lst = PyList_New(self->n_active);
    if (lst == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->n_active; i++) {
        Py_INCREF(self->active[i].job);
        PyList_SET_ITEM(lst, i, self->active[i].job);
    }
    return lst;
}

static PyObject *
CoreEngine_get_now(CoreEngine *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
CoreEngine_get_current_speed(CoreEngine *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->current_speed);
}

static PyObject *
CoreEngine_get_horizon(CoreEngine *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->horizon);
}

static PyObject *
CoreEngine_get_release_version(CoreEngine *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLong(self->release_version);
}

#define OBJ_GETTER(field) \
    static PyObject * \
    CoreEngine_get_##field(CoreEngine *self, void *Py_UNUSED(closure)) \
    { \
        Py_INCREF(self->field); \
        return self->field; \
    }
OBJ_GETTER(taskset)
OBJ_GETTER(processor)
OBJ_GETTER(scheduler)
OBJ_GETTER(execution_model)
OBJ_GETTER(arrival_model)
OBJ_GETTER(trace)
OBJ_GETTER(next_release_dict)
OBJ_GETTER(next_index_dict)
#undef OBJ_GETTER

static PyGetSetDef CoreEngine_getset[] = {
    {"_now", (getter)CoreEngine_get_now, NULL, NULL, NULL},
    {"_current_speed", (getter)CoreEngine_get_current_speed, NULL, NULL,
     NULL},
    {"horizon", (getter)CoreEngine_get_horizon, NULL, NULL, NULL},
    {"_release_version", (getter)CoreEngine_get_release_version, NULL,
     NULL, NULL},
    {"_active", (getter)CoreEngine_get_active, NULL, NULL, NULL},
    {"taskset", (getter)CoreEngine_get_taskset, NULL, NULL, NULL},
    {"processor", (getter)CoreEngine_get_processor, NULL, NULL, NULL},
    {"scheduler", (getter)CoreEngine_get_scheduler, NULL, NULL, NULL},
    {"execution_model", (getter)CoreEngine_get_execution_model, NULL,
     NULL, NULL},
    {"arrival_model", (getter)CoreEngine_get_arrival_model, NULL, NULL,
     NULL},
    {"_trace", (getter)CoreEngine_get_trace, NULL, NULL, NULL},
    {"_next_release", (getter)CoreEngine_get_next_release_dict, NULL,
     NULL, NULL},
    {"_next_index", (getter)CoreEngine_get_next_index_dict, NULL, NULL,
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef CoreEngine_methods[] = {
    {"run", (PyCFunction)CoreEngine_run, METH_VARARGS,
     "Drive the full event loop; fills the bound SimulationResult."},
    {"_pessimistic_next_release",
     (PyCFunction)CoreEngine_pessimistic_next_release, METH_VARARGS,
     NULL},
    {"_next_release_global",
     (PyCFunction)CoreEngine_next_release_global_py, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CoreEngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._fastcore.CoreEngine",
    .tp_basicsize = sizeof(CoreEngine),
    .tp_dealloc = (destructor)CoreEngine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled mirror of Simulator's event loop.",
    .tp_methods = CoreEngine_methods,
    .tp_getset = CoreEngine_getset,
    .tp_init = (initproc)CoreEngine_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* slack kernels                                                       */
/* ------------------------------------------------------------------ */

typedef struct {
    double d;
    Py_ssize_t idx;
    double w;
} SlackEvent;

static int
event_cmp(const void *pa, const void *pb)
{
    const SlackEvent *a = pa, *b = pb;
    if (a->d < b->d)
        return -1;
    if (a->d > b->d)
        return 1;
    /* stable: original construction order breaks ties */
    return (a->idx < b->idx) ? -1 : (a->idx > b->idx) ? 1 : 0;
}

/* exact_slack_walk(t, d_first, window_end, active_d, active_w,
 *                  rel, rdl, per, wcet, util, corr) -> float */
static PyObject *
fastcore_exact_slack_walk(PyObject *Py_UNUSED(module), PyObject *args)
{
    double t, d_first, window_end;
    PyObject *o_ad, *o_aw, *o_rel, *o_rdl, *o_per, *o_wcet, *o_util,
        *o_corr;
    if (!PyArg_ParseTuple(args, "dddOOOOOOOO", &t, &d_first, &window_end,
                          &o_ad, &o_aw, &o_rel, &o_rdl, &o_per, &o_wcet,
                          &o_util, &o_corr))
        return NULL;
    Py_ssize_t n_active, n_tasks, nx;
    double *ad = NULL, *aw = NULL, *rel = NULL, *rdl = NULL, *per = NULL,
        *wcet = NULL, *util = NULL, *corr = NULL;
    SlackEvent *events = NULL;
    PyObject *out = NULL;
    if ((ad = seq_as_doubles(o_ad, &n_active)) == NULL ||
        (aw = seq_as_doubles(o_aw, &nx)) == NULL ||
        (rel = seq_as_doubles(o_rel, &n_tasks)) == NULL ||
        (rdl = seq_as_doubles(o_rdl, &nx)) == NULL ||
        (per = seq_as_doubles(o_per, &nx)) == NULL ||
        (wcet = seq_as_doubles(o_wcet, &nx)) == NULL ||
        (util = seq_as_doubles(o_util, &nx)) == NULL ||
        (corr = seq_as_doubles(o_corr, &nx)) == NULL)
        goto cleanup;

    double fence = window_end + 1e-12;
    /* count events to size the array */
    Py_ssize_t cap = n_active;
    for (Py_ssize_t i = 0; i < n_tasks; i++) {
        double deadline = rel[i] + rdl[i];
        if (deadline <= fence && per[i] > 0.0)
            cap += (Py_ssize_t)floor((fence - deadline) / per[i]) + 2;
    }
    events = PyMem_Malloc((size_t)(cap > 0 ? cap : 1)
                          * sizeof(SlackEvent));
    if (events == NULL) {
        PyErr_NoMemory();
        goto cleanup;
    }
    Py_ssize_t n = 0;
    for (Py_ssize_t i = 0; i < n_active; i++) {
        events[n].d = ad[i];
        events[n].w = aw[i];
        events[n].idx = n;
        n++;
    }
    for (Py_ssize_t i = 0; i < n_tasks; i++) {
        double deadline = rel[i] + rdl[i];
        while (deadline <= fence) {
            if (n >= cap) {   /* defensive; the count above is exact */
                Py_ssize_t grown = cap * 2 + 8;
                SlackEvent *ge = PyMem_Realloc(
                    events, (size_t)grown * sizeof(SlackEvent));
                if (ge == NULL) {
                    PyErr_NoMemory();
                    goto cleanup;
                }
                events = ge;
                cap = grown;
            }
            events[n].d = deadline;
            events[n].w = wcet[i];
            events[n].idx = n;
            n++;
            deadline += per[i];
        }
    }
    qsort(events, (size_t)n, sizeof(SlackEvent), event_cmp);

    double best = INFINITY;
    double h = 0.0;
    Py_ssize_t i = 0;
    while (i < n) {
        double d_k = events[i].d;
        while (i < n && events[i].d <= d_k + 1e-12) {
            h += events[i].w;
            i++;
        }
        if (d_k >= d_first - 1e-12) {
            double g = d_k - t - h;
            if (g < best)
                best = g;
        }
    }
    /* _tail_guard: active budgets + linear future demand at the edge */
    double total = 0.0;
    for (Py_ssize_t j = 0; j < n_active; j++)
        total += aw[j];
    for (Py_ssize_t j = 0; j < n_tasks; j++) {
        double head = window_end - rel[j];
        total += util[j] * ((head > 0.0) ? head : 0.0);
        if (rdl[j] < per[j])
            total += corr[j];
    }
    double tail = window_end - t - total;
    if (tail < best)
        best = tail;
    out = PyFloat_FromDouble((best > 0.0) ? best : 0.0);
cleanup:
    PyMem_Free(ad); PyMem_Free(aw); PyMem_Free(rel); PyMem_Free(rdl);
    PyMem_Free(per); PyMem_Free(wcet); PyMem_Free(util);
    PyMem_Free(corr); PyMem_Free(events);
    return out;
}

/* heuristic_slack_walk(t, d_first, active_d, active_w, rel, util, corr)
 * -> float.  Candidates: active deadlines, d_first, releases >= d_first
 * (duplicates harmless: identical g).  Demand accumulation order is
 * actives in state order, then tasks in task order — matching the
 * interpreted loop bit for bit. */
static PyObject *
fastcore_heuristic_slack_walk(PyObject *Py_UNUSED(module), PyObject *args)
{
    double t, d_first;
    PyObject *o_ad, *o_aw, *o_rel, *o_util, *o_corr;
    if (!PyArg_ParseTuple(args, "ddOOOOO", &t, &d_first, &o_ad, &o_aw,
                          &o_rel, &o_util, &o_corr))
        return NULL;
    Py_ssize_t n_active, n_tasks, nx;
    double *ad = NULL, *aw = NULL, *rel = NULL, *util = NULL,
        *corr = NULL;
    PyObject *out = NULL;
    if ((ad = seq_as_doubles(o_ad, &n_active)) == NULL ||
        (aw = seq_as_doubles(o_aw, &nx)) == NULL ||
        (rel = seq_as_doubles(o_rel, &n_tasks)) == NULL ||
        (util = seq_as_doubles(o_util, &nx)) == NULL ||
        (corr = seq_as_doubles(o_corr, &nx)) == NULL)
        goto cleanup;

    double best = INFINITY;
    Py_ssize_t n_cand = n_active + 1 + n_tasks;
    for (Py_ssize_t c = 0; c < n_cand; c++) {
        double d_k;
        if (c < n_active)
            d_k = ad[c];
        else if (c == n_active)
            d_k = d_first;
        else {
            d_k = rel[c - n_active - 1];
            if (!(d_k >= d_first))
                continue;   /* release candidates require >= d_first */
        }
        if (d_k < d_first - 1e-12)
            continue;
        double cfence = d_k + 1e-12;
        double total = 0.0;
        for (Py_ssize_t j = 0; j < n_active; j++) {
            if (ad[j] <= cfence)
                total += aw[j];
        }
        for (Py_ssize_t j = 0; j < n_tasks; j++) {
            double headroom = d_k - rel[j];
            if (headroom > 0.0)
                total += util[j] * headroom + corr[j];
        }
        double g = d_k - t - total;
        if (g < best)
            best = g;
    }
    out = PyFloat_FromDouble((best > 0.0) ? best : 0.0);
cleanup:
    PyMem_Free(ad); PyMem_Free(aw); PyMem_Free(rel); PyMem_Free(util);
    PyMem_Free(corr);
    return out;
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef fastcore_methods[] = {
    {"exact_slack_walk", fastcore_exact_slack_walk, METH_VARARGS,
     "Compiled exact slack event walk (flattened state)."},
    {"heuristic_slack_walk", fastcore_heuristic_slack_walk, METH_VARARGS,
     "Compiled heuristic slack walk (flattened state)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._fastcore",
    .m_doc = "Compiled scalar engine core (optional build artifact).",
    .m_size = -1,
    .m_methods = fastcore_methods,
};

PyMODINIT_FUNC
PyInit__fastcore(void)
{
    if (intern_names() < 0)
        return NULL;
    PyObject *m = PyModule_Create(&fastcore_module);
    if (m == NULL)
        return NULL;
    if (PyType_Ready(&CoreEngineType) < 0 ||
        PyModule_AddObjectRef(m, "CoreEngine",
                              (PyObject *)&CoreEngineType) < 0 ||
        PyModule_AddIntConstant(m, "COMPILED", 1) < 0 ||
        PyModule_AddStringConstant(m, "BACKEND", "c-extension") < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
