"""Simulation outcome containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.tracing import TraceNote, TraceRecorder
from repro.types import Energy, Time


@dataclass
class TaskStats:
    """Per-task aggregates accumulated during a run."""

    released: int = 0
    completed: int = 0
    missed: int = 0
    total_executed: float = 0.0
    total_response: float = 0.0
    max_response: float = 0.0
    preemptions: int = 0

    @property
    def mean_response(self) -> float:
        """Mean response time over completed jobs (0 when none)."""
        if self.completed == 0:
            return 0.0
        return self.total_response / self.completed


@dataclass
class DeadlineMiss:
    """Record of one missed deadline (only with ``allow_misses``)."""

    job: str
    task: str
    deadline: Time
    detected_at: Time


@dataclass
class SimulationResult:
    """Everything a run produced.

    Energies decompose exactly: ``total_energy = busy_energy +
    idle_energy + switch_energy + sleep_energy``.
    """

    policy: str
    horizon: Time
    busy_energy: Energy = 0.0
    idle_energy: Energy = 0.0
    switch_energy: Energy = 0.0
    sleep_energy: Energy = 0.0
    switch_count: int = 0
    sleep_episodes: int = 0
    busy_time: Time = 0.0
    idle_time: Time = 0.0
    switch_time: Time = 0.0
    sleep_time: Time = 0.0
    jobs_released: int = 0
    jobs_completed: int = 0
    dispatches: int = 0
    idle_episodes: int = 0
    overrun_jobs: int = 0
    transition_faults: int = 0
    deadline_misses: list[DeadlineMiss] = field(default_factory=list)
    task_stats: dict[str, TaskStats] = field(default_factory=dict)
    speed_time: dict[float, Time] = field(default_factory=dict)
    policy_metrics: dict[str, float] = field(default_factory=dict)
    trace: TraceRecorder | None = None
    #: Zero-duration annotations (governor interventions, injected
    #: faults, overruns) — captured even when full segment tracing is
    #: disabled, so large sweeps keep their audit trail.
    notes: tuple[TraceNote, ...] = ()

    @property
    def total_energy(self) -> Energy:
        return (self.busy_energy + self.idle_energy + self.switch_energy
                + self.sleep_energy)

    @property
    def missed(self) -> bool:
        return bool(self.deadline_misses)

    def notes_of_kind(self, kind: str) -> tuple[TraceNote, ...]:
        """The buffered annotations of one kind (e.g. ``"governor"``)."""
        return tuple(n for n in self.notes if n.kind == kind)

    def energy_ledger(self):
        """Per-task/per-job energy attribution for this traced run.

        Requires ``record_trace=True``; see
        :class:`repro.trace.ledger.EnergyLedger`.
        """
        from repro.trace.ledger import EnergyLedger

        return EnergyLedger.from_result(self)

    def normalized_energy(self, baseline: "SimulationResult") -> float:
        """This run's energy relative to *baseline* (same workload)."""
        if abs(self.horizon - baseline.horizon) > 1e-6 * max(1.0, self.horizon):
            raise ConfigurationError(
                f"cannot normalise across different horizons "
                f"({self.horizon} vs {baseline.horizon})")
        if baseline.total_energy <= 0:
            raise ConfigurationError("baseline energy is zero")
        return self.total_energy / baseline.total_energy

    def mean_speed(self) -> float:
        """Time-weighted average execution speed while busy."""
        if self.busy_time <= 0:
            return 0.0
        weighted = sum(s * t for s, t in self.speed_time.items())
        return weighted / self.busy_time

    def summary(self) -> str:
        """One human-readable paragraph of the run's outcome."""
        lines = [
            f"policy={self.policy} horizon={self.horizon:g}",
            f"  energy: total={self.total_energy:.6g} "
            f"(busy={self.busy_energy:.6g}, idle={self.idle_energy:.6g}, "
            f"switch={self.switch_energy:.6g}, "
            f"sleep={self.sleep_energy:.6g})",
            f"  time: busy={self.busy_time:.6g}, idle={self.idle_time:.6g}, "
            f"switch={self.switch_time:.6g}, sleep={self.sleep_time:.6g}",
            f"  jobs: released={self.jobs_released}, "
            f"completed={self.jobs_completed}, "
            f"misses={len(self.deadline_misses)}",
            f"  switches={self.switch_count}, "
            f"mean busy speed={self.mean_speed():.4f}",
        ]
        if self.overrun_jobs or self.transition_faults:
            lines.append(f"  faults: overrun_jobs={self.overrun_jobs}, "
                         f"transition_faults={self.transition_faults}")
        if self.policy_metrics:
            rendered = ", ".join(f"{k}={v:g}"
                                 for k, v in sorted(self.policy_metrics.items()))
            lines.append(f"  policy metrics: {rendered}")
        return "\n".join(lines)
