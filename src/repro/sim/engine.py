"""The event-driven DVS scheduling simulator.

The engine advances from scheduling point to scheduling point (job
release, job completion, speed-transition end, horizon); between two
points exactly one job executes at one constant speed, or the processor
idles, so energy integrates in closed form.  The bound DVS policy is
consulted at every dispatch and its (quantized) speed holds until the
next point — the intra-job constant-speed model of the DVS-EDF
literature.

Deadline misses abort the run with :class:`DeadlineMissError` unless
``allow_misses=True`` (used by tests that *expect* misses, e.g. when
demonstrating that ignoring switch overhead is unsafe).
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Mapping

from repro.analysis.slack import ActiveJob, SystemState
from repro.cpu.processor import Processor
from repro.errors import (
    ConfigurationError,
    DeadlineMissError,
    PolicyError,
    SimulationError,
)
from repro.faults import FaultPlan, FaultyArrival, FaultyExecution
from repro.sim import fastcore as _fastcore
from repro.sim.results import DeadlineMiss, SimulationResult, TaskStats
from repro.sim.scheduler import EDFScheduler, Scheduler
from repro.sim.tracing import TraceRecorder
from repro.telemetry import TELEMETRY as _TELEMETRY
from repro.profiling import PROFILER as _PROFILER
from repro.tasks.arrivals import ArrivalModel, PeriodicArrival
from repro.tasks.execution import ExecutionModel, WorstCaseExecution
from repro.tasks.job import Job
from repro.tasks.taskset import TaskSet
from repro.types import (
    DEADLINE_EPS,
    SPEED_EPS,
    TIME_EPS,
    WORK_EPS,
    Speed,
    Time,
)

if TYPE_CHECKING:
    from repro.policies.base import DvsPolicy
    from repro.policies.procrastination import IdlePolicy


class SimContext:
    """The read-only view of engine state handed to DVS policies.

    The release map handed to the slack analyses only changes when a
    job is released (periodic arrivals) or time advances (the
    pessimistic sporadic view), so the context memoizes it against the
    engine's release version — policies that snapshot the schedule
    several times per scheduling point (wrappers, dual-baseline
    policies) share one dict instead of rebuilding it per call.
    Callers must treat the returned mapping as frozen; the cache is
    replaced, never mutated, so holding a reference stays safe.
    """

    def __init__(self, engine: "Simulator") -> None:
        self._engine = engine
        self._map_cache: tuple[int, Time | None, dict[str, Time]] | None \
            = None

    @property
    def time(self) -> Time:
        """Current simulation time."""
        return self._engine._now

    @property
    def taskset(self) -> TaskSet:
        return self._engine.taskset

    @property
    def processor(self) -> Processor:
        return self._engine.processor

    @property
    def current_speed(self) -> Speed:
        """The speed the processor is currently set to."""
        return self._engine._current_speed

    @property
    def horizon(self) -> Time:
        """End of the simulation; no obligations exist beyond it."""
        return self._engine.horizon

    @property
    def active_jobs(self) -> tuple[Job, ...]:
        """Released, incomplete jobs (unsorted)."""
        return tuple(self._engine._active)

    def ready_sorted(self) -> list[Job]:
        """Active jobs from highest to lowest scheduling priority."""
        return self._engine.scheduler.sorted_ready(self._engine._active)

    def next_release_of(self, task_name: str) -> Time:
        """Earliest *possible* next release of one task.

        For periodic arrivals this is the actual next release.  For
        sporadic arrivals an online policy may only assume the minimum
        separation, so the view is pessimistic (``last arrival +
        period``, clamped to now) — the engine's actual sampled arrival
        is never earlier, which keeps every slack analysis safe.
        """
        return self._engine._pessimistic_next_release(task_name)

    def next_release_map(self) -> Mapping[str, Time]:
        """Earliest possible next release for every task.

        Memoized against the engine's release version (and, for
        sporadic arrivals, the current time): rebuilding only happens
        after a release, not at every analysis call.
        """
        engine = self._engine
        cached = self._map_cache
        if engine.arrival_model.is_periodic:
            if cached is not None and cached[0] == engine._release_version:
                return cached[2]
            # Identical keys/order/values to the pessimistic view: for
            # periodic arrivals the sampled release *is* the bound.
            mapping = dict(engine._next_release)
            self._map_cache = (engine._release_version, None, mapping)
            return mapping
        if (cached is not None and cached[0] == engine._release_version
                and cached[1] == engine._now):
            return cached[2]
        mapping = {task.name: engine._pessimistic_next_release(task.name)
                   for task in engine.taskset}
        self._map_cache = (engine._release_version, engine._now, mapping)
        return mapping

    def next_event_time(self) -> Time:
        """Earliest possible future release (horizon when none remains).

        Pessimistic under sporadic arrivals, like
        :meth:`next_release_of`.
        """
        engine = self._engine
        if engine.arrival_model.is_periodic:
            # Pessimistic == actual: the release heap already knows
            # the earliest pending release.
            return engine._next_release_global()
        horizon = engine.horizon
        next_release = engine._next_release
        best = horizon
        for task in engine.taskset:
            if next_release[task.name] < horizon - TIME_EPS:
                candidate = engine._pessimistic_next_release(task.name)
                if candidate < best:
                    best = candidate
        return best

    def next_job_index(self, task_name: str) -> int:
        """Index of the task's next (not yet released) job."""
        return self._engine._next_index[task_name]

    def note(self, kind: str, detail: str) -> None:
        """Pin an annotation to the trace at the current time.

        Used by wrapper policies (the safety governor) to make their
        interventions auditable.  Notes are buffered even when full
        segment tracing is disabled and surface on
        :attr:`~repro.sim.results.SimulationResult.notes`.
        """
        self._engine._trace.note(self._engine._now, kind, detail)

    @property
    def execution_model(self) -> ExecutionModel:
        """The workload oracle — only clairvoyant policies may use it."""
        return self._engine.execution_model

    @property
    def arrival_model(self) -> ArrivalModel:
        """The arrival oracle — only clairvoyant policies may use it."""
        return self._engine.arrival_model

    def slack_state(self, *, baseline_speed: float = 1.0,
                    scaled_tasks: tuple | None = None) -> SystemState:
        """Snapshot the schedule for :mod:`repro.analysis.slack`.

        With ``baseline_speed < 1`` the snapshot is expressed in the
        scaled time base: active budgets become wall time at that speed
        and the task tuple is replaced by *scaled_tasks* (precomputed
        with :func:`repro.analysis.slack.scale_tasks`, to avoid
        rebuilding task objects at every scheduling point).
        """
        engine = self._engine
        active = tuple(
            ActiveJob(deadline=job.deadline,
                      remaining_wcet=job.remaining_wcet / baseline_speed)
            for job in engine._active)
        tasks = (scaled_tasks if scaled_tasks is not None
                 else engine.taskset.tasks)
        # Direct construction: the engine maintains the invariants
        # SystemState.build() re-validates (every task present, no
        # release in the past), and the memoized release map is frozen
        # by contract, so the build-time copy is skipped too.
        return SystemState(
            time=engine._now,
            active=active,
            tasks=tasks,
            next_release=self.next_release_map(),
        )


class Simulator:
    """One simulation run binding a workload, a processor and a policy."""

    def __init__(
        self,
        taskset: TaskSet,
        processor: Processor,
        policy: "DvsPolicy",
        execution_model: ExecutionModel | None = None,
        *,
        arrival_model: ArrivalModel | None = None,
        idle_policy: "IdlePolicy | None" = None,
        scheduler: Scheduler | None = None,
        horizon: Time | None = None,
        record_trace: bool = False,
        allow_misses: bool = False,
        check_feasibility: bool = True,
        faults: FaultPlan | None = None,
    ) -> None:
        if check_feasibility:
            taskset.assert_feasible_edf()
        self.taskset = taskset
        self.processor = processor
        self.policy = policy
        self.execution_model = execution_model or WorstCaseExecution()
        self.arrival_model = arrival_model or PeriodicArrival()
        self.faults = faults
        if faults is not None:
            # Wrap rather than branch inside the hot loop: with
            # faults=None the fault-free path stays byte-identical.
            if faults.affects_execution:
                self.execution_model = FaultyExecution(
                    self.execution_model, faults)
            if faults.affects_arrivals:
                self.arrival_model = FaultyArrival(
                    self.arrival_model, faults)
        self.idle_policy = idle_policy
        self.scheduler = scheduler or EDFScheduler()
        self.horizon = horizon if horizon is not None else taskset.default_horizon()
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {self.horizon}")
        self.allow_misses = allow_misses
        self.record_trace = record_trace

        # Mutable run state (reset by run()).
        self._now: Time = 0.0
        self._active: list[Job] = []
        self._next_release: dict[str, Time] = {}
        self._release_heap: list[tuple[Time, str]] = []
        self._release_version: int = 0
        self._next_index: dict[str, int] = {}
        self._current_speed: Speed = 1.0
        self._missed_jobs: set[str] = set()
        self._last_running: Job | None = None
        self._result: SimulationResult | None = None
        self._ctx = SimContext(self)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full simulation and return its result."""
        prof = _PROFILER
        if not prof.enabled:
            return self._run()
        prof.push("engine.run")
        try:
            return self._run()
        finally:
            prof.pop()

    def _run(self) -> SimulationResult:
        self._reset()
        result = self._result
        assert result is not None
        self.policy.bind(self.taskset, self.processor)
        if self.idle_policy is not None:
            self.idle_policy.bind(self.taskset, self.processor)
        if not _fastcore.run_compiled(self):
            self._process_releases()

            while self._now < self.horizon - TIME_EPS:
                job = self.scheduler.pick(self._active)
                if job is None:
                    self._handle_empty_queue()
                    self._process_releases()
                    continue
                self._dispatch(job)

            self._final_miss_check()
        result.policy_metrics = dict(self.policy.metrics())
        result.trace = self._trace if self.record_trace else None
        result.notes = self._trace.notes
        if _TELEMETRY.enabled:
            self._fold_telemetry(result)
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _fold_telemetry(self, result: SimulationResult) -> None:
        """Fold one completed run's totals into the telemetry registry.

        Folding *after* the run (from counts the result accumulates
        anyway) keeps the hot loop free of telemetry calls: with the
        registry disabled the only per-run cost is the ``enabled``
        check in :meth:`run`, and with it enabled the per-dispatch
        cost is the single speed-decision observation hook.
        """
        tele = _TELEMETRY
        tele.inc("engine.runs")
        tele.inc("engine.steps", result.dispatches + result.idle_episodes
                 + result.sleep_episodes)
        tele.inc("engine.dispatches", result.dispatches)
        tele.inc("engine.releases", result.jobs_released)
        tele.inc("engine.completions", result.jobs_completed)
        tele.inc("engine.speed_switches", result.switch_count)
        tele.inc("engine.idle_transitions", result.idle_episodes)
        tele.inc("engine.sleep_transitions", result.sleep_episodes)
        tele.inc("engine.misses", len(result.deadline_misses))
        tele.inc("engine.overruns", result.overrun_jobs)
        tele.inc("engine.transition_faults", result.transition_faults)
        tele.emit("simulation", policy=result.policy,
                  horizon=result.horizon, released=result.jobs_released,
                  completed=result.jobs_completed,
                  dispatches=result.dispatches,
                  switches=result.switch_count,
                  misses=len(result.deadline_misses),
                  energy=result.total_energy)

    def _reset(self) -> None:
        self._now = 0.0
        self._active = []
        self._missed_jobs = set()
        self._last_running = None
        self._current_speed = 1.0
        self._switch_attempts = 0
        self._next_release = {
            t.name: self.arrival_model.arrival_time(t, 0)
            for t in self.taskset}
        self._last_arrival: dict[str, Time | None] = {
            t.name: None for t in self.taskset}
        self._next_index = {t.name: 0 for t in self.taskset}
        # Min-heap over pending release times with lazy invalidation:
        # an entry is current iff it matches _next_release[name].  The
        # heap answers "earliest pending release" in O(1) amortised
        # instead of a per-task scan at every scheduling point.
        self._release_heap: list[tuple[Time, str]] = [
            (r, name) for name, r in self._next_release.items()]
        heapify(self._release_heap)
        # Bumped on every release; SimContext caches key off it.
        self._release_version = 0
        self._ctx._map_cache = None
        self._trace = TraceRecorder(enabled=self.record_trace)
        self._result = SimulationResult(
            policy=getattr(self.policy, "name", type(self.policy).__name__),
            horizon=self.horizon,
            task_stats={t.name: TaskStats() for t in self.taskset},
        )

    def _next_release_global(self) -> Time:
        top = self._release_top()
        if top is not None and top < self.horizon - TIME_EPS:
            return top
        return self.horizon

    def _release_top(self) -> Time | None:
        """Earliest pending release, dropping stale heap entries."""
        heap = self._release_heap
        next_release = self._next_release
        while heap and heap[0][0] != next_release[heap[0][1]]:
            heappop(heap)
        return heap[0][0] if heap else None

    def _pessimistic_next_release(self, task_name: str) -> Time:
        """Earliest possible next release an online policy may assume."""
        if self.arrival_model.is_periodic:
            return self._next_release[task_name]
        last = self._last_arrival[task_name]
        if last is None:
            # First arrival: the phase is part of the task contract.
            return max(self._now, self._next_release[task_name])
        return max(self._now, last + self.taskset[task_name].period)

    def _process_releases(self) -> None:
        """Create all jobs whose release time has arrived."""
        # Fast path: when the earliest pending release is still in the
        # future, nothing can release — skip the per-task scan (this is
        # the common case, since most scheduling points are completions
        # mid-period).
        top = self._release_top()
        if top is None or top > self._now + TIME_EPS:
            self._check_misses()
            return
        for task in self.taskset:
            while (self._next_release[task.name] <= self._now + TIME_EPS
                   and self._next_release[task.name] < self.horizon - TIME_EPS):
                index = self._next_index[task.name]
                release = self._next_release[task.name]
                work = self.execution_model.work(task, index)
                job = Job.from_task(task, index, work, release=release,
                                    allow_overrun=self.faults is not None)
                if job.overrun:
                    self._result.overrun_jobs += 1
                    self._trace.note(
                        self._now, "overrun",
                        f"{job.name}: work {work:g} > wcet {task.wcet:g}")
                self._active.append(job)
                self._result.jobs_released += 1
                self._result.task_stats[task.name].released += 1
                self._last_arrival[task.name] = release
                self._next_index[task.name] = index + 1
                next_release = self.arrival_model.arrival_time(task, index + 1)
                self._next_release[task.name] = next_release
                heappush(self._release_heap, (next_release, task.name))
                self._release_version += 1
                self.policy.on_release(job, self._ctx)
        self._check_misses()

    def _check_misses(self) -> None:
        """Detect active jobs whose deadline has already passed."""
        fence = self._now - DEADLINE_EPS
        for job in self._active:
            if job.deadline < fence and job.name not in self._missed_jobs:
                self._register_miss(job, detected_at=self._now)

    def _register_miss(self, job: Job, detected_at: Time) -> None:
        self._missed_jobs.add(job.name)
        miss = DeadlineMiss(job=job.name, task=job.task.name,
                            deadline=job.deadline, detected_at=detected_at)
        self._result.deadline_misses.append(miss)
        self._result.task_stats[job.task.name].missed += 1
        self._trace.note(detected_at, "deadline-miss",
                         f"{job.name}: deadline {job.deadline:g}")
        if not self.allow_misses:
            raise DeadlineMissError(
                f"job {job.name} missed its deadline {job.deadline:g} "
                f"(detected at t={detected_at:g}, policy="
                f"{self._result.policy})",
                task=job.task.name, job_index=job.index,
                deadline=job.deadline, completion=detected_at)

    def _handle_empty_queue(self) -> None:
        """Idle or sleep until something can run again."""
        next_release = min(self._next_release_global(), self.horizon)
        if self.idle_policy is None:
            self._idle_until(next_release)
            return
        plan = self.idle_policy.plan_idle(self._ctx, self._now,
                                          next_release)
        if not plan.sleep:
            self._idle_until(min(max(plan.wake_time, self._now),
                                 self.horizon))
            return
        wake = min(max(plan.wake_time, self._now), self.horizon)
        if wake <= self._now + TIME_EPS:
            self._idle_until(next_release)
            return
        self._sleep_until(wake)

    def _sleep_until(self, until: Time) -> None:
        """One sleep episode (deadline-safe by the planner's contract)."""
        duration = until - self._now
        energy = self.processor.sleep_energy(duration)
        self._result.sleep_energy += energy
        self._result.sleep_time += duration
        self._result.sleep_episodes += 1
        self._trace.sleep(self._now, until, energy)
        self._last_running = None
        self._now = until
        self._check_misses()

    def _idle_until(self, until: Time) -> None:
        if until <= self._now + TIME_EPS:
            self._now = max(self._now, until)
            return
        duration = until - self._now
        energy = self.processor.idle_energy(duration)
        self._result.idle_energy += energy
        self._result.idle_time += duration
        self._result.idle_episodes += 1
        self._trace.idle(self._now, until, energy)
        self._last_running = None
        self._now = until
        self._check_misses()

    def _apply_speed(self, desired: Speed) -> Speed:
        """Quantize, validate and (paying overhead) switch to a speed."""
        if desired is None or math.isnan(desired):
            raise PolicyError(
                f"policy {self._result.policy} returned invalid speed "
                f"{desired!r}")
        speed = self.processor.quantize(desired)
        if speed <= 0 or speed > 1.0 + TIME_EPS:
            raise PolicyError(
                f"quantized speed {speed} outside (0, 1]")
        if abs(speed - self._current_speed) <= SPEED_EPS:
            return self._current_speed
        extra_dt = 0.0
        if self.faults is not None and self.faults.affects_transitions:
            outcome = self.faults.transition_outcome(
                self._switch_attempts, self._current_speed, speed)
            self._switch_attempts += 1
            if outcome.faulted:
                self._result.transition_faults += 1
            if abs(outcome.achieved - self._current_speed) <= SPEED_EPS:
                # The switch failed outright: no cost, speed holds.
                self._trace.note(self._now, "transition-fault",
                                 f"stuck at {self._current_speed:g} "
                                 f"(wanted {speed:g})")
                self._check_misses()
                return self._current_speed
            if abs(outcome.achieved - speed) > SPEED_EPS:
                self._trace.note(self._now, "transition-fault",
                                 f"quantized {speed:g} -> "
                                 f"{outcome.achieved:g}")
            # Re-snap to the processor grid: the faulty quantizer may
            # land between attainable levels.  quantize() rounds up, so
            # the achieved speed never drops below the request.
            speed = self.processor.quantize(min(1.0, outcome.achieved))
            extra_dt = outcome.extra_time
            if abs(speed - self._current_speed) <= SPEED_EPS:
                # Faulty quantization landed back on the current level.
                self._check_misses()
                return self._current_speed
        dt, de = self.processor.transition(self._current_speed, speed)
        dt += extra_dt
        self._result.switch_count += 1
        self._result.switch_energy += de
        if dt > 0:
            end = min(self._now + dt, self.horizon)
            self._result.switch_time += end - self._now
            self._trace.switch(self._now, end, de, to_speed=speed)
            self._now = end
        elif self.record_trace and de > 0:
            # Zero-duration switches still carry energy; attach it to a
            # zero-length marker the recorder drops, so account only in
            # the result totals (already done above).
            pass
        self._current_speed = speed
        self._check_misses()
        return speed

    def _dispatch(self, job: Job) -> None:
        """Run the chosen job until the next scheduling point."""
        if self._last_running is not None and self._last_running is not job:
            if not self._last_running.completed:
                self._last_running.preemption_count += 1
                self._result.task_stats[
                    self._last_running.task.name].preemptions += 1
        if job.first_dispatch_time is None:
            job.first_dispatch_time = self._now
        self._result.dispatches += 1
        if _PROFILER.enabled:
            _PROFILER.push("policy.decide")
            try:
                desired = self.policy.select_speed(job, self._ctx)
            finally:
                _PROFILER.pop()
        else:
            desired = self.policy.select_speed(job, self._ctx)
        if _TELEMETRY.enabled:
            self.policy.observe_decision(desired)
        speed = self._apply_speed(desired)
        if self._now >= self.horizon - TIME_EPS:
            self._last_running = job
            return
        # A release may have occurred during a timed switch; if it
        # changed the highest-priority job, re-dispatch.
        self._process_releases()
        current_best = self.scheduler.pick(self._active)
        if current_best is not job:
            self._last_running = job
            return

        remaining = job.remaining_work
        completion = self._now + remaining / speed
        fence = min(self._next_release_global(), self.horizon)
        if completion <= fence:
            # The job runs to completion before the next release: the
            # scheduling point is the completion event itself, and the
            # full remaining budget retires *exactly* — computing
            # ``speed * duration`` here would re-round the division
            # and leave float dust in ``remaining_work`` that long
            # horizons accumulate.
            next_point = completion
            retired = remaining
        else:
            # The next event time is known exactly (release timestamps
            # are arrival-model prefix sums; the horizon is a
            # constant), so assign it instead of accumulating a dt.
            next_point = fence
            retired = min(speed * (next_point - self._now), remaining)
        duration = next_point - self._now
        if duration <= 0:
            raise SimulationError(
                f"no progress at t={self._now} (next point {next_point})")
        job.execute(retired)
        result = self._result
        energy = self.processor.active_energy(speed, duration)
        result.busy_energy += energy
        result.busy_time += duration
        key = round(speed, 12)
        result.speed_time[key] = (
            result.speed_time.get(key, 0.0) + duration)
        result.task_stats[job.task.name].total_executed += retired
        if self.record_trace:
            self._trace.run(self._now, next_point, job.name, job.task.name,
                            speed, energy)
        self._now = next_point
        self._last_running = job

        if job.remaining_work <= WORK_EPS:
            self._complete(job)
        self._process_releases()

    def _complete(self, job: Job) -> None:
        job.complete(self._now)
        self._active.remove(job)
        self._result.jobs_completed += 1
        stats = self._result.task_stats[job.task.name]
        stats.completed += 1
        response = job.response_time or 0.0
        stats.total_response += response
        stats.max_response = max(stats.max_response, response)
        if not job.met_deadline(eps=DEADLINE_EPS) \
                and job.name not in self._missed_jobs:
            self._register_miss(job, detected_at=self._now)
        self._last_running = None
        self.policy.on_completion(job, self._ctx)

    def _final_miss_check(self) -> None:
        """Jobs incomplete at the horizon with expired deadlines missed."""
        for job in self._active:
            if (job.deadline <= self.horizon + TIME_EPS
                    and job.name not in self._missed_jobs):
                self._register_miss(job, detected_at=self.horizon)


def simulate(
    taskset: TaskSet,
    processor: Processor,
    policy: "DvsPolicy",
    execution_model: ExecutionModel | None = None,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(taskset, processor, policy, execution_model,
                     **kwargs).run()
