"""Optional compiled scalar engine core (DESIGN.md §13).

The scalar hot path — the :meth:`Simulator.run` event loop and the
exact/heuristic slack walks — is mirrored by a hand-written C extension
(:mod:`repro.sim._fastcore`), built only when ``REPRO_COMPILE=1`` is
set at install time.  This module is the seam between the two worlds:

* **Routing** — :func:`run_compiled` decides per run whether the
  compiled core may take over (extension present, not disabled via
  ``REPRO_COMPILED=0`` / :func:`set_compiled_default`, and the run uses
  the stock ``Simulator``/``EDFScheduler``/``Processor`` triple).  When
  it declines, the engine falls through to the interpreted loop — the
  two produce byte-identical :class:`SimulationResult`s by contract
  (enforced by ``scripts/compiled_gate.py``).
* **Rare-event helpers** — deadline misses, overrun/transition notes,
  and engine errors happen at most a handful of times per run, so the
  C core delegates them here.  Keeping the f-strings and exception
  construction in Python means the compiled path can never fork the
  message formats or exception types from the interpreted engine.
* **Kernels** — :func:`slack_kernels` hands ``repro.analysis.slack``
  the compiled event-walk kernels under the same enable switch.

Everything degrades transparently: without the extension every function
here reports "unavailable" and the interpreted engine runs exactly as
before, with zero new dependencies.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from types import SimpleNamespace
from typing import TYPE_CHECKING, Iterator

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale, DiscreteScale
from repro.cpu.transition import NoOverhead
from repro.errors import DeadlineMissError, PolicyError, SimulationError
from repro.sim.results import DeadlineMiss
from repro.sim.scheduler import EDFScheduler
from repro.tasks.arrivals import PeriodicArrival
from repro.tasks.job import Job
from repro.profiling import PROFILER as _PROFILER
from repro.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

try:
    from repro.sim import _fastcore as _EXT
except ImportError:  # plain install / toolchain-less host
    _EXT = None

_FALSY = frozenset({"0", "off", "false", "no"})
_default_override: bool | None = None

#: Runs taken by each backend since process start (the gate's
#: engagement probe and ``repro doctor``'s evidence).
RUN_COUNTS = {"compiled": 0, "interpreted": 0}


def compiled_available() -> bool:
    """``True`` when the C extension imported successfully."""
    return _EXT is not None


def compiled_enabled() -> bool:
    """Whether the compiled core may be used for the next run.

    Precedence: extension must exist; then an explicit
    :func:`set_compiled_default` override; then the ``REPRO_COMPILED``
    environment variable (``0``/``off``/``false``/``no`` disable); then
    on by default.  The env var is re-read per call so tests and forked
    workers see flips without re-imports.
    """
    if _EXT is None:
        return False
    if _default_override is not None:
        return _default_override
    env = os.environ.get("REPRO_COMPILED")
    if env is not None and env.strip().lower() in _FALSY:
        return False
    return True


def set_compiled_default(value: bool | None) -> None:
    """Force the compiled core on/off (``None`` restores env control)."""
    global _default_override
    _default_override = value


@contextmanager
def forced(value: bool | None) -> Iterator[None]:
    """Temporarily pin the backend choice (benches and gates)."""
    global _default_override
    previous = _default_override
    _default_override = value
    try:
        yield
    finally:
        _default_override = previous


def core_info() -> dict:
    """Backend evidence for ``repro doctor``."""
    return {
        "available": compiled_available(),
        "enabled": compiled_enabled(),
        "backend": getattr(_EXT, "BACKEND", None) if _EXT else None,
        "runs": dict(RUN_COUNTS),
    }


def slack_kernels():
    """The compiled slack kernels module, or ``None`` when inactive."""
    return _EXT if compiled_enabled() else None


# ----------------------------------------------------------------------
# Rare-event helpers (called from C; mirror Simulator verbatim)
# ----------------------------------------------------------------------

def _never(*_args):  # bound for never-taken callback slots
    raise SimulationError("fastcore callback invoked unexpectedly")


def _mk_job(task, index, work, release, allow_overrun):
    return Job.from_task(task, index, work, release=release,
                         allow_overrun=allow_overrun)


def _miss(result, trace, job, detected_at, allow_misses):
    # Mirrors Simulator._register_miss; the missed-jobs set lives in
    # the C core's per-slot flag.
    miss = DeadlineMiss(job=job.name, task=job.task.name,
                        deadline=job.deadline, detected_at=detected_at)
    result.deadline_misses.append(miss)
    result.task_stats[job.task.name].missed += 1
    trace.note(detected_at, "deadline-miss",
               f"{job.name}: deadline {job.deadline:g}")
    if not allow_misses:
        raise DeadlineMissError(
            f"job {job.name} missed its deadline {job.deadline:g} "
            f"(detected at t={detected_at:g}, policy="
            f"{result.policy})",
            task=job.task.name, job_index=job.index,
            deadline=job.deadline, completion=detected_at)


def _overrun_note(trace, now, job, work):
    trace.note(now, "overrun",
               f"{job.name}: work {work:g} > wcet {job.task.wcet:g}")


def _stuck_note(trace, now, current, wanted):
    trace.note(now, "transition-fault",
               f"stuck at {current:g} (wanted {wanted:g})")


def _requant_note(trace, now, speed, achieved):
    trace.note(now, "transition-fault",
               f"quantized {speed:g} -> {achieved:g}")


def _bad_speed(result, desired):
    raise PolicyError(
        f"policy {result.policy} returned invalid speed {desired!r}")


def _bad_quant(speed):
    raise PolicyError(f"quantized speed {speed} outside (0, 1]")


def _no_progress(now, next_point):
    raise SimulationError(
        f"no progress at t={now} (next point {next_point})")


def _overexec(job, new_total):
    raise SimulationError(
        f"job {job.name}: executed {new_total} exceeds actual "
        f"work {job.work}")


def _neg_exec(job, amount):
    raise SimulationError(
        f"job {job.name}: negative execution amount {amount}")


def _round_key(speed):
    return round(speed, 12)


def _trace_run(trace, start, end, job, speed, energy):
    trace.run(start, end, job.name, job.task.name, speed, energy)


# ----------------------------------------------------------------------
# Eligibility and run routing
# ----------------------------------------------------------------------

def _ineligible_reason(sim: "Simulator") -> str | None:
    """Why this run must stay interpreted (``None`` = eligible).

    Exact-type checks, not isinstance: a subclass may override any
    hook the C core inlines, and correctness beats speed.
    """
    from repro.sim.engine import Simulator
    if type(sim) is not Simulator:
        return f"subclassed simulator {type(sim).__name__}"
    if type(sim.scheduler) is not EDFScheduler:
        return f"scheduler {type(sim.scheduler).__name__}"
    if type(sim.processor) is not Processor:
        return f"processor {type(sim.processor).__name__}"
    return None


def _build_namespace(sim: "Simulator") -> SimpleNamespace:
    """Flatten one reset-and-bound Simulator into the C init contract."""
    proc = sim.processor
    scale = proc.scale
    if type(scale) is ContinuousScale:
        quant_kind, q_min, q_levels = 0, scale.min_speed, ()
    elif type(scale) is DiscreteScale:
        quant_kind, q_min, q_levels = 1, 0.0, scale.levels
    else:
        quant_kind, q_min, q_levels = 2, 0.0, ()
    pm = proc.power_model
    if type(pm) is PolynomialPowerModel:
        power_kind = 0
        p_alpha, p_dynamic, p_static = pm.alpha, pm.dynamic, pm.static
    else:
        power_kind, p_alpha, p_dynamic, p_static = 1, 0.0, 0.0, 0.0
    tasks = sim.taskset.tasks
    names = tuple(task.name for task in tasks)
    rank = {name: i for i, name in enumerate(sorted(names))}
    faults_transitions = (sim.faults is not None
                          and sim.faults.affects_transitions)
    return SimpleNamespace(
        # shared objects (the core mutates result/trace/dicts in place)
        taskset=sim.taskset, processor=proc, scheduler=sim.scheduler,
        execution_model=sim.execution_model,
        arrival_model=sim.arrival_model,
        trace=sim._trace, result=sim._result, telemetry=_TELEMETRY,
        tasks=tasks, names=names,
        name2idx={name: i for i, name in enumerate(names)},
        task_stats=tuple(sim._result.task_stats[name] for name in names),
        next_release=sim._next_release, next_index=sim._next_index,
        # policy / model callbacks
        select_speed=_maybe_profiled(sim.policy.select_speed),
        on_release=sim.policy.on_release,
        on_completion=sim.policy.on_completion,
        observe=sim.policy.observe_decision,
        plan_idle=(sim.idle_policy.plan_idle
                   if sim.idle_policy is not None else _never),
        work=sim.execution_model.work,
        arrival=sim.arrival_model.arrival_time,
        quantize=proc.quantize,
        active_energy=proc.active_energy,
        transition=proc.transition,
        transition_outcome=(sim.faults.transition_outcome
                            if faults_transitions else _never),
        # rare-event helpers
        mk_job=_mk_job, miss=_miss, overrun_note=_overrun_note,
        stuck_note=_stuck_note, requant_note=_requant_note,
        bad_speed=_bad_speed, bad_quant=_bad_quant,
        no_progress=_no_progress, overexec=_overexec,
        neg_exec=_neg_exec, round_key=_round_key, trace_run=_trace_run,
        # scalars
        horizon=float(sim.horizon),
        q_min=float(q_min), p_alpha=float(p_alpha),
        p_dynamic=float(p_dynamic), p_static=float(p_static),
        idle_power=float(proc.idle_power),
        sleep_power=float(proc.sleep_power),
        wakeup_energy=float(proc.wakeup_energy),
        # flags
        allow_misses=int(sim.allow_misses),
        record_trace=int(sim.record_trace),
        faults_transitions=int(faults_transitions),
        allow_overrun=int(sim.faults is not None),
        is_periodic=int(sim.arrival_model.is_periodic),
        periodic_inline=int(type(sim.arrival_model) is PeriodicArrival),
        quant_kind=quant_kind, power_kind=power_kind,
        trans_none=int(type(proc.transition_model) is NoOverhead),
        has_idle_policy=int(sim.idle_policy is not None),
        # per-task arrays (taskset order)
        period=tuple(float(task.period) for task in tasks),
        rel_deadline=tuple(float(task.deadline) for task in tasks),
        wcet=tuple(float(task.wcet) for task in tasks),
        name_rank=tuple(rank[name] for name in names),
        release0=tuple(sim._next_release[name] for name in names),
        q_levels=tuple(float(level) for level in q_levels),
    )


def _maybe_profiled(select_speed):
    """Wrap the policy-decide callback in a profiling region.

    The compiled core never goes through ``Simulator._dispatch``, so
    the interpreted loop's ``policy.decide`` seam would vanish under
    it; wrapping the callback the core calls back into keeps the
    attribution identical on both engines.  With profiling off the
    original bound method is handed over untouched — zero cost.
    """
    if not _PROFILER.enabled:
        return select_speed

    def profiled(job, ctx):
        _PROFILER.push("policy.decide")
        try:
            return select_speed(job, ctx)
        finally:
            _PROFILER.pop()

    return profiled


def run_compiled(sim: "Simulator") -> bool:
    """Run *sim*'s main loop on the compiled core, if permitted.

    Called by :meth:`Simulator.run` after ``_reset()`` and policy
    binding.  Returns ``True`` when the compiled core executed the run
    (the result object is fully populated); ``False`` means the caller
    must run the interpreted loop.  Exceptions (deadline misses, policy
    errors) propagate exactly as from the interpreted engine.
    """
    if not compiled_enabled() or _ineligible_reason(sim) is not None:
        RUN_COUNTS["interpreted"] += 1
        return False
    from repro.sim.engine import SimContext
    core = _EXT.CoreEngine(_build_namespace(sim))
    ctx = SimContext(core)
    RUN_COUNTS["compiled"] += 1
    try:
        core.run(ctx)
    finally:
        # Mirror the engine attributes downstream introspection reads;
        # _next_release/_next_index are shared dicts, updated in place.
        sim._now = core._now
        sim._current_speed = core._current_speed
        sim._active = list(core._active)
        sim._release_version = core._release_version
    return True
