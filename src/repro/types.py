"""Shared scalar types and tolerant floating-point comparisons.

Simulation time, processor speed and work are plain ``float`` values.
Repeated event arithmetic accumulates rounding error on the order of a
few ulps, so every ordering decision that could manufacture a spurious
deadline miss (or hide a real one) goes through the tolerant comparison
helpers defined here.  The absolute tolerance :data:`TIME_EPS` is far
below any physically meaningful interval in the simulated systems
(periods are milliseconds to seconds) while far above accumulated
float error for the simulation horizons used.
"""

from __future__ import annotations

import math
from typing import TypeAlias

#: Simulation time in seconds (or any consistent unit).
Time: TypeAlias = float

#: Processor work expressed in *max-speed seconds*: the wall time the
#: work would take at speed 1.0.
Work: TypeAlias = float

#: Normalized processor speed in ``(0, 1]`` where 1.0 is the maximum
#: frequency of the processor.
Speed: TypeAlias = float

#: Energy in the (arbitrary but consistent) units of the power model.
Energy: TypeAlias = float

#: Absolute tolerance for time/work comparisons.
TIME_EPS: float = 1e-9

#: Tight tolerance for speed-identity (and exact-timestamp) checks:
#: two quantized speeds within this are the *same* processor level, so
#: no transition is needed and trace segments may merge.
SPEED_EPS: float = 1e-12

#: Remaining work below this is treated as completion (float dust from
#: repeated ``remaining / speed`` round trips over long horizons).
WORK_EPS: float = 1e-9

#: Looser tolerance for completion-vs-deadline comparisons, where both
#: sides have accumulated independent rounding error over a whole run.
DEADLINE_EPS: float = 1e-6


def approx_le(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` if *a* is less than or approximately equal to *b*."""
    return a <= b + eps


def approx_ge(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` if *a* is greater than or approximately equal to *b*."""
    return a >= b - eps


def approx_eq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` if *a* and *b* are within *eps* of each other."""
    return abs(a - b) <= eps


def approx_lt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` if *a* is strictly below *b* beyond the tolerance."""
    return a < b - eps


def approx_gt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` if *a* is strictly above *b* beyond the tolerance."""
    return a > b + eps


def clamp(value: float, low: float, high: float) -> float:
    """Clamp *value* into the closed interval ``[low, high]``.

    Raises :class:`ValueError` if the interval is empty (``low > high``).
    """
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    return max(low, min(high, value))


def snap_nonnegative(value: float, eps: float = TIME_EPS) -> float:
    """Snap tiny negative float noise to exactly zero.

    Values below ``-eps`` are genuine negatives and are returned
    unchanged so callers can still detect logic errors.
    """
    if -eps <= value < 0.0:
        return 0.0
    return value


def is_finite_positive(value: float) -> bool:
    """Return ``True`` for a finite, strictly positive float."""
    return math.isfinite(value) and value > 0.0
