"""Tests for repro.analysis.audit: the schedule invariant auditor."""

import dataclasses
import json

import pytest

from repro.analysis import (
    Violation,
    audit_trace,
    render_violations,
    run_and_audit,
)
from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    bcwc_model,
    run_suite,
    standard_taskset,
    sweep,
)
from repro.faults import FaultPlan, OverrunFault
from repro.faults.plan import TransitionFault
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import Simulator
from repro.sim.results import DeadlineMiss
from repro.sim.tracing import SegmentKind
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

pytestmark = pytest.mark.trace


def small_taskset():
    return TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                    PeriodicTask("B", wcet=2.0, period=10.0)])


def traced_sim(policy="lpSTA", taskset=None, horizon=40.0, faults=None,
               **policy_kwargs):
    return Simulator(taskset or small_taskset(), ideal_processor(),
                     make_policy(policy, **policy_kwargs),
                     horizon=horizon, record_trace=True,
                     allow_misses=True, faults=faults)


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ALL_POLICY_NAMES)
    def test_every_policy_audits_clean(self, policy):
        _, violations = run_and_audit(traced_sim(policy))
        assert violations == [], render_violations(violations)

    def test_generated_workload_audits_clean(self):
        sim = Simulator(standard_taskset(5, 0.7, seed=11),
                        ideal_processor(), make_policy("lpSEH"),
                        bcwc_model(0.5, seed=11), horizon=80.0,
                        record_trace=True, allow_misses=True)
        _, violations = run_and_audit(sim)
        assert violations == [], render_violations(violations)

    def test_fault_injected_run_audits_clean(self):
        plan = FaultPlan(
            seed=7, overrun=OverrunFault(factor=1.4, probability=0.5),
            transition=TransitionFault(stuck_probability=0.3))
        _, violations = run_and_audit(
            traced_sim("lpSTA", faults=plan, governed=True,
                       governor_margin=1.4))
        assert violations == [], render_violations(violations)

    def test_requires_trace(self):
        sim = Simulator(small_taskset(), ideal_processor(),
                        make_policy("none"), horizon=8.0,
                        record_trace=False)
        result = sim.run()
        with pytest.raises(ConfigurationError):
            audit_trace(result, sim.taskset, sim.processor,
                        sim.execution_model, sim.arrival_model)


def _audit_mutated(mutate):
    """Run clean, apply *mutate* to the result, return violation kinds."""
    sim = traced_sim("ccEDF")
    result = sim.run()
    mutate(result)
    violations = audit_trace(result, sim.taskset, sim.processor,
                             sim.execution_model, sim.arrival_model)
    assert all(isinstance(v, Violation) for v in violations)
    return {v.kind for v in violations}


class TestMutationDetection:
    def test_seeded_overlap_detected(self):
        def mutate(result):
            segs = result.trace._segments
            i = len(segs) // 2
            segs[i] = dataclasses.replace(segs[i],
                                          start=segs[i].start - 0.05)
        assert "coverage" in _audit_mutated(mutate)

    def test_coverage_gap_detected(self):
        def mutate(result):
            segs = result.trace._segments
            del segs[len(segs) // 2]
        assert "coverage" in _audit_mutated(mutate)

    def test_unreported_deadline_miss_detected(self):
        # Halving a run's speed starves that job: the trace no longer
        # retires its demand, so the audit must flag a miss the result
        # does not report.
        def mutate(result):
            segs = result.trace._segments
            i = next(j for j, s in enumerate(segs)
                     if s.kind == SegmentKind.RUN)
            segs[i] = dataclasses.replace(segs[i],
                                          speed=segs[i].speed * 0.5)
        assert "deadline" in _audit_mutated(mutate)

    def test_fabricated_miss_report_detected(self):
        def mutate(result):
            seg = next(s for s in result.trace.segments
                       if s.kind == SegmentKind.RUN)
            result.deadline_misses.append(DeadlineMiss(
                job=seg.job, task=seg.task, deadline=1.0,
                detected_at=1.0))
        assert "deadline" in _audit_mutated(mutate)

    def test_energy_ledger_imbalance_detected(self):
        def mutate(result):
            segs = result.trace._segments
            i = next(j for j, s in enumerate(segs)
                     if s.kind == SegmentKind.RUN)
            segs[i] = dataclasses.replace(segs[i],
                                          energy=segs[i].energy + 1.0)
        assert "energy" in _audit_mutated(mutate)

    def test_render_names_the_violations(self):
        violations = [Violation(kind="coverage", time=1.0,
                                message="gap", job="A#0")]
        rendered = render_violations(violations)
        assert "coverage" in rendered and "A#0" in rendered
        assert render_violations([]) == "audit: 0 violations"


class TestSuiteAudit:
    def test_run_suite_audit_passes_clean_workload(self):
        suite = run_suite(small_taskset(), ["ccEDF"], ideal_processor(),
                          bcwc_model(0.6, seed=1), horizon=40.0,
                          allow_misses=True, audit=True)
        assert "ccEDF" in suite.results

    def test_audited_summaries_match_unaudited(self):
        kwargs = dict(policy_names=["ccEDF", "lpSTA"],
                      processor=ideal_processor(),
                      execution_model=bcwc_model(0.6, seed=1),
                      horizon=40.0, allow_misses=True)
        audited = run_suite(small_taskset(), audit=True, **kwargs)
        plain = run_suite(small_taskset(), audit=False, **kwargs)
        assert audited.policy_summaries() == plain.policy_summaries()


class TestSweepSpotAudit:
    def test_sweep_with_audit_matches_without(self):
        def make_workload(x, seed):
            return standard_taskset(4, x, seed), bcwc_model(0.5, seed)

        kwargs = dict(xs=[0.5, 0.7], make_workload=make_workload,
                      policy_names=["ccEDF"], n_tasksets=2,
                      horizon=40.0, allow_misses=True)
        audited = sweep(audit_every=2, **kwargs)
        plain = sweep(**kwargs)
        assert ([c.to_payload() for c in audited]
                == [c.to_payload() for c in plain])

    def test_bad_audit_every_rejected(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError, match="audit_every"):
            sweep([0.5], lambda x, s: (small_taskset(),
                                       bcwc_model(0.5, s)),
                  ["ccEDF"], horizon=10.0, audit_every=0)


@pytest.mark.telemetry
class TestAuditTelemetry:
    def test_manifest_records_audit_block(self, tmp_path):
        from repro.telemetry import TELEMETRY

        def make_workload(x, seed):
            return standard_taskset(4, x, seed), bcwc_model(0.5, seed)

        TELEMETRY.configure(enabled=True,
                            events_path=tmp_path / "events.jsonl",
                            manifest_dir=tmp_path)
        try:
            sweep(xs=[0.5], make_workload=make_workload,
                  policy_names=["ccEDF"], n_tasksets=2, horizon=40.0,
                  allow_misses=True, audit_every=2)
        finally:
            TELEMETRY.configure(enabled=False)
        manifest = json.loads(
            sorted(tmp_path.glob("manifest_*.json"))[-1].read_text())
        audit = manifest["audit"]
        assert audit["every"] == 2
        assert audit["units"] == 1  # positions 0 and 1, every 2nd
        assert audit["violations"] == 0
