"""Tests for the policy registry."""

import pytest

from repro.policies.base import DvsPolicy
from repro.policies.registry import (
    ALL_POLICY_NAMES,
    ONLINE_POLICY_NAMES,
    POLICY_FACTORIES,
    make_policy,
)


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_POLICY_NAMES)
    def test_every_name_instantiates(self, name):
        policy = make_policy(name)
        assert isinstance(policy, DvsPolicy)
        assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("magic")

    def test_online_names_subset(self):
        assert set(ONLINE_POLICY_NAMES) <= set(ALL_POLICY_NAMES)
        assert "none" not in ONLINE_POLICY_NAMES
        assert "clairvoyant" not in ONLINE_POLICY_NAMES

    def test_fresh_instances(self):
        assert make_policy("ccEDF") is not make_policy("ccEDF")

    def test_paper_policies_present(self):
        assert "lpSTA" in POLICY_FACTORIES
        assert "lpSEH" in POLICY_FACTORIES

    def test_overhead_aware_parameters_forwarded(self):
        policy = make_policy("DRA", overhead_aware=True,
                             reserve_factor=3.0, hysteresis=0.1)
        assert policy.reserve_factor == 3.0
        assert policy.hysteresis == 0.1
