"""Parallel sweep executor: byte-identical to serial, same failures.

The contract under test (DESIGN.md §8): ``sweep(..., workers=N)``
produces cells whose ``to_payload()`` JSON is **byte-identical** to the
serial run — for every chunk size, including under fault injection and
when resuming from a partially-filled checkpoint directory — the warm
pool is reused across sweeps of the same spec and invalidated on
change, and failures surface as the *lowest-ordered* failing unit even
under out-of-order chunk completion, exactly as the serial loop would.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import SuiteExecutionError
from repro.experiments import parallel
from repro.experiments.parallel import (
    default_workers,
    fork_available,
    map_forked,
    plan_chunks,
)
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.faults import FaultPlan, OverrunFault

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel executor needs fork()")

HORIZON = 600.0
POLICIES = ("static", "ccEDF", "lpSTA")


def workload(u: float, seed: int):
    return standard_taskset(5, u, seed), bcwc_model(0.5, seed)


def payloads(cells) -> list[str]:
    return [json.dumps(cell.to_payload()) for cell in cells]


class TestByteIdentical:
    def test_matches_serial(self):
        xs = (0.4, 0.7, 0.9)
        serial = sweep(xs, workload, POLICIES, n_tasksets=2,
                       horizon=HORIZON)
        parallel = sweep(xs, workload, POLICIES, n_tasksets=2,
                         horizon=HORIZON, workers=4)
        assert payloads(parallel) == payloads(serial)

    @pytest.mark.parametrize("chunk_size", (1, 2, 5, 100))
    def test_matches_serial_for_every_chunk_size(self, chunk_size):
        xs = (0.4, 0.7, 0.9)
        serial = sweep(xs, workload, POLICIES, n_tasksets=2,
                       horizon=HORIZON)
        chunked = sweep(xs, workload, POLICIES, n_tasksets=2,
                        horizon=HORIZON, workers=3,
                        chunk_size=chunk_size)
        assert payloads(chunked) == payloads(serial)

    def test_matches_serial_under_faults(self):
        # x is the overrun factor here (as in EXP-FM1), not the
        # utilization: the workload stays fixed at U=0.6.
        xs = (1.1, 1.3)

        def fm_workload(x: float, seed: int):
            return workload(0.6, seed)

        def plan_for(x: float, seed: int) -> FaultPlan:
            return FaultPlan(seed=seed, overrun=OverrunFault(
                factor=x, probability=1.0))

        kwargs = dict(n_tasksets=2, horizon=HORIZON, allow_misses=True,
                      faults_factory=plan_for)
        serial = sweep(xs, fm_workload, POLICIES, **kwargs)
        parallel = sweep(xs, fm_workload, POLICIES, workers=4, **kwargs)
        assert payloads(parallel) == payloads(serial)
        # The injector bit (so the faulted path really ran in workers).
        assert any(sum(c.overruns.values()) > 0 for c in parallel)

    def test_resume_from_partial_checkpoints(self, tmp_path):
        xs = (0.4, 0.6, 0.8)
        kwargs = dict(n_tasksets=2, horizon=HORIZON)
        reference = sweep(xs, workload, POLICIES, **kwargs)

        first = sweep(xs, workload, POLICIES,
                      checkpoint_dir=tmp_path, **kwargs)
        assert payloads(first) == payloads(reference)
        # Simulate a sweep killed after two of three cells.
        (tmp_path / "cell_0001.json").unlink()
        resumed = sweep(xs, workload, POLICIES, workers=4,
                        checkpoint_dir=tmp_path, resume=True, **kwargs)
        assert payloads(resumed) == payloads(reference)
        # The recomputed checkpoint is byte-identical to the original.
        assert (tmp_path / "cell_0001.json").exists()
        second = sweep(xs, workload, POLICIES, workers=4,
                       checkpoint_dir=tmp_path, resume=True, **kwargs)
        assert payloads(second) == payloads(reference)

    def test_parallel_checkpoints_match_serial(self, tmp_path):
        xs = (0.4, 0.8)
        kwargs = dict(n_tasksets=2, horizon=HORIZON)
        sweep(xs, workload, POLICIES,
              checkpoint_dir=tmp_path / "serial", **kwargs)
        sweep(xs, workload, POLICIES, workers=4,
              checkpoint_dir=tmp_path / "parallel", **kwargs)
        for name in ("cell_0000.json", "cell_0001.json"):
            assert ((tmp_path / "serial" / name).read_bytes()
                    == (tmp_path / "parallel" / name).read_bytes())


class TestFailures:
    def test_suite_error_carries_cell_context(self):
        # An overrun beyond the schedulability limit misses deadlines
        # even at full speed; with misses disallowed the engine aborts
        # and run_suite must wrap it — in the worker as in the parent.
        def plan_for(x: float, seed: int) -> FaultPlan:
            return FaultPlan(seed=seed, overrun=OverrunFault(
                factor=2.0, probability=1.0))

        kwargs = dict(n_tasksets=2, horizon=HORIZON,
                      faults_factory=plan_for)
        with pytest.raises(SuiteExecutionError) as serial_exc:
            sweep((0.9,), workload, POLICIES, **kwargs)
        with pytest.raises(SuiteExecutionError) as parallel_exc:
            sweep((0.9,), workload, POLICIES, workers=4, **kwargs)
        for exc in (serial_exc.value, parallel_exc.value):
            assert exc.policy is not None
            assert exc.workload_seed is not None
            assert exc.horizon == HORIZON
        # In-order consumption surfaces the same first failure.
        assert str(parallel_exc.value) == str(serial_exc.value)

    def test_lowest_ordered_failure_wins_out_of_order(self):
        # Every unit fails: the first cell's units fail *slowly*, the
        # second cell's fail instantly.  With chunk_size=1 on 4 workers
        # the later-ordered failures land first — the executor must
        # still surface the failure of the lowest-ordered unit, i.e.
        # exactly the one the serial loop dies on.
        def doomed_workload(u: float, seed: int):
            if u < 0.5:
                time.sleep(0.2)
            raise ValueError(f"boom u={u:g} seed={seed}")

        xs = (0.4, 0.7)
        kwargs = dict(n_tasksets=2, horizon=HORIZON)
        with pytest.raises(ValueError) as serial_exc:
            sweep(xs, doomed_workload, POLICIES, **kwargs)
        with pytest.raises(ValueError) as parallel_exc:
            sweep(xs, doomed_workload, POLICIES, workers=4,
                  chunk_size=1, **kwargs)
        assert str(parallel_exc.value) == str(serial_exc.value)
        assert "u=0.4" in str(parallel_exc.value)

    def test_failure_shuts_down_the_warm_pool(self):
        def doomed_workload(u: float, seed: int):
            raise ValueError("dead on arrival")

        with pytest.raises(ValueError):
            sweep((0.5,), doomed_workload, POLICIES, n_tasksets=2,
                  horizon=HORIZON, workers=2)
        # No stale worker outlives a failed sweep.
        assert parallel.WorkerPool.current() is None

    def test_worker_retry_cures_transient_failure(self):
        xs = (0.5, 0.7)
        reference = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        failed_once: set[tuple[float, int]] = set()

        def flaky_workload(u: float, seed: int):
            if (u, seed) not in failed_once:
                failed_once.add((u, seed))
                raise OSError("transient hiccup")
            return workload(u, seed)

        cells = sweep(xs, flaky_workload, POLICIES, n_tasksets=2,
                      horizon=HORIZON, workers=4, max_retries=1,
                      retry_backoff=0.01)
        assert payloads(cells) == payloads(reference)


class TestWarmPool:
    def test_pool_reused_across_consecutive_sweeps(self):
        parallel.shutdown_pool()
        xs = (0.4, 0.7)
        kwargs = dict(n_tasksets=2, horizon=HORIZON, workers=2)
        first = sweep(xs, workload, POLICIES, **kwargs)
        pool = parallel.WorkerPool.current()
        assert pool is not None
        second = sweep(xs, workload, POLICIES, **kwargs)
        # Same spec → same pool instance (and the same executor).
        assert parallel.WorkerPool.current() is pool
        assert parallel.WorkerPool.current().executor is pool.executor
        assert payloads(second) == payloads(first)
        parallel.shutdown_pool()

    def test_pool_invalidated_when_spec_changes(self):
        parallel.shutdown_pool()
        kwargs = dict(n_tasksets=2, workers=2)
        sweep((0.5,), workload, POLICIES, horizon=HORIZON, **kwargs)
        pool = parallel.WorkerPool.current()
        assert pool is not None
        # A different horizon is a different published spec: the stale
        # pool (whose forked children inherited the old one) must go.
        sweep((0.5,), workload, POLICIES, horizon=HORIZON / 2, **kwargs)
        fresh = parallel.WorkerPool.current()
        assert fresh is not None and fresh is not pool
        parallel.shutdown_pool()

    def test_pool_invalidated_when_workers_change(self):
        parallel.shutdown_pool()
        kwargs = dict(n_tasksets=2, horizon=HORIZON)
        sweep((0.5,), workload, POLICIES, workers=2, **kwargs)
        pool = parallel.WorkerPool.current()
        sweep((0.5,), workload, POLICIES, workers=3, **kwargs)
        assert parallel.WorkerPool.current() is not pool
        parallel.shutdown_pool()


class TestChunkPlanning:
    def test_contiguous_cover(self):
        chunks = plan_chunks(10, workers=3)
        assert chunks[0][0] == 0 and chunks[-1][1] == 10
        for (_, stop), (start, _) in zip(chunks, chunks[1:]):
            assert stop == start

    def test_auto_size_targets_chunks_per_worker(self):
        # 24 units on 4 workers → ceil(24 / (4*2)) = 3 per chunk.
        chunks = plan_chunks(24, workers=4)
        assert all(stop - start <= 3 for start, stop in chunks)
        assert len(chunks) == 8

    def test_explicit_chunk_size(self):
        assert plan_chunks(5, workers=4, chunk_size=2) == [
            (0, 2), (2, 4), (4, 5)]
        assert plan_chunks(3, workers=4, chunk_size=100) == [(0, 3)]

    def test_chunk_size_validation(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            sweep((0.5,), workload, POLICIES, n_tasksets=1,
                  horizon=HORIZON, workers=2, chunk_size=0)


class TestDefaultWorkers:
    def test_respects_cpu_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert default_workers() == 7


class TestMapForked:
    def test_preserves_order(self):
        results = map_forked(
            [lambda i=i: i * i for i in range(5)], workers=3)
        assert results == [0, 1, 4, 9, 16]

    def test_serial_fallback(self):
        assert map_forked([lambda: "x"], workers=1) == ["x"]

    def test_propagates_exception(self):
        def boom():
            raise ValueError("worker boom")

        with pytest.raises(ValueError, match="worker boom"):
            map_forked([lambda: 1, boom], workers=2)


def test_workers_validation():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError):
        sweep((0.5,), workload, POLICIES, n_tasksets=1,
              horizon=HORIZON, workers=0)
