"""Live progress stream: writer/runner wiring, reader, watch rendering.

The contracts under test (DESIGN.md §14):

* a serial and a parallel run of the same sweep write *equivalent*
  streams — identical {unit.done, cell.done, cell.resumed} event sets
  and identical terminal summaries — and both validate structurally;
* the manifest's ``progress`` block equals the stream's terminal
  snapshot (the equality ``scripts/progress_gate.py`` enforces in CI);
* resumed sweeps narrate ``cell.resumed`` and count those units;
* corrupt or truncated lines are skipped and counted — in the
  snapshot and in the ``progress.corrupt`` telemetry counter — never
  fatal;
* stall detection fires on a silent unfinished stream and on a dead
  writer pid, and never on a finished one;
* the watch renderer and exit codes reflect the snapshot state.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.telemetry import TELEMETRY
from repro.telemetry.manifest import RunManifest
from repro.telemetry.progress import (
    PROGRESS_FILENAME,
    PROGRESS_SCHEMA,
    ProgressStream,
    read_progress,
    validate_stream,
)
from repro.telemetry.watch import render_snapshot, watch

pytestmark = pytest.mark.watch

HORIZON = 200.0
POLICIES = ("static", "lpSTA")
XS = (0.4, 0.7)
N_TASKSETS = 2


@pytest.fixture(autouse=True)
def clean_registry():
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()
    yield
    shutdown_pool()
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()


def workload(u: float, seed: int):
    return standard_taskset(4, u, seed), bcwc_model(0.5, seed)


def run_sweep(directory, **kwargs):
    return sweep(XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                 horizon=HORIZON, progress_dir=directory, **kwargs)


def unit_events(path) -> list[tuple]:
    """The order-insensitive progress substance of one stream."""
    events = []
    for line in path.read_text().splitlines():
        event = json.loads(line)
        if event["kind"] == "unit.done":
            events.append(("unit.done", event["index"],
                           event["seed_pos"], event["status"]))
        elif event["kind"] in ("cell.done", "cell.resumed"):
            events.append((event["kind"], event["index"]))
    return sorted(events)


def dead_pid() -> int:
    """A pid that existed a moment ago and is certainly gone now."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


def write_stream(path, lines) -> None:
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


def start_event(seq=1, ts=1000.0, *, cells=1, seeds=2, pid=None,
                heartbeat_interval=0.5, **extra):
    return {"seq": seq, "ts": ts, "kind": "sweep.start",
            "schema": PROGRESS_SCHEMA, "cells": cells, "seeds": seeds,
            "units": cells * seeds, "workers": 1,
            "pid": pid if pid is not None else os.getpid(),
            "heartbeat_interval": heartbeat_interval, **extra}


def unit_event(seq, ts, *, index=0, seed_pos=0, status="computed"):
    return {"seq": seq, "ts": ts, "kind": "unit.done", "index": index,
            "x": 0.5, "seed_pos": seed_pos, "seed": 7,
            "status": status}


# -- serial / parallel equivalence -------------------------------------


def test_serial_stream_is_valid_and_complete(tmp_path):
    cells = run_sweep(tmp_path)
    path = tmp_path / PROGRESS_FILENAME
    assert validate_stream(path) == []
    snap = read_progress(path)
    assert snap.finished and snap.status == "completed"
    assert snap.done == snap.units == len(XS) * N_TASKSETS
    assert snap.computed == snap.units and snap.cached == 0
    assert snap.cells_done == snap.cells == len(cells)
    assert not snap.stalled
    assert [cell.done for cell in snap.per_cell] == [N_TASKSETS] * 2


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
def test_parallel_stream_equivalent_to_serial(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial_cells = run_sweep(serial_dir)
    parallel_cells = run_sweep(parallel_dir, workers=2)
    assert [c.to_payload() for c in serial_cells] \
        == [c.to_payload() for c in parallel_cells]
    assert validate_stream(parallel_dir / PROGRESS_FILENAME) == []
    assert unit_events(serial_dir / PROGRESS_FILENAME) \
        == unit_events(parallel_dir / PROGRESS_FILENAME)
    serial_snap = read_progress(serial_dir)
    parallel_snap = read_progress(parallel_dir)
    for snap in (serial_snap, parallel_snap):
        snap_summary = snap.summary()
        snap_summary.pop("stream")
        assert snap_summary == {
            "units": 4, "done": 4, "computed": 4, "cached": 0,
            "resumed": 0, "quarantined": 0, "cells": 2,
            "cells_done": 2}
    # The parallel stream additionally narrates its dispatch.
    kinds = {json.loads(line)["kind"] for line in
             (parallel_dir / PROGRESS_FILENAME).read_text().splitlines()}
    assert "chunk.dispatch" in kinds


def test_manifest_progress_block_equals_stream_snapshot(tmp_path):
    TELEMETRY.configure(enabled=True, manifest_dir=tmp_path)
    run_sweep(tmp_path, workload_id="progress-test")
    TELEMETRY.configure(enabled=False)
    manifests = sorted(tmp_path.glob("manifest_*.json"))
    assert manifests
    manifest = RunManifest.load(manifests[-1])
    snap = read_progress(tmp_path)
    assert manifest.progress == snap.summary()


def test_resumed_cells_are_narrated(tmp_path):
    run_sweep(tmp_path, checkpoint_dir=tmp_path)
    run_sweep(tmp_path, checkpoint_dir=tmp_path, resume=True)
    snap = read_progress(tmp_path)
    assert snap.finished
    assert snap.resumed == snap.units and snap.computed == 0
    assert all(cell.resumed for cell in snap.per_cell)
    assert "(resumed)" in render_snapshot(snap)


def test_cached_units_are_narrated(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(tmp_path / "a", cache_dir=cache, workload_id="cache-test")
    run_sweep(tmp_path / "b", cache_dir=cache, workload_id="cache-test")
    snap = read_progress(tmp_path / "b")
    assert snap.cached == snap.units and snap.computed == 0


# -- reader robustness -------------------------------------------------


def test_corrupt_lines_skipped_and_counted(tmp_path):
    run_sweep(tmp_path)
    path = tmp_path / PROGRESS_FILENAME
    with path.open("a") as fh:
        fh.write("{torn json\n")
        fh.write('{"kind": "no.such.kind", "seq": 9999, "ts": 1}\n')
        fh.write('{"seq": 10000}\n')
    TELEMETRY.configure(enabled=True)
    snap = read_progress(path)
    assert snap.corrupt_lines == 3
    assert snap.finished  # the valid prefix still parses fully
    assert snap.done == snap.units
    assert TELEMETRY.snapshot()["counters"]["progress.corrupt"] == 3


def test_missing_stream_and_missing_start_raise(tmp_path):
    with pytest.raises(ExperimentError, match="no progress stream"):
        read_progress(tmp_path / "nope.jsonl")
    bad = tmp_path / PROGRESS_FILENAME
    write_stream(bad, [unit_event(1, 1000.0)])
    with pytest.raises(ExperimentError, match="sweep.start"):
        read_progress(bad)


def test_newer_schema_refused(tmp_path):
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [dict(start_event(), schema=PROGRESS_SCHEMA + 1)])
    with pytest.raises(ExperimentError, match="newer"):
        read_progress(path)


def test_validate_stream_flags_structural_problems(tmp_path):
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [
        start_event(seq=1, ts=1000.0),
        {"seq": 1, "ts": 999.0, "kind": "unit.done", "status": "weird"},
        {"seq": 3, "ts": 1001.0, "kind": "made.up"},
    ])
    problems = "\n".join(validate_stream(path))
    assert "not strictly increasing" in problems
    assert "decreased" in problems
    assert "unknown kind" in problems
    assert "status 'weird' unknown" in problems


# -- stall detection ---------------------------------------------------


def test_silent_unfinished_stream_stalls(tmp_path):
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [start_event(ts=1000.0),
                        unit_event(2, 1001.0)])
    fresh = read_progress(path, now=1002.0)
    assert not fresh.stalled and fresh.status == "running"
    stale = read_progress(path, now=1001.0 + 60.0)
    assert stale.stalled and stale.status == "stalled"
    assert stale.idle_s == pytest.approx(60.0)
    assert "STALLED" in render_snapshot(stale)
    # An explicit budget overrides the default.
    assert read_progress(path, now=1003.0, stall_after=1.0).stalled
    assert not read_progress(path, now=1001.0 + 60.0,
                             stall_after=120.0).stalled


def test_dead_writer_pid_stalls_immediately(tmp_path):
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [start_event(ts=1000.0, pid=dead_pid()),
                        unit_event(2, 1001.0)])
    snap = read_progress(path, now=1001.5)
    assert snap.stalled and snap.status == "stalled"


def test_finished_stream_never_stalls(tmp_path):
    run_sweep(tmp_path)
    snap = read_progress(tmp_path, now=time.time() + 10_000.0)
    assert snap.finished and not snap.stalled
    assert snap.eta_s == 0.0


def test_writer_heartbeats_carry_pid_liveness(tmp_path):
    stream = ProgressStream(tmp_path, cells=1, seeds=1,
                            heartbeat_interval=0.02)
    try:
        deadline = time.time() + 2.0
        while time.time() < deadline:
            if any(json.loads(line)["kind"] == "heartbeat"
                   for line in stream.path.read_text().splitlines()):
                break
            time.sleep(0.02)
    finally:
        stream.close()
    snap = read_progress(tmp_path)
    assert snap.heartbeat_pids == [os.getpid()]
    assert snap.heartbeat_alive == [os.getpid()]


def test_forked_child_cannot_write(tmp_path):
    if not fork_available():
        pytest.skip("needs os.fork")
    stream = ProgressStream(tmp_path, cells=1, seeds=1,
                            heartbeat_interval=None)
    pid = os.fork()
    if pid == 0:  # child: all of these must silently no-op
        stream.emit("unit.start", index=0)
        stream.unit_done(index=0, x=0.5, seed_pos=0, seed=1,
                         status="computed")
        stream.close()
        os._exit(0)
    assert os.waitpid(pid, 0)[1] == 0
    stream.unit_done(index=0, x=0.5, seed_pos=0, seed=1,
                     status="computed")
    stream.close()
    snap = read_progress(tmp_path)
    assert snap.computed == 1  # the parent's one write, nothing more
    assert validate_stream(tmp_path) == []


# -- watch loop --------------------------------------------------------


def test_watch_once_renders_and_exits_zero(tmp_path):
    run_sweep(tmp_path)
    out = io.StringIO()
    assert watch(tmp_path, once=True, out=out) == 0
    frame = out.getvalue()
    assert "4/4 units" in frame and "[completed]" in frame


def test_watch_exit_codes(tmp_path):
    assert watch(tmp_path / "missing", once=True,
                 out=io.StringIO()) == 2
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [start_event(ts=1000.0, pid=dead_pid())])
    # Dead writer => stalled => exit 1 (without --once).
    assert watch(tmp_path, interval=0.01, out=io.StringIO()) == 1


def test_watch_follows_to_completion(tmp_path):
    path = tmp_path / PROGRESS_FILENAME
    write_stream(path, [start_event(ts=time.time())])
    frames = []

    def fake_sleep(_):
        # Finish the sweep between the first and second frame.
        now = time.time()
        write_stream(path, [
            start_event(ts=now - 1.0),
            unit_event(2, now - 0.5), unit_event(3, now - 0.4,
                                                 seed_pos=1),
            {"seq": 4, "ts": now - 0.3, "kind": "cell.done",
             "index": 0, "x": 0.5, "seeds": 2, "quarantined": 0},
            {"seq": 5, "ts": now - 0.2, "kind": "sweep.done",
             "status": "completed", "units": 2, "done": 2,
             "computed": 2, "cached": 0, "resumed": 0,
             "quarantined": 0, "cells": 1, "cells_done": 1},
        ])

    out = io.StringIO()
    code = watch(tmp_path, interval=0.01, out=out, sleep=fake_sleep,
                 max_wait=30.0)
    assert code == 0
    assert "[completed]" in out.getvalue()
    assert len(out.getvalue().split("[running]")) == 2  # one live frame
