"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.profiles import ideal_processor
from repro.cpu.speed import ContinuousScale
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def two_task_set() -> TaskSet:
    """A tiny hand-analysable set: U = 0.5, hyperperiod 20."""
    return TaskSet([
        PeriodicTask("A", wcet=1.0, period=4.0),
        PeriodicTask("B", wcet=2.5, period=10.0),
    ])


@pytest.fixture
def three_task_set() -> TaskSet:
    """U = 0.75 with a long task; hyperperiod 40."""
    return TaskSet([
        PeriodicTask("A", wcet=1.0, period=5.0),
        PeriodicTask("B", wcet=2.0, period=8.0),
        PeriodicTask("C", wcet=12.0, period=40.0),
    ])


@pytest.fixture
def saturated_task_set() -> TaskSet:
    """Exactly U = 1.0 — the tightest feasible implicit-deadline set."""
    return TaskSet([
        PeriodicTask("A", wcet=2.0, period=4.0),
        PeriodicTask("B", wcet=5.0, period=10.0),
    ])


@pytest.fixture
def processor() -> Processor:
    """Continuous ideal processor with cubic power."""
    return ideal_processor(min_speed=0.05)


@pytest.fixture
def cubic_processor() -> Processor:
    """Continuous processor with an explicit very low floor."""
    return Processor(scale=ContinuousScale(min_speed=0.01),
                     power_model=PolynomialPowerModel(alpha=3.0))


@pytest.fixture
def worst_case_model() -> WorstCaseExecution:
    return WorstCaseExecution()


@pytest.fixture
def half_model() -> UniformExecution:
    """Uniform demand in [0.5, 1.0] x WCET, fixed seed."""
    return UniformExecution(low=0.5, high=1.0, seed=42)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
