"""Tests for sleep states and procrastination scheduling."""

import numpy as np
import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.errors import ConfigurationError
from repro.policies.procrastination import (
    IdlePlan,
    NeverSleepIdlePolicy,
    ProcrastinationIdlePolicy,
    SleepOnIdlePolicy,
)
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.sim.tracing import SegmentKind
from repro.tasks.arrivals import UniformJitterArrival
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.generators import generate_taskset
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def sleepy_processor(idle_power=0.2, sleep_power=0.01, wakeup_time=0.2,
                     wakeup_energy=0.5) -> Processor:
    return Processor(
        scale=ContinuousScale(min_speed=0.05),
        power_model=PolynomialPowerModel(alpha=3.0),
        idle_power=idle_power, sleep_power=sleep_power,
        wakeup_time=wakeup_time, wakeup_energy=wakeup_energy)


@pytest.fixture
def light_taskset() -> TaskSet:
    return TaskSet([PeriodicTask("A", 1.0, 10.0),
                    PeriodicTask("B", 2.0, 25.0)])


class TestProcessorSleepModel:
    def test_sleep_energy_includes_wakeup(self):
        proc = sleepy_processor()
        assert proc.sleep_energy(10.0) == pytest.approx(0.6)

    def test_breakeven(self):
        proc = sleepy_processor(idle_power=0.2, sleep_power=0.1,
                                wakeup_energy=1.0)
        assert proc.sleep_breakeven_time() == pytest.approx(10.0)

    def test_breakeven_infinite_without_gap(self):
        proc = sleepy_processor(idle_power=0.1, sleep_power=0.1)
        assert proc.sleep_breakeven_time() == float("inf")

    def test_sleep_power_above_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            sleepy_processor(idle_power=0.1, sleep_power=0.2)

    def test_negative_wakeup_rejected(self):
        with pytest.raises(ConfigurationError):
            sleepy_processor(wakeup_time=-1.0)


class TestSleepOnIdle:
    def test_schedule_identical_to_never_sleep(self, light_taskset):
        proc = sleepy_processor()
        never = simulate(light_taskset, proc, make_policy("none"),
                         WorstCaseExecution(),
                         idle_policy=NeverSleepIdlePolicy(),
                         horizon=500.0)
        sleeper = simulate(light_taskset, proc, make_policy("none"),
                           WorstCaseExecution(),
                           idle_policy=SleepOnIdlePolicy(),
                           horizon=500.0)
        # Same busy pattern (jobs never delayed), less idle energy.
        assert sleeper.busy_energy == pytest.approx(never.busy_energy)
        assert sleeper.total_energy < never.total_energy
        assert not sleeper.missed

    def test_short_gaps_stay_idle(self, light_taskset):
        # Make wake-up so expensive no gap is worth sleeping through.
        proc = sleepy_processor(wakeup_energy=1e6)
        result = simulate(light_taskset, proc, make_policy("none"),
                          WorstCaseExecution(),
                          idle_policy=SleepOnIdlePolicy(), horizon=500.0)
        assert result.sleep_episodes == 0
        assert result.idle_time > 0


class TestProcrastination:
    def test_batches_sleep_episodes(self, light_taskset):
        proc = sleepy_processor()
        plain = simulate(light_taskset, proc, make_policy("none"),
                         WorstCaseExecution(),
                         idle_policy=SleepOnIdlePolicy(), horizon=500.0)
        procr = simulate(light_taskset, proc, make_policy("none"),
                         WorstCaseExecution(),
                         idle_policy=ProcrastinationIdlePolicy(),
                         horizon=500.0)
        assert procr.sleep_episodes <= plain.sleep_episodes
        assert procr.total_energy <= plain.total_energy + 1e-9
        assert not procr.missed

    def test_no_misses_under_load_sweep(self):
        from repro.policies.registry import ALL_POLICY_NAMES
        proc = sleepy_processor()
        for u in (0.4, 0.7, 0.95):
            for seed in (81, 83):
                ts = generate_taskset(5, u, np.random.default_rng(seed))
                for policy in ALL_POLICY_NAMES:
                    result = simulate(
                        ts, proc, make_policy(policy),
                        UniformExecution(low=0.3, high=1.0, seed=seed),
                        idle_policy=ProcrastinationIdlePolicy(),
                        horizon=min(ts.default_horizon(), 2400.0))
                    assert not result.missed, (u, seed, policy)

    def test_jobs_start_late_but_inside_slack(self, light_taskset):
        proc = sleepy_processor()
        result = simulate(light_taskset, proc, make_policy("none"),
                          WorstCaseExecution(),
                          idle_policy=ProcrastinationIdlePolicy(),
                          horizon=500.0, record_trace=True)
        # Some job must actually have been procrastinated: a RUN
        # segment that starts strictly after its job's release.
        delayed = 0
        for seg in result.trace:
            if seg.kind != SegmentKind.RUN or seg.job is None:
                continue
            task_name, _, idx = seg.job.partition("#")
            release = light_taskset[task_name].release_time(int(idx))
            if seg.start > release + 0.5:
                delayed += 1
        assert delayed > 0
        assert not result.missed

    def test_margin_validation(self):
        with pytest.raises(ConfigurationError):
            ProcrastinationIdlePolicy(margin=1.5)

    def test_sporadic_falls_back_to_release_fence(self, light_taskset):
        # With sporadic arrivals the next release is unknowable: the
        # planner may sleep only to the earliest possible release.
        proc = sleepy_processor()
        result = simulate(
            light_taskset, proc, make_policy("none"),
            WorstCaseExecution(),
            arrival_model=UniformJitterArrival(jitter=0.5, seed=7),
            idle_policy=ProcrastinationIdlePolicy(), horizon=500.0)
        assert not result.missed

    def test_time_accounting_covers_horizon(self, light_taskset):
        proc = sleepy_processor()
        result = simulate(light_taskset, proc, make_policy("none"),
                          WorstCaseExecution(),
                          idle_policy=ProcrastinationIdlePolicy(),
                          horizon=500.0)
        covered = (result.busy_time + result.idle_time
                   + result.switch_time + result.sleep_time)
        assert covered == pytest.approx(500.0, rel=1e-6)
        assert result.total_energy == pytest.approx(
            result.busy_energy + result.idle_energy
            + result.switch_energy + result.sleep_energy)


class TestIdlePlan:
    def test_plan_fields(self):
        plan = IdlePlan(sleep=True, wake_time=12.0)
        assert plan.sleep and plan.wake_time == 12.0
