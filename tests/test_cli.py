"""Tests for the repro CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_outputs_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lpSTA" in out
        assert "xscale" in out
        assert "avionics" in out
        assert "fig1" in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T1" in out
        assert "generic4" in out

    def test_quick_fig6_with_export(self, capsys, tmp_path):
        assert main(["run", "fig6", "--quick",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "EXP-F6" in out
        json_file = tmp_path / "exp_f6.json"
        assert json_file.exists()
        payload = json.loads(json_file.read_text())
        assert payload["experiment"] == "EXP-F6"
        assert (tmp_path / "exp_f6.csv").exists()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSimulate:
    def test_generated_workload(self, capsys):
        assert main(["simulate", "--policy", "lpSEH", "--tasks", "4",
                     "--utilization", "0.7", "--horizon", "500"]) == 0
        out = capsys.readouterr().out
        assert "policy=lpSEH" in out
        assert "misses=0" in out

    def test_benchmark_with_gantt(self, capsys):
        assert main(["simulate", "--benchmark", "cnc",
                     "--policy", "static", "--horizon", "300",
                     "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "gantt:" in out

    def test_discrete_profile(self, capsys):
        assert main(["simulate", "--processor", "generic4",
                     "--policy", "ccEDF", "--horizon", "500"]) == 0
        assert "misses=0" in capsys.readouterr().out


@pytest.mark.faults
class TestFaultsAndGovernor:
    """CLI surface of the fault-injection subsystem (tier-1 smoke)."""

    def test_simulate_with_faults_and_governor(self, capsys):
        assert main(["simulate", "--policy", "ccEDF",
                     "--tasks", "4", "--utilization", "0.55",
                     "--faults", "overrun:1.5", "--governed",
                     "--allow-misses", "--horizon", "400"]) == 0
        out = capsys.readouterr().out
        assert "faults(seed=" in out and "overrun" in out
        assert "policy=gov(ccEDF)" in out
        assert "misses=0" in out

    def test_simulate_raw_faults_report_overruns(self, capsys):
        assert main(["simulate", "--policy", "lpSTA",
                     "--tasks", "4", "--utilization", "0.55",
                     "--faults", "overrun:1.4,stuck:0.2",
                     "--allow-misses", "--horizon", "400"]) == 0
        out = capsys.readouterr().out
        assert "overrun_jobs=" in out

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(["simulate", "--faults", "overrun:0.5",
                     "--horizon", "200"]) == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_fault_matrix_quick_smoke(self, capsys):
        assert main(["run", "faultmatrix", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "EXP-FM1" in out
        assert "governed misses: 0" in out

    def test_fault_matrix_checkpoint_and_resume(self, capsys, tmp_path):
        assert main(["run", "faultmatrix", "--quick",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert main(["run", "faultmatrix", "--quick",
                     "--checkpoint-dir", str(tmp_path),
                     "--resume"]) == 0
        second = capsys.readouterr().out
        # Identical tables; only the timing line may differ.
        strip = lambda s: [l for l in s.splitlines() if "(" not in l]
        assert strip(first) == strip(second)

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["run", "faultmatrix", "--quick", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_unsupported_checkpoint_option_warns(self, capsys, tmp_path):
        # fig6's driver takes no checkpoint options; the CLI must say
        # so instead of silently dropping them.
        assert main(["run", "fig6", "--quick",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        assert "does not support" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_policy_choices_validated(self, capsys):
        # Validation happens at command time (the option accepts a
        # comma-separated list, so argparse choices can't check it).
        assert main(["simulate", "--policy", "bogus"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_policy_list_validated(self, capsys):
        assert main(["simulate", "--policy", "lpSTA,bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSimulateExtensions:
    def test_sporadic_arrivals_option(self, capsys):
        assert main(["simulate", "--policy", "lpSEH",
                     "--arrivals", "jitter", "--jitter", "0.6",
                     "--tasks", "4", "--horizon", "400"]) == 0
        assert "misses=0" in capsys.readouterr().out

    def test_bursty_arrivals_option(self, capsys):
        assert main(["simulate", "--policy", "static",
                     "--arrivals", "bursty", "--tasks", "3",
                     "--horizon", "400"]) == 0
        assert "misses=0" in capsys.readouterr().out

    def test_idle_management_options(self, capsys):
        for idle in ("sleep", "procrastinate"):
            assert main(["simulate", "--policy", "none",
                         "--idle", idle, "--tasks", "3",
                         "--utilization", "0.4",
                         "--horizon", "400"]) == 0
            assert "misses=0" in capsys.readouterr().out

    def test_critical_speed_option(self, capsys):
        assert main(["simulate", "--policy", "lpSTA",
                     "--critical-speed", "--tasks", "3",
                     "--horizon", "400"]) == 0
        assert "cs-lpSTA" in capsys.readouterr().out


@pytest.mark.telemetry
class TestRunPolicyAndTelemetry:
    """`run --policy` validation and the telemetry CLI surface."""

    @pytest.fixture(autouse=True)
    def _reset_registry(self):
        from repro.telemetry import TELEMETRY
        yield
        TELEMETRY.configure(enabled=False)
        TELEMETRY.reset()

    def test_unknown_policy_fails_before_any_simulation(self, capsys):
        assert main(["run", "fig1", "--quick",
                     "--policy", "lpSTA,bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown policy 'bogus'" in err
        assert "known: " in err and "lpSEH" in err
        assert capsys.readouterr().out == ""  # nothing ran

    def test_empty_policy_list_rejected(self, capsys):
        assert main(["run", "fig1", "--quick", "--policy", " , "]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_policy_subset_restricts_sweep(self, capsys):
        assert main(["run", "fig1", "--quick",
                     "--policy", "static,lpSTA"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "lpSTA" in out
        assert "lpSEH" not in out

    def test_telemetry_dir_manifest_and_stats(self, capsys, tmp_path):
        tele = tmp_path / "tele"
        assert main(["run", "fig1", "--quick",
                     "--policy", "static,lpSTA",
                     "--telemetry-dir", str(tele),
                     "--metrics-json", str(tmp_path / "m.json")]) == 0
        capsys.readouterr()
        manifests = list(tele.glob("manifest_*.json"))
        assert len(manifests) == 1
        assert (tele / "events.jsonl").exists()
        metrics = json.loads((tmp_path / "m.json").read_text())
        assert metrics["counters"]["engine.runs"] > 0
        assert main(["stats", str(tele)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: EXP-F1" in out
        assert "engine.releases" in out

    def test_stats_on_empty_directory_fails(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path)]) == 2
        assert "no manifest" in capsys.readouterr().err


@pytest.mark.trace
class TestTraceCommand:
    WORKLOAD = ["--tasks", "4", "--utilization", "0.6",
                "--seed", "3", "--horizon", "40"]

    def test_export_chrome(self, capsys, tmp_path):
        out = tmp_path / "sched.json"
        assert main(["trace", "export", "--policy", "lpSTA",
                     *self.WORKLOAD, "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        stamps = [e["ts"] for e in payload["traceEvents"]
                  if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_export_jsonl_with_ledger(self, capsys, tmp_path):
        out = tmp_path / "sched.jsonl"
        assert main(["trace", "export", "--policy", "ccEDF",
                     *self.WORKLOAD, "--out", str(out),
                     "--ledger"]) == 0
        assert "energy ledger" in capsys.readouterr().out
        header = json.loads(out.read_text().splitlines()[0])
        assert header["kind"] == "schedule-trace"

    def test_export_unknown_policy(self, capsys, tmp_path):
        assert main(["trace", "export", "--policy", "nope",
                     "--out", str(tmp_path / "x.json")]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_audit_clean_run(self, capsys):
        assert main(["trace", "audit", "--policy", "lpSTA",
                     *self.WORKLOAD]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_audit_fault_injected_run(self, capsys):
        assert main(["trace", "audit", "--policy", "lpSTA",
                     "--faults", "overrun:1.4:0.3", "--governed",
                     "--allow-misses", *self.WORKLOAD]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_diff_identical_and_divergent(self, capsys, tmp_path):
        a, b, c = (tmp_path / name for name in
                   ("a.jsonl", "b.jsonl", "c.jsonl"))
        for path, policy in ((a, "lpSTA"), (b, "lpSTA"), (c, "ccEDF")):
            assert main(["trace", "export", "--policy", policy,
                         *self.WORKLOAD, "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["trace", "diff", str(a), str(c)]) == 1
        assert "diverge" in capsys.readouterr().out

    def test_diff_unreadable_input(self, capsys, tmp_path):
        missing = tmp_path / "missing.jsonl"
        assert main(["trace", "diff", str(missing), str(missing)]) == 2
        assert capsys.readouterr().err

    def test_timeline_missing_events(self, capsys, tmp_path):
        assert main(["trace", "timeline",
                     str(tmp_path / "missing.jsonl"),
                     "--out", str(tmp_path / "t.json")]) == 2
        assert capsys.readouterr().err


class TestStatsRenderer:
    def test_renders_every_block(self, capsys, tmp_path):
        from repro.telemetry.manifest import RunManifest
        manifest = RunManifest(
            label="unit-test",
            fingerprint={"horizon": 40.0, "policies": ["ccEDF"]},
            phases={"sweep.compute": {"count": 1, "wall_s": 1.25,
                                      "cpu_s": 2.5}},
            counters={"engine.runs": 4, "audit.units": 2},
            histograms={"parallel.chunk_latency_s": {
                "count": 2, "total": 3.0, "min": 1.0, "max": 2.0}},
            cache={"hits": 3, "misses": 1, "writes": 1, "corrupt": 0},
            workers={"pool_workers": 2,
                     "per_worker": {"41": {"chunks": 1, "units": 2,
                                           "busy_s": 1.0}}},
            faults={"injected": True},
            audit={"every": 2, "units": 2, "runs": 6, "violations": 0},
        )
        path = manifest.write(tmp_path / "manifest_unit_001.json")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest: unit-test" in out
        assert "sweep.compute" in out
        assert "hit-rate 75.0%" in out
        assert "pid 41" in out
        assert "faults: injected=True" in out
        assert "audit: every=2" in out and "violations=0" in out
        assert "engine.runs" in out
        assert "mean=1.5" in out

    def test_round_trips_audit_block(self, tmp_path):
        from repro.telemetry.manifest import RunManifest
        manifest = RunManifest(label="rt", fingerprint={},
                               audit={"every": 3, "violations": 1})
        loaded = RunManifest.load(
            manifest.write(tmp_path / "manifest_rt_001.json"))
        assert loaded.audit == {"every": 3, "violations": 1}
        assert loaded.schema == 5
