"""Tests for repro.analysis.schedulability."""

import pytest

from repro.analysis.schedulability import (
    edf_density_test,
    edf_utilization_test,
    minimum_constant_speed,
    processor_demand_test,
    rm_response_time_analysis,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestUtilizationTest:
    def test_feasible(self, two_task_set):
        assert edf_utilization_test(two_task_set)

    def test_saturated_still_feasible(self, saturated_task_set):
        assert edf_utilization_test(saturated_task_set)

    def test_overloaded(self):
        ts = TaskSet([PeriodicTask("A", 8.0, 10.0),
                      PeriodicTask("B", 3.0, 10.0)])
        assert not edf_utilization_test(ts)

    def test_constrained_deadlines_rejected(self):
        ts = TaskSet([PeriodicTask("A", 1.0, 10.0, deadline=5.0)])
        with pytest.raises(ConfigurationError):
            edf_utilization_test(ts)


class TestDensityTest:
    def test_sufficient_only(self):
        ts = TaskSet([PeriodicTask("A", 2.0, 10.0, deadline=4.0),
                      PeriodicTask("B", 2.0, 10.0, deadline=5.0)])
        assert edf_density_test(ts)  # density 0.9

    def test_high_density_fails_test(self):
        ts = TaskSet([PeriodicTask("A", 4.0, 10.0, deadline=5.0),
                      PeriodicTask("B", 3.0, 10.0, deadline=6.0)])
        assert not edf_density_test(ts)  # density 1.3


class TestProcessorDemandTest:
    def test_implicit_deadlines_reduce_to_utilization(self, two_task_set):
        assert processor_demand_test(two_task_set)

    def test_overutilized_fails(self):
        ts = TaskSet([PeriodicTask("A", 8.0, 10.0),
                      PeriodicTask("B", 3.0, 10.0)])
        assert not processor_demand_test(ts)

    def test_constrained_feasible(self):
        # dbf check: A demands 2 by 4, B demands 3 by 8;
        # dbf(4)=2<=4, dbf(8)=3+2(A@?).. all points hold.
        ts = TaskSet([PeriodicTask("A", 2.0, 10.0, deadline=4.0),
                      PeriodicTask("B", 3.0, 10.0, deadline=8.0)])
        assert processor_demand_test(ts)

    def test_constrained_infeasible_despite_low_utilization(self):
        # Two tasks each needing 3 units within the same 4-unit window:
        # dbf(4) = 6 > 4 although U = 0.6.
        ts = TaskSet([PeriodicTask("A", 3.0, 10.0, deadline=4.0),
                      PeriodicTask("B", 3.0, 10.0, deadline=4.0)])
        assert not processor_demand_test(ts)

    def test_exactness_beyond_density(self):
        # Density-test failure that the exact test accepts:
        # A: C=2, D=3, T=10 (density .67); B: C=4, D=8, T=10 (.5);
        # density 1.17 > 1 but dbf(3)=2, dbf(8)=6, dbf(13)=8... all fit.
        ts = TaskSet([PeriodicTask("A", 2.0, 10.0, deadline=3.0),
                      PeriodicTask("B", 4.0, 10.0, deadline=8.0)])
        assert not edf_density_test(ts)
        assert processor_demand_test(ts)


class TestRmResponseTime:
    def test_classic_feasible_set(self):
        # Liu & Layland style: U = 0.75 with harmonic-ish periods.
        ts = TaskSet([PeriodicTask("A", 1.0, 4.0),
                      PeriodicTask("B", 2.0, 8.0)])
        result = rm_response_time_analysis(ts)
        assert result.schedulable
        assert result.response_times["A"] == pytest.approx(1.0)
        # B: 2 + ceil(r/4)*1 -> r = 3 (one A interference) -> stable 3.
        assert result.response_times["B"] == pytest.approx(3.0)

    def test_rm_fails_where_edf_succeeds(self):
        # The classic U=1 pair RM cannot schedule: A(2,4), B(5,10)...
        # response of B exceeds 10 under RM.
        ts = TaskSet([PeriodicTask("A", 2.0, 4.0),
                      PeriodicTask("B", 5.0, 10.0)])
        result = rm_response_time_analysis(ts)
        assert not result.schedulable
        assert edf_utilization_test(ts)

    def test_priority_by_period(self):
        ts = TaskSet([PeriodicTask("slow", 1.0, 100.0),
                      PeriodicTask("fast", 1.0, 5.0)])
        result = rm_response_time_analysis(ts)
        assert result.response_times["fast"] == pytest.approx(1.0)
        assert result.response_times["slow"] == pytest.approx(2.0)


class TestMinimumConstantSpeed:
    def test_implicit_equals_utilization(self, two_task_set):
        assert minimum_constant_speed(two_task_set) == pytest.approx(0.5)

    def test_saturated_needs_full_speed(self, saturated_task_set):
        assert minimum_constant_speed(saturated_task_set) == \
            pytest.approx(1.0)

    def test_constrained_above_utilization(self):
        # A: C=2, D=4, T=10 alone: needs speed 0.5 to fit 2 into 4.
        ts = TaskSet([PeriodicTask("A", 2.0, 10.0, deadline=4.0)])
        speed = minimum_constant_speed(ts)
        assert speed == pytest.approx(0.5, abs=1e-6)
        assert speed > ts.utilization

    def test_result_is_feasible_speed(self):
        ts = TaskSet([PeriodicTask("A", 2.0, 10.0, deadline=5.0),
                      PeriodicTask("B", 2.0, 12.0, deadline=7.0)])
        speed = minimum_constant_speed(ts)
        scaled = TaskSet([t.scaled(1.0 / speed) for t in ts])
        assert processor_demand_test(scaled)
