"""Cross-run registry: ingest, round-trip, query, compare, gc.

The contracts under test (DESIGN.md §14):

* a run manifest projects into a run record that round-trips through
  the sharded on-disk layout byte-for-byte, and re-ingest is
  idempotent (same run id, same shard, one file);
* written manifests auto-ingest when a registry is configured
  (``REPRO_REGISTRY_DIR`` / ``set_registry_dir``) and never fail the
  manifest write when the registry is broken;
* ``BENCH_*.json`` perf records ingest as ``bench``-kind records
  carrying the anchor timings;
* list filters (workload / policy / fingerprint / since / kind) and
  prefix ``get`` behave, and ``gc`` keeps exactly the newest N;
* ``compare`` flags fingerprint drift and diffs wall time, cache hit
  rate and per-policy mean dispatch speed.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.telemetry.manifest import RunManifest
from repro.telemetry.registry import (
    RunRegistry,
    compare_records,
    default_registry_dir,
    record_from_bench,
    record_from_manifest,
    render_compare,
    render_record,
    render_records,
    set_registry_dir,
)

pytestmark = pytest.mark.watch


@pytest.fixture(autouse=True)
def clean_default_dir(monkeypatch):
    monkeypatch.delenv("REPRO_REGISTRY_DIR", raising=False)
    set_registry_dir(None)
    yield
    set_registry_dir(None)


def make_manifest(*, label="exp1", created="2026-08-08T10:00:00",
                  horizon=300.0, wall=2.5, hits=3, misses=5,
                  quarantined=0):
    return RunManifest(
        label=label,
        created=created,
        git_rev="abc1234",
        fingerprint={"workload_id": label, "horizon": horizon,
                     "policies": ["static", "lpSTA"],
                     "xs": [0.4, 0.7], "n_tasksets": 2},
        phases={"sweep.compute": {"wall_s": wall, "cpu_s": wall,
                                  "count": 1}},
        counters={"engine.misses": 0, "engine.steps": 100,
                  "policy.lpSTA.decisions": 42,
                  "resilience.quarantined": quarantined},
        histograms={"policy.lpSTA.speed":
                    {"count": 10, "total": 4.0, "min": 0.2, "max": 0.7},
                    "policy.lpSTA.slack":
                    {"count": 10, "total": 50.0, "min": 0, "max": 10}},
        cache={"hits": hits, "misses": misses},
        progress={"units": 8, "done": 8, "computed": 5, "cached": 3,
                  "resumed": 0, "quarantined": quarantined,
                  "cells": 2, "cells_done": 2, "stream": "x"},
    )


BENCH_PAYLOAD = {
    "date": "2026-08-07", "rev": "deadbee", "python": "3.11.7",
    "schema": 1,
    "hotpath": {"engine_step": {"mean_s": 0.004, "min_s": 0.003,
                                "rounds": 5, "stddev_s": 0.0001}},
    "sweep_exp1_mini": {"serial_s": 1.0, "workers": 4,
                        "parallel_speedup": 500.0},
}


# -- record projection and round-trip ----------------------------------


def test_manifest_record_round_trips(tmp_path):
    registry = RunRegistry(tmp_path)
    record = record_from_manifest(make_manifest(), "m.json")
    path = registry.add(record)
    assert path.parent.name == record.fingerprint_digest[:2]
    [loaded] = registry.list()
    assert loaded.to_payload() == record.to_payload()
    assert loaded.run_id.startswith("20260808T100000-")
    assert loaded.workload_id == "exp1"
    assert loaded.policies == ["static", "lpSTA"]
    assert loaded.wall_s == 2.5
    assert loaded.cache_hit_rate() == pytest.approx(3 / 8)
    assert loaded.mean_speed == {"lpSTA": pytest.approx(0.4)}
    assert loaded.progress["done"] == 8
    assert "engine.misses" in loaded.counters
    # Per-policy decision counters are not in the kept cross-run set.
    assert "policy.lpSTA.decisions" not in loaded.counters


def test_ingest_is_idempotent(tmp_path):
    registry = RunRegistry(tmp_path)
    manifest_path = tmp_path / "manifest_exp1_001.json"
    make_manifest().write(manifest_path)
    first = registry.ingest_manifest(manifest_path)
    second = registry.ingest_manifest(manifest_path)
    assert first.run_id == second.run_id
    assert len(registry.list()) == 1


def test_bench_record_ingests_timings(tmp_path):
    registry = RunRegistry(tmp_path)
    bench = tmp_path / "BENCH_2026-08-07.json"
    bench.write_text(json.dumps(BENCH_PAYLOAD))
    record = registry.ingest_bench(bench)
    assert record.kind == "bench"
    assert record.git_rev == "deadbee"
    assert record.timings["hotpath.engine_step"] == pytest.approx(0.004)
    assert record.timings["sweep_exp1_mini.serial_s"] == 1.0
    assert record.run_id.startswith("20260807T000000-")
    assert "engine_step" in render_records([record])


def test_ingest_path_scans_directories(tmp_path):
    registry = RunRegistry(tmp_path / "reg")
    data = tmp_path / "data"
    data.mkdir()
    make_manifest().write(data / "manifest_exp1_001.json")
    (data / "BENCH_2026-08-07.json").write_text(
        json.dumps(BENCH_PAYLOAD))
    records = registry.ingest_path(data)
    assert sorted(r.kind for r in records) == ["bench", "sweep"]


def test_unreadable_bench_raises(tmp_path):
    registry = RunRegistry(tmp_path)
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{nope")
    with pytest.raises(ExperimentError, match="cannot read"):
        registry.ingest_bench(bad)


def test_torn_record_files_are_skipped(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.add(record_from_manifest(make_manifest()))
    shard = next(registry.runs_dir.glob("*"))
    (shard / "torn.json").write_text("{")
    assert len(registry.list()) == 1


# -- auto-ingest hook --------------------------------------------------


def test_written_manifest_auto_ingests(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "reg"))
    assert default_registry_dir() == tmp_path / "reg"
    make_manifest().write(tmp_path / "manifest_exp1_001.json")
    [record] = RunRegistry(tmp_path / "reg").list()
    assert record.label == "exp1"
    assert record.source.endswith("manifest_exp1_001.json")


def test_no_registry_means_no_ingest(tmp_path):
    assert default_registry_dir() is None
    make_manifest().write(tmp_path / "manifest_exp1_001.json")
    assert not (tmp_path / "runs").exists()


def test_broken_registry_never_fails_the_write(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the registry dir should go")
    set_registry_dir(blocker)
    path = make_manifest().write(tmp_path / "manifest_exp1_001.json")
    assert path.exists()  # manifest written despite registry trouble


# -- query -------------------------------------------------------------


def test_list_filters_and_prefix_get(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.add(record_from_manifest(make_manifest(
        label="exp1", created="2026-08-01T10:00:00")))
    registry.add(record_from_manifest(make_manifest(
        label="exp2", created="2026-08-08T10:00:00", horizon=400.0)))
    bench = tmp_path / "BENCH_2026-08-07.json"
    bench.write_text(json.dumps(BENCH_PAYLOAD))
    registry.ingest_bench(bench)

    assert [r.label for r in registry.list()] \
        == ["exp2", "bench 2026-08-07", "exp1"]  # newest first
    assert len(registry.list(kind="sweep")) == 2
    assert [r.label for r in registry.list(workload="exp2")] == ["exp2"]
    assert len(registry.list(policy="lpSTA")) == 2
    assert len(registry.list(policy="ccEDF")) == 0
    assert [r.label for r in registry.list(since="2026-08-05")] \
        == ["exp2", "bench 2026-08-07"]
    exp1 = registry.list(workload="exp1")[0]
    assert registry.list(
        fingerprint=exp1.fingerprint_digest[:6])[0].label == "exp1"

    assert registry.get(exp1.run_id[:10]).run_id == exp1.run_id
    with pytest.raises(ExperimentError, match="no run"):
        registry.get("zzz")
    with pytest.raises(ExperimentError, match="ambiguous"):
        registry.get("20260")
    assert "exp1" in render_record(exp1)


def test_gc_keeps_newest(tmp_path):
    registry = RunRegistry(tmp_path)
    for day in (1, 2, 3, 4):
        registry.add(record_from_manifest(make_manifest(
            label=f"exp{day}", created=f"2026-08-0{day}T10:00:00")))
    assert registry.gc(keep=2) == 2
    assert [r.label for r in registry.list()] == ["exp4", "exp3"]
    with pytest.raises(ExperimentError, match="keep"):
        registry.gc(keep=-1)


# -- compare -----------------------------------------------------------


def test_compare_flags_drift_and_diffs_summaries():
    a = record_from_manifest(make_manifest(wall=2.0, hits=0, misses=8))
    b_manifest = make_manifest(created="2026-08-08T11:00:00",
                               horizon=400.0, wall=3.0, hits=8,
                               misses=0)
    b_manifest.histograms["policy.lpSTA.speed"] = {
        "count": 10, "total": 6.0, "min": 0.2, "max": 0.9}
    b = record_from_manifest(b_manifest)
    diff = compare_records(a, b)
    assert not diff["same_fingerprint"]
    assert diff["fingerprint_drift"] == ["horizon"]
    assert diff["wall_s"]["delta"] == pytest.approx(1.0)
    assert diff["wall_s"]["ratio"] == pytest.approx(1.5)
    assert diff["cache_hit_rate"]["a"] == 0.0
    assert diff["cache_hit_rate"]["b"] == 1.0
    assert diff["mean_speed"]["lpSTA"]["delta"] == pytest.approx(0.2)
    rendered = render_compare(diff)
    assert "FINGERPRINT DRIFT: horizon" in rendered
    assert "wall_s" in rendered and "speed.lpSTA" in rendered


def test_compare_identical_runs_is_quiet():
    record = record_from_manifest(make_manifest())
    diff = compare_records(record, record)
    assert diff["same_fingerprint"]
    assert diff["fingerprint_drift"] == []
    assert diff["counters"] == {}
    assert "identical" in render_compare(diff)
