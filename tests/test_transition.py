"""Tests for repro.cpu.transition overhead models."""

import pytest

from repro.cpu.transition import (
    ConstantOverhead,
    NoOverhead,
    VoltageSwitchOverhead,
)
from repro.errors import ConfigurationError


class TestNoOverhead:
    def test_everything_free(self):
        model = NoOverhead()
        assert model.time_overhead(0.5, 1.0, 1.0, 2.0) == 0.0
        assert model.energy_overhead(0.5, 1.0, 1.0, 2.0) == 0.0
        assert model.is_free


class TestConstantOverhead:
    def test_fixed_costs(self):
        model = ConstantOverhead(switch_time=0.1, switch_energy=2.0)
        assert model.time_overhead(0.2, 0.9, 1.0, 1.8) == 0.1
        assert model.energy_overhead(0.2, 0.9, 1.0, 1.8) == 2.0
        assert not model.is_free

    def test_zero_costs_are_free(self):
        assert ConstantOverhead().is_free

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantOverhead(switch_time=-0.1)
        with pytest.raises(ConfigurationError):
            ConstantOverhead(switch_energy=-1.0)


class TestVoltageSwitch:
    def test_energy_scales_with_voltage_swing(self):
        model = VoltageSwitchOverhead(switch_time=0.14, eta=0.9, c_dd=5e-6)
        small = model.energy_overhead(0.5, 0.6, 1.0, 1.1)
        large = model.energy_overhead(0.2, 1.0, 0.8, 1.8)
        assert large > small

    def test_energy_formula(self):
        model = VoltageSwitchOverhead(switch_time=0.0, eta=0.9, c_dd=5e-6)
        expected = 0.9 * 5e-6 * abs(2.0**2 - 5.0**2)
        assert model.energy_overhead(0.25, 1.0, 2.0, 5.0) == \
            pytest.approx(expected)

    def test_symmetric_in_direction(self):
        model = VoltageSwitchOverhead()
        up = model.energy_overhead(0.2, 1.0, 1.0, 1.8)
        down = model.energy_overhead(1.0, 0.2, 1.8, 1.0)
        assert up == pytest.approx(down)

    def test_time_is_constant(self):
        model = VoltageSwitchOverhead(switch_time=0.14)
        assert model.time_overhead(0.2, 0.9, 1.0, 1.8) == 0.14

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            VoltageSwitchOverhead(switch_time=-1.0)
        with pytest.raises(ConfigurationError):
            VoltageSwitchOverhead(eta=0.0)
        with pytest.raises(ConfigurationError):
            VoltageSwitchOverhead(c_dd=-1.0)
