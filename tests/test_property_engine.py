"""Property-based tests (hypothesis) for end-to-end simulations.

The headline property: for any feasible random task set, any demand
ratio pattern and any policy, the simulator never misses a deadline and
energy accounting stays consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import validate_run
from repro.cpu.profiles import generic4_processor, ideal_processor
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import UniformExecution
from repro.tasks.generators import generate_taskset

#: Policies sampled by the engine properties (the full list is covered
#: by the deterministic sweeps in test_integration_safety.py; here we
#: sample the interesting ones under random workloads).
PROPERTY_POLICIES = ("static", "ccEDF", "DRA", "laEDF", "lpSEH", "lpSTA")

workload = st.fixed_dictionaries({
    "n": st.integers(min_value=2, max_value=6),
    "u": st.floats(min_value=0.2, max_value=1.0),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "low": st.floats(min_value=0.05, max_value=1.0),
    "policy": st.sampled_from(PROPERTY_POLICIES),
})


def _run(params, processor, horizon_cap=1500.0, record_trace=False):
    ts = generate_taskset(params["n"], params["u"],
                          np.random.default_rng(params["seed"]))
    model = UniformExecution(low=params["low"], high=1.0,
                             seed=params["seed"])
    horizon = min(ts.default_horizon(min_jobs_per_task=5), horizon_cap)
    result = simulate(ts, processor, make_policy(params["policy"]),
                      model, horizon=horizon, record_trace=record_trace)
    return result, ts, model


@settings(max_examples=25, deadline=None)
@given(params=workload)
def test_no_deadline_misses_continuous(params):
    result, *_ = _run(params, ideal_processor())
    assert not result.missed


@settings(max_examples=15, deadline=None)
@given(params=workload)
def test_no_deadline_misses_discrete(params):
    result, *_ = _run(params, generic4_processor())
    assert not result.missed


@settings(max_examples=15, deadline=None)
@given(params=workload)
def test_energy_and_time_accounting(params):
    result, *_ = _run(params, ideal_processor())
    assert result.total_energy == pytest.approx(
        result.busy_energy + result.idle_energy + result.switch_energy)
    covered = result.busy_time + result.idle_time + result.switch_time
    assert covered == pytest.approx(result.horizon, rel=1e-6)
    assert result.jobs_completed <= result.jobs_released


@settings(max_examples=10, deadline=None)
@given(params=workload)
def test_traces_validate(params):
    result, ts, model = _run(params, ideal_processor(),
                             horizon_cap=800.0, record_trace=True)
    validate_run(result, ts, ideal_processor(), model)


@settings(max_examples=10, deadline=None)
@given(params=workload)
def test_dvs_never_worse_than_no_dvs(params):
    result, ts, model = _run(params, ideal_processor())
    baseline = simulate(ts, ideal_processor(), make_policy("none"),
                        model, horizon=result.horizon)
    assert result.total_energy <= baseline.total_energy * (1 + 1e-9)
