"""Tests for experiment result export (CSV/JSON)."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import FigureData, SeriesPoint, TableData
from repro.experiments.io import read_json, write_csv, write_json


@pytest.fixture
def figure():
    fig = FigureData("EXP-X", "a title", "x", "y")
    fig.add_point("alpha", SeriesPoint(1.0, 0.5, 0.05, 10))
    fig.add_point("alpha", SeriesPoint(2.0, 0.6, 0.04, 10))
    fig.add_point("beta", SeriesPoint(1.0, 0.7, 0.02, 10,
                                      extra={"misses": 0}))
    fig.notes.append("a note")
    return fig


class TestCsv:
    def test_roundtrip_rows(self, figure, tmp_path):
        path = write_csv(figure, tmp_path / "fig.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["series"] == "alpha"
        assert float(rows[0]["mean"]) == 0.5

    def test_extra_columns_present(self, figure, tmp_path):
        path = write_csv(figure, tmp_path / "fig.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[2]["misses"] == "0"

    def test_creates_parent_dirs(self, figure, tmp_path):
        path = write_csv(figure, tmp_path / "deep" / "dir" / "fig.csv")
        assert path.exists()

    def test_empty_figure_rejected(self, tmp_path):
        empty = FigureData("E", "t", "x", "y")
        with pytest.raises(ExperimentError):
            write_csv(empty, tmp_path / "nope.csv")

    def test_table_export(self, tmp_path):
        table = TableData("T", "t", columns=("name", "value"))
        table.add_row(name="a", value=1.5)
        path = write_csv(table, tmp_path / "table.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["name"] == "a"


class TestJson:
    def test_roundtrip(self, figure, tmp_path):
        path = write_json(figure, tmp_path / "fig.json")
        payload = read_json(path)
        assert payload["experiment"] == "EXP-X"
        assert payload["notes"] == ["a note"]
        assert len(payload["rows"]) == 3
