"""Tests for repro.cpu.processor and the named profiles."""

import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.profiles import (
    PROCESSOR_PROFILES,
    crusoe_processor,
    generic4_processor,
    ideal_processor,
    load_profile,
    sa1100_processor,
    uniform_discrete_processor,
    xscale_processor,
)
from repro.cpu.speed import DiscreteScale
from repro.cpu.transition import ConstantOverhead
from repro.errors import ConfigurationError


class TestProcessor:
    def test_defaults(self):
        proc = Processor()
        assert proc.min_speed > 0
        assert proc.idle_power == 0.0
        assert proc.quantize(0.5) == pytest.approx(0.5)

    def test_energy_composition(self):
        proc = Processor(power_model=PolynomialPowerModel(alpha=3.0),
                         idle_power=0.25)
        assert proc.active_energy(0.5, 8.0) == pytest.approx(1.0)
        assert proc.idle_energy(4.0) == pytest.approx(1.0)

    def test_idle_energy_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Processor().idle_energy(-1.0)

    def test_negative_idle_power_rejected(self):
        with pytest.raises(ConfigurationError):
            Processor(idle_power=-0.1)

    def test_transition_same_speed_free(self):
        proc = Processor(transition_model=ConstantOverhead(0.1, 5.0))
        assert proc.transition(0.5, 0.5) == (0.0, 0.0)

    def test_transition_costs_apply(self):
        proc = Processor(transition_model=ConstantOverhead(0.1, 5.0))
        assert proc.transition(0.5, 1.0) == (0.1, 5.0)

    def test_quantization_delegates_to_scale(self):
        proc = Processor(scale=DiscreteScale([0.5, 1.0]))
        assert proc.quantize(0.3) == 0.5
        assert proc.quantize(0.7) == 1.0

    def test_describe_mentions_components(self):
        text = Processor(name="p").describe()
        assert "p:" in text
        assert "scale=" in text and "power=" in text


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(PROCESSOR_PROFILES))
    def test_profiles_instantiate(self, name):
        proc = load_profile(name)
        assert 0 < proc.min_speed <= 1.0
        assert proc.power(1.0) > 0

    @pytest.mark.parametrize("name", sorted(PROCESSOR_PROFILES))
    def test_power_monotone_across_levels(self, name):
        proc = load_profile(name)
        if proc.scale.is_continuous:
            speeds = [proc.min_speed + i * (1 - proc.min_speed) / 10
                      for i in range(11)]
        else:
            speeds = list(proc.scale.levels)
        powers = [proc.power(s) for s in speeds]
        assert powers == sorted(powers)

    @pytest.mark.parametrize("name", sorted(PROCESSOR_PROFILES))
    def test_dvs_premise_energy_per_work(self, name):
        # Energy per unit work must improve at lower speeds, otherwise
        # the profile cannot benefit from DVS at all.
        proc = load_profile(name)
        low = proc.min_speed
        assert proc.power(low) / low < proc.power(1.0) / 1.0

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown profile"):
            load_profile("z80")

    def test_generic4_matches_textbook_table(self):
        proc = generic4_processor()
        assert proc.scale.levels == (0.25, 0.5, 0.75, 1.0)
        assert proc.voltage(0.25) == pytest.approx(2.0)
        assert proc.voltage(1.0) == pytest.approx(5.0)

    def test_xscale_levels(self):
        proc = xscale_processor()
        assert len(proc.scale.levels) == 5
        assert proc.power(1.0) == pytest.approx(1600.0)
        assert proc.power(0.15) == pytest.approx(80.0)
        assert proc.voltage(1.0) == pytest.approx(1.8)

    def test_xscale_optional_switch_time(self):
        proc = xscale_processor(switch_time=0.05)
        dt, _ = proc.transition(0.15, 1.0)
        assert dt == pytest.approx(0.05)

    def test_sa1100_has_switch_overhead(self):
        proc = sa1100_processor()
        dt, de = proc.transition(proc.min_speed, 1.0)
        assert dt == pytest.approx(0.14)
        assert de > 0

    def test_crusoe_level_count(self):
        assert len(crusoe_processor().scale.levels) == 5

    def test_ideal_is_continuous(self):
        assert ideal_processor().scale.is_continuous

    def test_uniform_discrete_factory(self):
        proc = uniform_discrete_processor(8, min_speed=0.2)
        assert len(proc.scale.levels) == 8
        assert proc.scale.levels[0] == pytest.approx(0.2)
