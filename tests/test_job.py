"""Tests for repro.tasks.job.Job."""

import pytest

from repro.errors import SimulationError
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask


@pytest.fixture
def task() -> PeriodicTask:
    return PeriodicTask("T", wcet=4.0, period=10.0)


class TestFromTask:
    def test_fields(self, task):
        job = Job.from_task(task, index=2, work=3.0)
        assert job.release == 20.0
        assert job.deadline == 30.0
        assert job.work == 3.0
        assert job.name == "T#2"

    def test_work_above_wcet_rejected(self, task):
        with pytest.raises(SimulationError):
            Job.from_task(task, 0, work=4.5)

    def test_zero_work_rejected(self, task):
        with pytest.raises(SimulationError):
            Job.from_task(task, 0, work=0.0)

    def test_work_exactly_wcet_ok(self, task):
        job = Job.from_task(task, 0, work=4.0)
        assert job.work == 4.0


class TestExecution:
    def test_remaining_work_decreases(self, task):
        job = Job.from_task(task, 0, work=3.0)
        job.execute(1.0)
        assert job.remaining_work == pytest.approx(2.0)
        assert job.executed == pytest.approx(1.0)

    def test_remaining_wcet_tracks_budget(self, task):
        job = Job.from_task(task, 0, work=3.0)
        job.execute(1.0)
        # Budget is wcet - executed, independent of the actual demand.
        assert job.remaining_wcet == pytest.approx(3.0)

    def test_overrun_rejected(self, task):
        job = Job.from_task(task, 0, work=2.0)
        with pytest.raises(SimulationError):
            job.execute(2.5)

    def test_negative_amount_rejected(self, task):
        job = Job.from_task(task, 0, work=2.0)
        with pytest.raises(SimulationError):
            job.execute(-1.0)

    def test_tiny_float_dust_tolerated(self, task):
        job = Job.from_task(task, 0, work=2.0)
        job.execute(2.0 + 1e-9)  # within tolerance
        assert job.remaining_work == 0.0


class TestCompletion:
    def test_complete_lifecycle(self, task):
        job = Job.from_task(task, 0, work=2.0)
        job.execute(2.0)
        job.complete(5.0)
        assert job.completed
        assert job.completion_time == 5.0
        assert job.response_time == pytest.approx(5.0)
        assert job.met_deadline()

    def test_unused_wcet_after_completion(self, task):
        job = Job.from_task(task, 0, work=2.5)
        job.execute(2.5)
        job.complete(6.0)
        assert job.unused_wcet == pytest.approx(1.5)

    def test_unused_wcet_before_completion_raises(self, task):
        job = Job.from_task(task, 0, work=2.0)
        with pytest.raises(SimulationError):
            _ = job.unused_wcet

    def test_complete_with_outstanding_work_rejected(self, task):
        job = Job.from_task(task, 0, work=2.0)
        job.execute(1.0)
        with pytest.raises(SimulationError):
            job.complete(5.0)

    def test_double_complete_rejected(self, task):
        job = Job.from_task(task, 0, work=1.0)
        job.execute(1.0)
        job.complete(2.0)
        with pytest.raises(SimulationError):
            job.complete(3.0)

    def test_missed_deadline_detected(self, task):
        job = Job.from_task(task, 0, work=1.0)
        job.execute(1.0)
        job.complete(11.0)
        assert not job.met_deadline()

    def test_response_time_none_while_running(self, task):
        job = Job.from_task(task, 0, work=1.0)
        assert job.response_time is None

    def test_met_deadline_before_completion_raises(self, task):
        job = Job.from_task(task, 0, work=1.0)
        with pytest.raises(SimulationError):
            job.met_deadline()
