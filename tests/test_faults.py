"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the fault-plan grammar and validation, the determinism contract
(same plan seed => byte-identical traces), the golden regression that
``faults=None`` leaves the seed engine untouched, and the semantics of
each injector class.
"""

import numpy as np
import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError
from repro.faults import (
    ArrivalFault,
    ClockDriftFault,
    FaultPlan,
    FaultyArrival,
    FaultyExecution,
    OverrunFault,
    TransitionFault,
    parse_fault_plan,
)
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.tasks.arrivals import PeriodicArrival, UniformJitterArrival
from repro.tasks.execution import UniformExecution
from repro.tasks.generators import generate_taskset

pytestmark = pytest.mark.faults


def _workload(seed=7, n=5, u=0.8):
    taskset = generate_taskset(n, u, np.random.default_rng(seed))
    model = UniformExecution(low=0.4, high=1.0, seed=11)
    return taskset, model


class TestFaultPlanParsing:
    def test_single_overrun_clause(self):
        plan = parse_fault_plan("overrun:1.5", seed=3)
        assert plan.seed == 3
        assert plan.overrun == OverrunFault(factor=1.5, probability=1.0)
        assert plan.arrival is None and plan.transition is None

    def test_combined_clauses(self):
        plan = parse_fault_plan(
            "overrun:1.4:0.3,jitter:0.2,burst:0.25:6,drift:0.01,"
            "stuck:0.2,delay:0.05,quantize:0.1")
        assert plan.overrun.probability == 0.3
        assert plan.arrival.jitter == 0.2
        assert plan.arrival.burst_probability == 0.25
        assert plan.arrival.burst_length == 6
        assert plan.drift.rate == 0.01
        assert plan.transition.stuck_probability == 0.2
        assert plan.transition.extra_delay == 0.05
        assert plan.transition.quantize_step == 0.1

    def test_describe_names_every_component(self):
        plan = parse_fault_plan("overrun:1.5,jitter:0.1,stuck:0.2")
        text = plan.describe()
        assert "overrun" in text and "jitter" in text and "stuck" in text

    @pytest.mark.parametrize("spec", [
        "overrun:0.9",          # factor must exceed 1
        "overrun:1.5:0",        # probability must be positive
        "overrun:1.5:1.2",      # probability must be <= 1
        "drift:-0.1",           # fast clocks void min separation
        "stuck:1.5",            # probability range
        "jitter:-1",            # negative jitter
        "burst:0.5:0",          # burst length >= 1
        "quantize:2",           # step must be <= 1
        "overrun:abc",          # non-numeric
        "gamma:1.0",            # unknown kind
        "overrun",              # missing argument
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(spec)

    def test_affects_flags(self):
        assert parse_fault_plan("overrun:1.5").affects_execution
        assert parse_fault_plan("jitter:0.1").affects_arrivals
        assert parse_fault_plan("drift:0.01").affects_arrivals
        assert parse_fault_plan("delay:0.1").affects_transitions
        empty = FaultPlan(seed=0)
        assert not (empty.affects_execution or empty.affects_arrivals
                    or empty.affects_transitions)


class TestDeterminism:
    def test_same_seed_byte_identical_traces(self):
        plan = parse_fault_plan(
            "overrun:1.3:0.5,jitter:0.2,stuck:0.1", seed=13)
        runs = []
        for _ in range(2):
            taskset, model = _workload()
            result = simulate(
                taskset, ideal_processor(), make_policy("ccEDF"), model,
                horizon=400.0, record_trace=True, allow_misses=True,
                faults=plan)
            runs.append(result)
        first, second = runs
        assert first.trace.segments == second.trace.segments
        assert first.trace.notes == second.trace.notes
        assert first.total_energy == second.total_energy
        assert first.overrun_jobs == second.overrun_jobs
        assert [(m.job, m.deadline, m.detected_at)
                for m in first.deadline_misses] == \
               [(m.job, m.deadline, m.detected_at)
                for m in second.deadline_misses]

    def test_different_seed_changes_draws(self):
        a = FaultPlan(seed=1, overrun=OverrunFault(1.5, probability=0.5))
        b = FaultPlan(seed=2, overrun=OverrunFault(1.5, probability=0.5))
        draws_a = [a.overrun_factor("T1", i) for i in range(64)]
        draws_b = [b.overrun_factor("T1", i) for i in range(64)]
        assert draws_a != draws_b

    def test_draws_are_order_independent(self):
        plan = FaultPlan(seed=5, overrun=OverrunFault(1.5, probability=0.5))
        forward = [plan.overrun_factor("T2", i) for i in range(32)]
        backward = [plan.overrun_factor("T2", i)
                    for i in reversed(range(32))]
        assert forward == list(reversed(backward))


class TestGoldenNoFaultRegression:
    """``faults=None`` must leave the seed engine bit-identical.

    The numbers below were captured from the engine *before* the fault
    subsystem existed; any drift here means the faults=None path is no
    longer byte-identical to the original code.
    """

    GOLDEN = {
        "none": (313.9229381648887, 0, 53),
        "static": (200.9106804255288, 1, 53),
        "ccEDF": (145.5900156706814, 98, 52),
        "lpSEH": (138.7590315565568, 95, 50),
        "lpSTA": (138.73947703188136, 93, 50),
    }

    @pytest.mark.parametrize("policy", sorted(GOLDEN))
    def test_energy_switches_and_jobs_unchanged(self, policy):
        taskset, model = _workload()
        result = simulate(taskset, ideal_processor(),
                          make_policy(policy), model,
                          horizon=400.0, faults=None)
        energy, switches, completed = self.GOLDEN[policy]
        assert result.total_energy == energy  # exact, not approx
        assert result.switch_count == switches
        assert result.jobs_completed == completed
        assert result.overrun_jobs == 0
        assert result.transition_faults == 0

    def test_empty_plan_matches_no_plan(self):
        taskset, model = _workload()
        bare = simulate(taskset, ideal_processor(), make_policy("lpSTA"),
                        model, horizon=400.0, faults=None)
        empty = simulate(taskset, ideal_processor(), make_policy("lpSTA"),
                         model, horizon=400.0, faults=FaultPlan(seed=9))
        assert bare.total_energy == empty.total_energy
        assert bare.switch_count == empty.switch_count


class TestFaultyExecution:
    def test_overrun_scales_wcet_not_sampled_work(self):
        taskset, model = _workload()
        plan = FaultPlan(seed=0, overrun=OverrunFault(factor=1.5))
        faulty = FaultyExecution(model, plan)
        for task in taskset:
            assert faulty.work(task, 0) == pytest.approx(1.5 * task.wcet)
            # The bc/wc ratio channel is untouched.
            assert faulty.ratio(task, 3) == model.ratio(task, 3)

    def test_probability_gates_injection(self):
        taskset, model = _workload()
        plan = FaultPlan(seed=4,
                         overrun=OverrunFault(factor=1.5, probability=0.5))
        faulty = FaultyExecution(model, plan)
        task = list(taskset)[0]
        outcomes = {faulty.work(task, i) > task.wcet for i in range(64)}
        assert outcomes == {True, False}  # some faulted, some clean

    def test_engine_counts_overrun_jobs(self):
        taskset, model = _workload(u=0.5)
        plan = FaultPlan(seed=0, overrun=OverrunFault(factor=1.2))
        result = simulate(taskset, ideal_processor(), make_policy("none"),
                          model, horizon=400.0, allow_misses=True,
                          faults=plan)
        assert result.overrun_jobs == result.jobs_released > 0


class TestFaultyArrival:
    @pytest.mark.parametrize("inner", [
        PeriodicArrival(),
        UniformJitterArrival(jitter=0.4, seed=3),
    ])
    def test_minimum_separation_survives_all_fault_stages(self, inner):
        taskset, _ = _workload()
        plan = FaultPlan(
            seed=21,
            arrival=ArrivalFault(jitter=0.3, burst_probability=0.5,
                                 burst_length=3),
            drift=ClockDriftFault(rate=0.02))
        faulty = FaultyArrival(inner, plan)
        for task in taskset:
            for index in range(40):
                assert faulty.gap(task, index) >= task.period - 1e-9

    def test_burst_compresses_to_minimum_separation(self):
        taskset, _ = _workload()
        task = list(taskset)[0]
        inner = UniformJitterArrival(jitter=0.5, seed=3)
        plan = FaultPlan(seed=2,
                         arrival=ArrivalFault(burst_probability=1.0,
                                              burst_length=4))
        faulty = FaultyArrival(inner, plan)
        for index in range(12):
            assert faulty.gap(task, index) == pytest.approx(task.period)

    def test_drift_stretches_gaps(self):
        taskset, _ = _workload()
        task = list(taskset)[0]
        plan = FaultPlan(seed=0, drift=ClockDriftFault(rate=0.05))
        faulty = FaultyArrival(PeriodicArrival(), plan)
        assert faulty.gap(task, 0) == pytest.approx(1.05 * task.period)

    def test_faulted_timeline_is_not_periodic(self):
        plan = FaultPlan(seed=0, drift=ClockDriftFault(rate=0.0))
        assert FaultyArrival(PeriodicArrival(), plan).is_periodic is False


class TestTransitionFaults:
    def test_stuck_switch_holds_current_speed(self):
        plan = FaultPlan(seed=0,
                         transition=TransitionFault(stuck_probability=1.0))
        outcome = plan.transition_outcome(0, current=1.0, target=0.5)
        assert outcome.faulted
        assert outcome.achieved == 1.0
        assert outcome.extra_time == 0.0

    def test_delay_and_quantize_compose(self):
        plan = FaultPlan(seed=0,
                         transition=TransitionFault(extra_delay=0.05,
                                                    quantize_step=0.25))
        outcome = plan.transition_outcome(0, current=1.0, target=0.6)
        assert outcome.faulted
        assert outcome.achieved == pytest.approx(0.75)  # ceil to grid
        assert outcome.extra_time == pytest.approx(0.05)

    def test_quantize_never_exceeds_full_speed(self):
        plan = FaultPlan(seed=0,
                         transition=TransitionFault(quantize_step=0.3))
        outcome = plan.transition_outcome(0, current=0.5, target=0.95)
        assert outcome.achieved <= 1.0

    def test_on_grid_target_passes_through(self):
        plan = FaultPlan(seed=0,
                         transition=TransitionFault(quantize_step=0.25))
        outcome = plan.transition_outcome(0, current=1.0, target=0.5)
        assert outcome.achieved == pytest.approx(0.5)
        assert not outcome.faulted

    def test_engine_counts_transition_faults(self):
        taskset, model = _workload()
        plan = FaultPlan(seed=3,
                         transition=TransitionFault(stuck_probability=0.5))
        result = simulate(taskset, ideal_processor(), make_policy("ccEDF"),
                          model, horizon=400.0, allow_misses=True,
                          faults=plan)
        assert result.transition_faults > 0

    def test_stuck_everything_means_full_speed_energy(self):
        taskset, model = _workload()
        plan = FaultPlan(seed=0,
                         transition=TransitionFault(stuck_probability=1.0))
        stuck = simulate(taskset, ideal_processor(), make_policy("ccEDF"),
                         model, horizon=400.0, faults=plan)
        baseline = simulate(taskset, ideal_processor(), make_policy("none"),
                            model, horizon=400.0)
        # Every switch away from the initial full speed fails, so the
        # DVS policy degenerates to the no-DVS baseline.
        assert stuck.total_energy == pytest.approx(baseline.total_energy)
        assert stuck.switch_count == 0
