"""Behavioural tests for the simple policies: none, static, ccEDF, lppsEDF."""

import pytest

from repro.cpu.processor import Processor
from repro.cpu.profiles import ideal_processor
from repro.policies.ccedf import CcEdfPolicy
from repro.policies.lpps_edf import LppsEdfPolicy
from repro.policies.none import NoDvsPolicy
from repro.policies.static_edf import StaticEdfPolicy
from repro.sim.engine import simulate
from repro.sim.tracing import SegmentKind
from repro.tasks.execution import ConstantExecution, WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestNoDvs:
    def test_always_full_speed(self, two_task_set, half_model, processor):
        result = simulate(two_task_set, processor, NoDvsPolicy(),
                          half_model, horizon=40.0)
        assert result.mean_speed() == pytest.approx(1.0)
        assert result.switch_count == 0


class TestStatic:
    def test_speed_is_utilization(self, two_task_set, processor):
        policy = StaticEdfPolicy()
        result = simulate(two_task_set, processor, policy,
                          WorstCaseExecution(), horizon=40.0)
        assert policy.static_speed == pytest.approx(0.5)
        assert result.mean_speed() == pytest.approx(0.5)

    def test_no_idle_at_worst_case_saturation(self, saturated_task_set,
                                              processor):
        # U = 1 -> static speed 1 -> with WCET demand the processor
        # never idles over a hyperperiod.
        result = simulate(saturated_task_set, processor,
                          StaticEdfPolicy(), WorstCaseExecution(),
                          horizon=20.0)
        assert result.idle_time == pytest.approx(0.0)

    def test_floor_at_processor_min_speed(self):
        ts = TaskSet([PeriodicTask("T", wcet=0.1, period=100.0)])
        proc = ideal_processor(min_speed=0.2)
        policy = StaticEdfPolicy()
        simulate(ts, proc, policy, WorstCaseExecution(), horizon=100.0)
        assert policy.static_speed == pytest.approx(0.2)


class TestCcEdf:
    def test_worst_case_degenerates_to_static(self, two_task_set,
                                              processor):
        # When every job consumes its WCET the utilization estimate
        # never drops below U, so ccEDF == static EDF.
        result = simulate(two_task_set, processor, CcEdfPolicy(),
                          WorstCaseExecution(), horizon=40.0)
        assert result.mean_speed() == pytest.approx(0.5, abs=1e-6)

    def test_early_completions_reduce_speed(self, two_task_set,
                                            processor):
        result = simulate(two_task_set, processor, CcEdfPolicy(),
                          ConstantExecution(0.5), horizon=40.0)
        # Estimate oscillates between U and U_actual; strictly below U
        # on average, never below U_actual = 0.25.
        assert 0.25 <= result.mean_speed() < 0.5

    def test_estimate_resets_on_release(self, two_task_set, processor):
        policy = CcEdfPolicy()
        simulate(two_task_set, processor, policy, ConstantExecution(0.5),
                 horizon=40.0)
        # After the run, both tasks completed their last job at half
        # demand: estimate reflects actual usage.
        expected = sum(0.5 * t.utilization for t in two_task_set)
        assert policy.utilization_estimate() == pytest.approx(expected)

    def test_no_misses_on_bursty_demand(self, three_task_set, processor):
        from repro.tasks.execution import BimodalExecution
        result = simulate(three_task_set, processor, CcEdfPolicy(),
                          BimodalExecution(light=0.1, heavy=1.0,
                                           p_heavy=0.5, seed=3),
                          horizon=200.0)
        assert not result.missed


class TestLppsEdf:
    def test_single_job_stretches_to_next_arrival(self, processor):
        # Lone task, WCET 2, period 10: each job is alone and stretches
        # its budget over the full period.
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        result = simulate(ts, processor, LppsEdfPolicy(),
                          WorstCaseExecution(), horizon=30.0,
                          record_trace=True)
        assert result.mean_speed() == pytest.approx(0.2)
        assert result.idle_time == pytest.approx(0.0, abs=1e-6)
        assert not result.missed

    def test_multiple_active_jobs_run_static(self, processor):
        # Two synchronous tasks: at t=0 both are active, so the static
        # speed applies until one completes.
        ts = TaskSet([PeriodicTask("A", wcet=2.0, period=10.0),
                      PeriodicTask("B", wcet=3.0, period=10.0)])
        result = simulate(ts, processor, LppsEdfPolicy(),
                          WorstCaseExecution(), horizon=10.0,
                          record_trace=True)
        first = [s for s in result.trace if s.kind == SegmentKind.RUN][0]
        assert first.speed == pytest.approx(0.5)  # static = U
        assert not result.missed

    def test_deadline_fences_the_stretch(self, processor):
        # Constrained deadline: the lone job must fence at its deadline
        # (5), not at the next arrival (10).
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0,
                                   deadline=5.0)])
        result = simulate(ts, processor, LppsEdfPolicy(),
                          WorstCaseExecution(), horizon=10.0,
                          record_trace=True)
        run = [s for s in result.trace if s.kind == SegmentKind.RUN][0]
        assert run.speed == pytest.approx(0.4)  # 2 / 5
        assert not result.missed
