"""Tests for the extension policies: feedback, critical-speed, lpfpsRM."""

import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.errors import ConfigurationError, InfeasibleTaskSetError
from repro.policies.critical_speed import CriticalSpeedPolicy
from repro.policies.feedback import FeedbackDvsPolicy
from repro.policies.lpfps_rm import LpfpsRmPolicy
from repro.policies.slack_seh import LpSehPolicy
from repro.policies.slack_sta import LpStaPolicy
from repro.policies.none import NoDvsPolicy
from repro.sim.engine import simulate
from repro.sim.scheduler import RMScheduler
from repro.tasks.execution import (
    BimodalExecution,
    ConstantExecution,
    UniformExecution,
    WorstCaseExecution,
)
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestFeedback:
    def test_predictor_converges_on_constant_demand(self, two_task_set,
                                                    processor):
        policy = FeedbackDvsPolicy()
        simulate(two_task_set, processor, policy, ConstantExecution(0.5),
                 horizon=200.0)
        for task in two_task_set:
            assert policy.prediction(task.name) == pytest.approx(
                0.5 * task.wcet, rel=0.05)

    def test_beats_budget_based_policy_on_steady_demand(
            self, two_task_set, processor):
        # Steady 30% demand: prediction pays off against pure
        # budget-based stretching.
        model = ConstantExecution(0.3)
        fb = simulate(two_task_set, processor, FeedbackDvsPolicy(),
                      model, horizon=400.0)
        seh = simulate(two_task_set, processor, LpSehPolicy(), model,
                       horizon=400.0)
        assert fb.total_energy < seh.total_energy
        assert not fb.missed

    def test_hard_deadlines_survive_wrong_predictions(
            self, three_task_set, processor):
        # Bimodal demand is the adversarial case for predictors: the
        # PID is systematically wrong, yet the safety floor holds.
        result = simulate(
            three_task_set, processor, FeedbackDvsPolicy(),
            BimodalExecution(light=0.05, heavy=1.0, p_heavy=0.5, seed=13),
            horizon=400.0)
        assert not result.missed

    def test_worst_case_cold_start_is_safe(self, saturated_task_set,
                                           processor):
        result = simulate(saturated_task_set, processor,
                          FeedbackDvsPolicy(), WorstCaseExecution(),
                          horizon=40.0)
        assert not result.missed

    def test_invalid_gains_rejected(self):
        with pytest.raises(ConfigurationError):
            FeedbackDvsPolicy(kp=-0.1)

    def test_prediction_clamped_to_budget(self, two_task_set, processor):
        policy = FeedbackDvsPolicy(kp=5.0, ki=1.0, kd=2.0)  # unstable PID
        simulate(two_task_set, processor, policy,
                 UniformExecution(low=0.2, high=1.0, seed=5),
                 horizon=400.0)
        for task in two_task_set:
            assert 0.0 < policy.prediction(task.name) <= task.wcet


class TestCriticalSpeed:
    @pytest.fixture
    def leaky_processor(self) -> Processor:
        return Processor(
            scale=ContinuousScale(min_speed=0.05),
            power_model=PolynomialPowerModel(alpha=3.0, static=0.4))

    def test_critical_speed_math(self):
        # P(s) = s^3 + rho: P/s minimised at s = (rho/2)^(1/3).
        model = PolynomialPowerModel(alpha=3.0, static=0.4)
        assert model.critical_speed() == pytest.approx(0.2 ** (1 / 3),
                                                       abs=0.01)

    def test_no_leakage_no_floor(self):
        model = PolynomialPowerModel(alpha=3.0, static=0.0)
        assert model.critical_speed() < 0.01

    def test_floor_applied(self, two_task_set, leaky_processor):
        policy = CriticalSpeedPolicy(LpStaPolicy())
        result = simulate(two_task_set, leaky_processor, policy,
                          ConstantExecution(0.2), horizon=100.0)
        assert policy.critical_speed > 0.5
        assert result.mean_speed() >= policy.critical_speed - 1e-9

    def test_floor_saves_energy_under_leakage(self, two_task_set,
                                              leaky_processor):
        model = ConstantExecution(0.2)
        plain = simulate(two_task_set, leaky_processor, LpStaPolicy(),
                         model, horizon=400.0)
        floored = simulate(two_task_set, leaky_processor,
                           CriticalSpeedPolicy(LpStaPolicy()), model,
                           horizon=400.0)
        assert floored.total_energy < plain.total_energy
        assert not floored.missed

    def test_transparent_without_leakage(self, two_task_set, processor,
                                         half_model):
        plain = simulate(two_task_set, processor, LpStaPolicy(),
                         half_model, horizon=100.0)
        wrapped = simulate(two_task_set, processor,
                           CriticalSpeedPolicy(LpStaPolicy()),
                           half_model, horizon=100.0)
        assert wrapped.total_energy == pytest.approx(plain.total_energy,
                                                     rel=1e-6)


class TestLpfpsRm:
    @pytest.fixture
    def rm_taskset(self) -> TaskSet:
        # Harmonic periods: RM-schedulable at U = 0.75.
        return TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                        PeriodicTask("B", wcet=2.0, period=8.0)])

    def test_requires_rm_feasibility(self, processor):
        # EDF-feasible but RM-infeasible set must be rejected at bind.
        ts = TaskSet([PeriodicTask("A", wcet=2.0, period=4.0),
                      PeriodicTask("B", wcet=5.0, period=10.0)])
        with pytest.raises(InfeasibleTaskSetError):
            LpfpsRmPolicy().bind(ts, processor)

    def test_no_misses_under_rm(self, rm_taskset, processor):
        result = simulate(rm_taskset, processor, LpfpsRmPolicy(),
                          UniformExecution(low=0.3, high=1.0, seed=9),
                          horizon=400.0, scheduler=RMScheduler())
        assert not result.missed

    def test_saves_energy_vs_no_dvs(self, rm_taskset, processor,
                                    half_model):
        baseline = simulate(rm_taskset, processor, NoDvsPolicy(),
                            half_model, horizon=400.0,
                            scheduler=RMScheduler())
        lpfps = simulate(rm_taskset, processor, LpfpsRmPolicy(),
                         half_model, horizon=400.0,
                         scheduler=RMScheduler())
        assert lpfps.total_energy < baseline.total_energy
        assert not lpfps.missed

    def test_full_speed_with_multiple_ready(self, processor):
        # Synchronous release: both jobs ready -> full speed first.
        ts = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                      PeriodicTask("B", wcet=2.0, period=8.0)])
        result = simulate(ts, processor, LpfpsRmPolicy(),
                          WorstCaseExecution(), horizon=8.0,
                          scheduler=RMScheduler(), record_trace=True)
        first = result.trace.segments[0]
        assert first.speed == pytest.approx(1.0)
