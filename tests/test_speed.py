"""Tests for repro.cpu.speed scales and quantization."""

import pytest

from repro.cpu.speed import ContinuousScale, DiscreteScale, uniform_levels
from repro.errors import ConfigurationError


class TestContinuousScale:
    def test_quantize_passthrough_in_range(self):
        scale = ContinuousScale(min_speed=0.1)
        assert scale.quantize(0.42) == pytest.approx(0.42)

    def test_quantize_clamps_low(self):
        scale = ContinuousScale(min_speed=0.1)
        assert scale.quantize(0.05) == 0.1
        assert scale.quantize(-1.0) == 0.1

    def test_quantize_clamps_high(self):
        assert ContinuousScale().quantize(1.7) == 1.0

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            ContinuousScale().quantize(float("nan"))

    def test_is_attainable(self):
        scale = ContinuousScale(min_speed=0.2)
        assert scale.is_attainable(0.5)
        assert scale.is_attainable(1.0)
        assert not scale.is_attainable(0.1)
        assert not scale.is_attainable(1.1)

    def test_flags(self):
        scale = ContinuousScale(min_speed=0.3)
        assert scale.is_continuous
        assert scale.min_speed == 0.3

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_invalid_min_speed(self, bad):
        with pytest.raises(ConfigurationError):
            ContinuousScale(min_speed=bad)


class TestDiscreteScale:
    @pytest.fixture
    def scale(self) -> DiscreteScale:
        return DiscreteScale([0.25, 0.5, 0.75, 1.0])

    def test_levels_sorted(self):
        scale = DiscreteScale([1.0, 0.5, 0.75])
        assert scale.levels == (0.5, 0.75, 1.0)

    def test_quantize_rounds_up(self, scale):
        assert scale.quantize(0.3) == 0.5
        assert scale.quantize(0.51) == 0.75
        assert scale.quantize(0.76) == 1.0

    def test_quantize_exact_level_stays(self, scale):
        for level in scale.levels:
            assert scale.quantize(level) == level

    def test_quantize_exact_level_with_float_noise(self, scale):
        assert scale.quantize(0.5 + 1e-14) == 0.5
        assert scale.quantize(0.5 - 1e-14) == 0.5

    def test_quantize_below_min(self, scale):
        assert scale.quantize(0.01) == 0.25
        assert scale.quantize(0.0) == 0.25

    def test_quantize_above_max(self, scale):
        assert scale.quantize(1.3) == 1.0

    def test_min_speed(self, scale):
        assert scale.min_speed == 0.25

    def test_is_attainable(self, scale):
        assert scale.is_attainable(0.75)
        assert not scale.is_attainable(0.6)

    def test_not_continuous(self, scale):
        assert not scale.is_continuous

    def test_requires_top_level_one(self):
        with pytest.raises(ConfigurationError, match="highest level"):
            DiscreteScale([0.25, 0.5])

    def test_rejects_nonpositive_levels(self):
        with pytest.raises(ConfigurationError):
            DiscreteScale([0.0, 1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            DiscreteScale([0.5, 0.5, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DiscreteScale([])

    def test_single_level_scale(self):
        scale = DiscreteScale([1.0])
        assert scale.quantize(0.1) == 1.0
        assert scale.min_speed == 1.0


class TestUniformLevels:
    def test_count_and_endpoints(self):
        scale = uniform_levels(5, min_speed=0.2)
        assert len(scale.levels) == 5
        assert scale.levels[0] == pytest.approx(0.2)
        assert scale.levels[-1] == 1.0

    def test_even_spacing(self):
        scale = uniform_levels(4, min_speed=0.25)
        gaps = [b - a for a, b in zip(scale.levels, scale.levels[1:])]
        assert gaps == pytest.approx([0.25, 0.25, 0.25])

    def test_single_level(self):
        assert uniform_levels(1).levels == (1.0,)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            uniform_levels(0)

    def test_invalid_min_speed_for_multiple(self):
        with pytest.raises(ConfigurationError):
            uniform_levels(3, min_speed=1.0)
