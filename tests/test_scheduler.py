"""Tests for repro.sim.scheduler priority orders."""

import pytest

from repro.sim.scheduler import EDFScheduler, FIFOScheduler, RMScheduler
from repro.tasks.job import Job
from repro.tasks.task import PeriodicTask


def job(name, period, index=0, wcet=1.0, phase=0.0):
    task = PeriodicTask(name, wcet=wcet, period=period, phase=phase)
    return Job.from_task(task, index, work=wcet)


class TestEDF:
    def test_earliest_deadline_wins(self):
        sched = EDFScheduler()
        a = job("A", period=10.0)        # deadline 10
        b = job("B", period=4.0)         # deadline 4
        assert sched.pick([a, b]) is b

    def test_tie_broken_by_release(self):
        sched = EDFScheduler()
        early = job("A", period=10.0, index=0)            # d=10, r=0
        late = job("B", period=5.0, index=1)              # d=10, r=5
        assert sched.pick([early, late]) is early

    def test_tie_broken_by_name_for_identical_jobs(self):
        sched = EDFScheduler()
        a = job("A", period=10.0)
        b = job("B", period=10.0)
        assert sched.pick([b, a]) is a

    def test_empty_ready_returns_none(self):
        assert EDFScheduler().pick([]) is None

    def test_sorted_ready_full_order(self):
        sched = EDFScheduler()
        jobs = [job("A", 10.0), job("B", 4.0), job("C", 7.0)]
        assert [j.task.name for j in sched.sorted_ready(jobs)] == \
            ["B", "C", "A"]


class TestRM:
    def test_shortest_period_wins_regardless_of_deadline(self):
        sched = RMScheduler()
        # B's current deadline is later, but its period is shorter.
        a = job("A", period=10.0, index=0)     # d=10
        b = job("B", period=4.0, index=3)      # d=16
        assert sched.pick([a, b]) is b

    def test_static_priority_stable_across_jobs(self):
        sched = RMScheduler()
        assert sched.sort_key(job("A", 4.0, index=0))[:1] == \
            sched.sort_key(job("A", 4.0, index=7))[:1]


class TestFIFO:
    def test_first_release_wins(self):
        sched = FIFOScheduler()
        first = job("A", period=10.0, index=0)     # r=0
        second = job("B", period=3.0, index=1)     # r=3
        assert sched.pick([second, first]) is first
