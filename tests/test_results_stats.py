"""Tests for repro.sim.results and repro.analysis.stats."""

import pytest

from repro.analysis.stats import (
    Summary,
    geometric_mean,
    relative_change,
    summarize,
)
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult, TaskStats


class TestSimulationResult:
    def test_total_energy_composition(self):
        result = SimulationResult(policy="p", horizon=10.0,
                                  busy_energy=3.0, idle_energy=1.0,
                                  switch_energy=0.5)
        assert result.total_energy == pytest.approx(4.5)

    def test_normalized_energy(self):
        a = SimulationResult(policy="a", horizon=10.0, busy_energy=2.0)
        b = SimulationResult(policy="b", horizon=10.0, busy_energy=8.0)
        assert a.normalized_energy(b) == pytest.approx(0.25)

    def test_normalized_requires_same_horizon(self):
        a = SimulationResult(policy="a", horizon=10.0, busy_energy=2.0)
        b = SimulationResult(policy="b", horizon=20.0, busy_energy=8.0)
        with pytest.raises(ConfigurationError):
            a.normalized_energy(b)

    def test_normalized_rejects_zero_baseline(self):
        a = SimulationResult(policy="a", horizon=10.0, busy_energy=2.0)
        z = SimulationResult(policy="z", horizon=10.0)
        with pytest.raises(ConfigurationError):
            a.normalized_energy(z)

    def test_mean_speed_time_weighted(self):
        result = SimulationResult(policy="p", horizon=10.0,
                                  busy_time=4.0,
                                  speed_time={0.5: 2.0, 1.0: 2.0})
        assert result.mean_speed() == pytest.approx(0.75)

    def test_mean_speed_idle_run(self):
        assert SimulationResult(policy="p", horizon=1.0).mean_speed() == 0.0

    def test_summary_renders(self):
        result = SimulationResult(policy="p", horizon=10.0,
                                  busy_energy=1.0, jobs_released=3,
                                  jobs_completed=3)
        text = result.summary()
        assert "policy=p" in text
        assert "released=3" in text


class TestTaskStats:
    def test_mean_response(self):
        stats = TaskStats(completed=4, total_response=10.0)
        assert stats.mean_response == pytest.approx(2.5)

    def test_mean_response_no_jobs(self):
        assert TaskStats().mean_response == 0.0


class TestSummarize:
    def test_basic_aggregates(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(1.0)

    def test_single_value_has_no_spread(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci95 == 0.0

    def test_ci_shrinks_with_samples(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0])
        assert narrow.ci95 < wide.ci95

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestRelativeChange:
    def test_saving_is_negative(self):
        assert relative_change(80.0, 100.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_change(1.0, 0.0)
