"""Tests for partitioned multicore DVS-EDF."""

import numpy as np
import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError, InfeasibleTaskSetError
from repro.policies.registry import make_policy
from repro.sim.multicore import (
    MulticoreResult,
    first_fit_decreasing,
    simulate_partitioned,
    worst_fit_decreasing,
)
from repro.tasks.execution import UniformExecution
from repro.tasks.generators import generate_taskset
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def heavy_set() -> TaskSet:
    # Total U = 1.8: needs at least two cores.
    return TaskSet([
        PeriodicTask("A", 6.0, 10.0),   # 0.6
        PeriodicTask("B", 5.0, 10.0),   # 0.5
        PeriodicTask("C", 8.0, 20.0),   # 0.4
        PeriodicTask("D", 6.0, 20.0),   # 0.3
    ])


class TestPartitioning:
    def test_ffd_packs_tightly(self, heavy_set):
        bins = first_fit_decreasing(heavy_set, 2)
        loads = [sum(t.utilization for t in b) for b in bins]
        assert sum(loads) == pytest.approx(1.8)
        assert all(load <= 1.0 + 1e-9 for load in loads)
        # FFD with these sizes: 0.6+0.4 on core 0, 0.5+0.3 on core 1.
        assert loads[0] == pytest.approx(1.0)

    def test_wfd_balances(self, heavy_set):
        bins = worst_fit_decreasing(heavy_set, 2)
        loads = sorted(sum(t.utilization for t in b) for b in bins)
        # WFD: 0.6/0.5 split first, then 0.4 joins 0.5, 0.3 joins 0.6.
        assert loads == pytest.approx([0.9, 0.9])

    def test_every_task_placed_exactly_once(self, heavy_set):
        bins = worst_fit_decreasing(heavy_set, 3)
        placed = [t.name for b in bins for t in b]
        assert sorted(placed) == ["A", "B", "C", "D"]

    def test_infeasible_packing_rejected(self, heavy_set):
        with pytest.raises(InfeasibleTaskSetError):
            first_fit_decreasing(heavy_set, 1)

    def test_invalid_core_count(self, heavy_set):
        with pytest.raises(ConfigurationError):
            first_fit_decreasing(heavy_set, 0)

    def test_single_core_when_it_fits(self):
        ts = TaskSet([PeriodicTask("A", 3.0, 10.0),
                      PeriodicTask("B", 4.0, 10.0)])
        bins = first_fit_decreasing(ts, 1)
        assert [t.name for t in bins[0]] == ["B", "A"]  # by utilization


class TestSimulatePartitioned:
    def test_no_misses_and_energy_aggregates(self, heavy_set):
        result = simulate_partitioned(
            heavy_set, 2, ideal_processor,
            lambda: make_policy("lpSTA"),
            UniformExecution(low=0.4, high=1.0, seed=5),
            horizon=400.0)
        assert isinstance(result, MulticoreResult)
        assert not result.missed
        assert result.total_energy > 0
        assert len(result.per_core) == 2
        assert all(r is not None for r in result.per_core)

    def test_idle_cores_pay_idle_power(self):
        ts = TaskSet([PeriodicTask("A", 1.0, 10.0)])
        result = simulate_partitioned(
            ts, 3, lambda: _idle_proc(),
            lambda: make_policy("static"),
            UniformExecution(low=0.5, high=1.0, seed=1),
            horizon=100.0)
        # Two empty cores at idle power 0.1 for 100 time units.
        assert result.idle_core_energy == pytest.approx(20.0)
        assert result.per_core.count(None) == 2

    def test_more_cores_save_energy_convexity(self):
        # Same workload on more cores -> lower per-core speeds -> less
        # energy under cubic power (with free idle cores).
        ts = generate_taskset(8, 1.0, np.random.default_rng(9))
        model = UniformExecution(low=0.5, high=1.0, seed=9)
        energies = []
        for cores in (1, 2, 4):
            try:
                result = simulate_partitioned(
                    ts, cores, ideal_processor,
                    lambda: make_policy("static"), model, horizon=1200.0)
            except InfeasibleTaskSetError:
                continue
            energies.append(result.total_energy)
        assert len(energies) >= 2
        assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_normalization(self, heavy_set):
        model = UniformExecution(low=0.4, high=1.0, seed=5)
        base = simulate_partitioned(
            heavy_set, 2, ideal_processor, lambda: make_policy("none"),
            model, horizon=400.0)
        dvs = simulate_partitioned(
            heavy_set, 2, ideal_processor, lambda: make_policy("lpSTA"),
            model, horizon=400.0)
        assert dvs.normalized_energy(base) < 1.0

    def test_core_loads_reporting(self, heavy_set):
        result = simulate_partitioned(
            heavy_set, 2, ideal_processor, lambda: make_policy("static"),
            UniformExecution(low=0.5, high=1.0, seed=2), horizon=200.0)
        loads = result.core_loads(heavy_set)
        assert sum(loads) == pytest.approx(1.8)

    def test_ffd_partition_option(self, heavy_set):
        result = simulate_partitioned(
            heavy_set, 2, ideal_processor, lambda: make_policy("static"),
            UniformExecution(low=0.5, high=1.0, seed=2), horizon=200.0,
            partition=first_fit_decreasing)
        assert not result.missed


def _idle_proc():
    from repro.cpu.power import PolynomialPowerModel
    from repro.cpu.processor import Processor
    from repro.cpu.speed import ContinuousScale
    return Processor(scale=ContinuousScale(min_speed=0.05),
                     power_model=PolynomialPowerModel(alpha=3.0),
                     idle_power=0.1)
