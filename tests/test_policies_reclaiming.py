"""Behavioural tests for the reclaiming policies: DRA, laEDF."""

import pytest

from repro.policies.dra import DraPolicy
from repro.policies.laedf import LaEdfPolicy
from repro.sim.engine import simulate
from repro.sim.tracing import SegmentKind
from repro.tasks.execution import (
    ConstantExecution,
    UniformExecution,
    WorstCaseExecution,
)
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestDra:
    def test_worst_case_tracks_static(self, two_task_set, processor):
        # No earliness with WCET demand -> canonical pace throughout.
        result = simulate(two_task_set, processor, DraPolicy(),
                          WorstCaseExecution(), horizon=40.0)
        assert result.mean_speed() == pytest.approx(0.5, abs=1e-6)
        assert not result.missed

    def test_reclaims_earliness(self, processor):
        # A finishes at 20% of its budget; B should then run below the
        # static speed by absorbing A's canonical allocation.
        ts = TaskSet([PeriodicTask("A", wcet=2.0, period=10.0),
                      PeriodicTask("B", wcet=3.0, period=10.0)])
        result = simulate(
            ts, processor, DraPolicy(),
            ConstantExecution(0.2), horizon=10.0, record_trace=True)
        speeds = {s.job: s.speed for s in result.trace
                  if s.kind == SegmentKind.RUN}
        assert speeds["B#0"] < 0.5  # below static
        assert not result.missed

    def test_never_misses_with_variable_demand(self, three_task_set,
                                               processor):
        result = simulate(three_task_set, processor, DraPolicy(),
                          UniformExecution(low=0.1, high=1.0, seed=5),
                          horizon=400.0)
        assert not result.missed

    def test_alpha_queue_drains(self, two_task_set, processor,
                                half_model):
        policy = DraPolicy()
        simulate(two_task_set, processor, policy, half_model,
                 horizon=40.0)
        # After the run the alpha queue holds at most the entries of
        # jobs still canonically pending (bounded by task count).
        assert len(policy._entries) <= len(two_task_set)


class TestLaEdf:
    def test_worst_case_never_misses(self, three_task_set, processor):
        result = simulate(three_task_set, processor, LaEdfPolicy(),
                          WorstCaseExecution(), horizon=200.0)
        assert not result.missed

    def test_defers_below_utilization_when_jobs_finish_early(
            self, three_task_set, processor):
        result = simulate(three_task_set, processor, LaEdfPolicy(),
                          ConstantExecution(0.3), horizon=200.0)
        assert result.mean_speed() < three_task_set.utilization
        assert not result.missed

    def test_raw_variant_can_miss_documented_case(self, processor):
        """The verbatim published formula over-defers in this corner.

        This is the regression pinning the known laEDF fluid-reservation
        flaw; the safe (default) variant must survive the same workload.
        """
        import numpy as np
        from repro.tasks.generators import generate_taskset
        ts = generate_taskset(6, 0.7, np.random.default_rng(7))
        model = UniformExecution(low=0.8, high=1.0, seed=3)
        raw = simulate(ts, processor, LaEdfPolicy(safe=False), model,
                       horizon=3000.0, allow_misses=True)
        assert raw.missed
        safe = simulate(ts, processor, LaEdfPolicy(safe=True), model,
                        horizon=3000.0)
        assert not safe.missed

    def test_deferral_speed_positive_under_load(self, saturated_task_set,
                                                processor):
        result = simulate(saturated_task_set, processor, LaEdfPolicy(),
                          WorstCaseExecution(), horizon=40.0)
        assert not result.missed
        # U = 1 leaves nothing to defer: effectively full speed.
        assert result.mean_speed() == pytest.approx(1.0, abs=1e-6)

    def test_safe_and_raw_agree_when_raw_is_safe(self, two_task_set,
                                                 processor, half_model):
        safe = simulate(two_task_set, processor, LaEdfPolicy(safe=True),
                        half_model, horizon=40.0)
        raw = simulate(two_task_set, processor, LaEdfPolicy(safe=False),
                       half_model, horizon=40.0)
        # On an easy workload the envelope floor rarely binds: both
        # variants must land close together (the floor shifts speeds
        # slightly, and convexity can move energy either way a little).
        assert safe.total_energy == pytest.approx(raw.total_energy,
                                                  rel=0.15)
        assert not raw.missed
