"""Tests for repro.analysis.validation trace validators."""

import pytest

from repro.analysis.validation import (
    validate_energy,
    validate_jobs,
    validate_run,
    validate_speeds,
    validate_structure,
)
from repro.cpu.profiles import generic4_processor, ideal_processor
from repro.errors import TraceValidationError
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.sim.tracing import Segment, SegmentKind, TraceRecorder
from repro.tasks.execution import UniformExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def good_run(three_task_set, processor, half_model):
    return simulate(three_task_set, processor, make_policy("lpSTA"),
                    half_model, horizon=80.0, record_trace=True)


class TestEndToEnd:
    def test_valid_run_passes_all_validators(self, good_run,
                                             three_task_set, processor,
                                             half_model):
        validate_run(good_run, three_task_set, processor, half_model)

    @pytest.mark.parametrize("policy_name",
                             ["none", "static", "ccEDF", "DRA",
                              "lpSEH", "clairvoyant"])
    def test_all_policies_produce_valid_traces(self, policy_name,
                                               three_task_set,
                                               half_model):
        proc = ideal_processor()
        result = simulate(three_task_set, proc, make_policy(policy_name),
                          half_model, horizon=80.0, record_trace=True)
        validate_run(result, three_task_set, proc, half_model)

    def test_discrete_processor_trace_valid(self, three_task_set,
                                            half_model):
        proc = generic4_processor()
        result = simulate(three_task_set, proc, make_policy("lpSEH"),
                          half_model, horizon=80.0, record_trace=True)
        validate_run(result, three_task_set, proc, half_model)

    def test_missing_trace_rejected(self, three_task_set, processor,
                                    half_model):
        result = simulate(three_task_set, processor, make_policy("none"),
                          half_model, horizon=80.0, record_trace=False)
        with pytest.raises(TraceValidationError, match="no trace"):
            validate_run(result, three_task_set, processor, half_model)


def _recorder_with(*segments):
    rec = TraceRecorder()
    rec._segments = list(segments)  # bypass recording guards on purpose
    return rec


class TestCorruptedTraces:
    def test_overlap_detected(self):
        rec = _recorder_with(
            Segment(0.0, 2.0, SegmentKind.RUN, 1.0, 2.0, "T#0", "T"),
            Segment(1.0, 3.0, SegmentKind.RUN, 1.0, 2.0, "T#1", "T"))
        with pytest.raises(TraceValidationError, match="overlap"):
            validate_structure(rec)

    def test_unattainable_speed_detected(self):
        proc = generic4_processor()  # levels .25/.5/.75/1
        rec = _recorder_with(
            Segment(0.0, 1.0, SegmentKind.RUN, 0.6, 1.0, "T#0", "T"))
        with pytest.raises(TraceValidationError, match="unattainable"):
            validate_speeds(rec, proc)

    def test_execution_before_release_detected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0,
                                   phase=5.0)])
        model = UniformExecution(low=1.0, high=1.0, seed=0)
        rec = _recorder_with(
            Segment(0.0, 2.0, SegmentKind.RUN, 1.0, 2.0, "T#0", "T"))
        with pytest.raises(TraceValidationError, match="before its release"):
            validate_jobs(rec, ts, model, horizon=10.0)

    def test_overrun_detected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        model = UniformExecution(low=1.0, high=1.0, seed=0)
        rec = _recorder_with(
            Segment(0.0, 3.0, SegmentKind.RUN, 1.0, 3.0, "T#0", "T"))
        with pytest.raises(TraceValidationError, match="more than"):
            validate_jobs(rec, ts, model, horizon=10.0)

    def test_late_completion_detected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        model = UniformExecution(low=1.0, high=1.0, seed=0)
        rec = _recorder_with(
            Segment(9.0, 11.0, SegmentKind.RUN, 1.0, 2.0, "T#0", "T"))
        with pytest.raises(TraceValidationError, match="deadline"):
            validate_jobs(rec, ts, model, horizon=20.0)

    def test_starved_job_detected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        model = UniformExecution(low=1.0, high=1.0, seed=0)
        rec = _recorder_with(
            Segment(0.0, 1.0, SegmentKind.RUN, 1.0, 1.0, "T#0", "T"))
        with pytest.raises(TraceValidationError, match="only retired"):
            validate_jobs(rec, ts, model, horizon=20.0)

    def test_unknown_task_detected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        model = UniformExecution(low=1.0, high=1.0, seed=0)
        rec = _recorder_with(
            Segment(0.0, 2.0, SegmentKind.RUN, 1.0, 2.0, "X#0", "X"))
        with pytest.raises(TraceValidationError, match="unknown task"):
            validate_jobs(rec, ts, model, horizon=10.0)

    def test_energy_mismatch_detected(self, good_run, three_task_set,
                                      processor):
        seg = good_run.trace._segments[0]
        good_run.trace._segments[0] = Segment(
            seg.start, seg.end, seg.kind, seg.speed,
            seg.energy + 1.0, seg.job, seg.task)
        with pytest.raises(TraceValidationError):
            validate_energy(good_run.trace, processor, good_run)
