"""Vectorized batch engine: the differential guard (DESIGN.md §12).

The contract under test: the batch engine is purely an execution
strategy.  For every seed it completes, the ``PolicySummary`` values —
and therefore cache payloads, checkpoints and cell fingerprints — are
**bitwise identical** to the scalar engine's; any seed (or whole cell)
it cannot reproduce bit-for-bit is handed back for scalar execution;
anything that needs per-run instrumentation (faults, audit, chaos,
telemetry, custom factories, per-unit deadlines) never batches at all;
and a missing numpy degrades to the scalar engine silently under
``auto`` and with a clear error under ``on``.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.profiles import ideal_processor, xscale_processor
from repro.errors import ExperimentError
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.faults import FaultPlan, OverrunFault
from repro.policies.registry import batch_eligible_names, make_policy
from repro.sim import batch
from repro.sim.batch import (
    BATCH_AUTO_MIN_SEEDS,
    batch_available,
    decide_batch,
    run_batch_suites,
)
from repro.sim.engine import simulate

pytestmark = pytest.mark.batch

HORIZON = 600.0
VECTOR_POLICIES = ("none", "static", "ccEDF", "lpSTA")
MIXED_POLICIES = ("none", "static", "ccEDF", "lpSTA", "lpSEH")


def workload(u: float, seed: int):
    return standard_taskset(8, u, seed), bcwc_model(0.5, seed)


def scalar_suite(u: float, seed: int, policies) -> dict:
    """The scalar reference: run_suite's summary projection, inline."""
    from repro.experiments.cache import PolicySummary

    taskset, model = workload(u, seed)
    processor = ideal_processor()
    out = {}
    baseline = None
    for name in dict.fromkeys(("none",) + tuple(policies)):
        result = simulate(taskset, processor, make_policy(name), model,
                          horizon=HORIZON)
        if baseline is None:
            baseline = result
        metrics = result.policy_metrics
        out[name] = PolicySummary(
            normalized=result.normalized_energy(baseline),
            misses=len(result.deadline_misses),
            switches=result.switch_count,
            overruns=result.overrun_jobs,
            released=result.jobs_released,
            interventions=int(metrics.get("interventions", 0)),
            dispatches=int(metrics.get("dispatches", 0)))
    return out


def payloads(cells) -> list[str]:
    return [json.dumps(cell.to_payload()) for cell in cells]


class TestDifferential:
    """Batch summaries are bitwise equal to the scalar engine's."""

    @pytest.mark.parametrize("u", (0.3, 0.7, 0.9))
    def test_every_eligible_policy_matches_scalar(self, u):
        seeds = list(range(6))
        rows = run_batch_suites(
            u, seeds, make_workload=workload,
            policy_names=VECTOR_POLICIES, processor=ideal_processor(),
            horizon=HORIZON)
        assert rows is not None
        for seed, row in zip(seeds, rows):
            if row is None:  # declared fallback: scalar covers it
                continue
            reference = scalar_suite(u, seed, VECTOR_POLICIES)
            for name in VECTOR_POLICIES:
                assert row[name] == reference[name], (u, seed, name)

    def test_most_seeds_batch_on_reference_cell(self):
        # The engine may flag individual seeds back to scalar, but the
        # reference cell must overwhelmingly batch or the strategy is
        # pointless.
        seeds = list(range(8))
        rows = run_batch_suites(
            0.7, seeds, make_workload=workload,
            policy_names=VECTOR_POLICIES, processor=ideal_processor(),
            horizon=HORIZON)
        assert rows is not None
        assert sum(row is not None for row in rows) >= 6

    def test_mixed_suite_runs_ineligible_policies_scalar(self):
        seeds = [0, 1, 2]
        rows = run_batch_suites(
            0.7, seeds, make_workload=workload,
            policy_names=MIXED_POLICIES, processor=ideal_processor(),
            horizon=HORIZON)
        assert rows is not None
        for seed, row in zip(seeds, rows):
            if row is None:
                continue
            reference = scalar_suite(0.7, seed, MIXED_POLICIES)
            assert row == reference

    def test_unsupported_processor_falls_back_whole_cell(self):
        rows = run_batch_suites(
            0.7, [0, 1], make_workload=workload,
            policy_names=VECTOR_POLICIES,
            processor=xscale_processor(), horizon=HORIZON)
        assert rows is None


class TestEligibility:
    """decide_batch routes every instrumented run to the scalar engine."""

    def kwargs(self, **overrides):
        base = dict(policy_names=VECTOR_POLICIES)
        base.update(overrides)
        return base

    def test_plain_sweep_is_eligible(self):
        decision = decide_batch("auto", **self.kwargs())
        assert decision.use
        assert decision.min_seeds == BATCH_AUTO_MIN_SEEDS

    def test_forced_on_lowers_the_crossover(self):
        assert decide_batch("on", **self.kwargs()).min_seeds == 2

    def test_off_never_batches(self):
        assert not decide_batch("off", **self.kwargs()).use

    @pytest.mark.parametrize("blocker", (
        {"overhead_aware": True},
        {"policy_factory": lambda x: make_policy},
        {"faults_factory": lambda x, seed: None},
        {"audit_every": 1},
        {"unit_timeout": 5.0},
        {"chaos": object()},
        {"telemetry_enabled": True},
    ))
    def test_instrumented_runs_stay_scalar(self, blocker):
        decision = decide_batch("auto", **self.kwargs(**blocker))
        assert not decision.use
        with pytest.raises(ExperimentError, match="not batch-eligible"):
            decide_batch("on", **self.kwargs(**blocker))

    def test_no_eligible_policy_stays_scalar(self):
        decision = decide_batch(
            "auto", **self.kwargs(policy_names=("lpSEH", "laEDF")))
        assert not decision.use
        assert "no batch-eligible policy" in decision.reason

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError, match="batch mode"):
            decide_batch("sometimes", **self.kwargs())

    def test_eligible_names_cover_the_four_kernels(self):
        assert set(batch_eligible_names()) == set(VECTOR_POLICIES)

    def test_nondefault_lpsta_instance_drops_its_kernel(self):
        from repro.policies.slack_sta import LpStaPolicy

        assert LpStaPolicy().batch_kernel == "lpsta"
        assert LpStaPolicy(window_cap_periods=1.0).batch_kernel is None
        assert LpStaPolicy(baseline="full").batch_kernel is None


class TestSweepIntegration:
    """sweep(batch=...) is byte-identical to scalar in every mode."""

    XS = (0.4, 0.8)

    def sweep_payloads(self, **kwargs):
        return payloads(sweep(self.XS, workload, MIXED_POLICIES,
                              n_tasksets=3, horizon=HORIZON, **kwargs))

    def test_serial_on_matches_off(self):
        assert (self.sweep_payloads(batch="on")
                == self.sweep_payloads(batch="off"))

    def test_parallel_on_matches_serial_off(self):
        from repro.experiments.parallel import fork_available

        if not fork_available():
            pytest.skip("parallel executor needs fork()")
        assert (self.sweep_payloads(batch="on", workers=2)
                == self.sweep_payloads(batch="off"))

    def test_faulted_sweep_routes_scalar_and_matches(self):
        # Fault injection is batch-ineligible: auto must silently run
        # the scalar engine and produce identical cells; a forced "on"
        # must refuse loudly.
        def faults(x, seed):
            return FaultPlan(seed=seed,
                             overrun=OverrunFault(1.5, probability=0.5))

        scalar = self.sweep_payloads(batch="off", faults_factory=faults,
                                     allow_misses=True)
        auto = self.sweep_payloads(batch="auto", faults_factory=faults,
                                   allow_misses=True)
        assert auto == scalar
        with pytest.raises(ExperimentError, match="not batch-eligible"):
            self.sweep_payloads(batch="on", faults_factory=faults,
                                allow_misses=True)

    def test_audited_sweep_routes_scalar(self):
        scalar = self.sweep_payloads(batch="off", audit_every=3)
        auto = self.sweep_payloads(batch="auto", audit_every=3)
        assert auto == scalar

    def test_auto_crossover_skips_small_cells(self, monkeypatch):
        # Under "auto" a 3-seed cell sits below the measured crossover:
        # the batch engine must not even be consulted.
        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return None

        import repro.experiments.runner as runner_mod
        monkeypatch.setattr(runner_mod, "run_batch_suites", counting)
        self.sweep_payloads(batch="auto")
        assert calls == []
        self.sweep_payloads(batch="on")
        assert calls != []

    def test_batch_engine_error_never_kills_the_sweep(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("vector kernel bug")

        import repro.experiments.runner as runner_mod
        monkeypatch.setattr(runner_mod, "run_batch_suites", explode)
        assert (self.sweep_payloads(batch="on")
                == self.sweep_payloads(batch="off"))

    def test_prefetched_units_land_in_the_cache(self, tmp_path):
        kwargs = dict(cache_dir=tmp_path, workload_id="test:batch-cache")
        first = self.sweep_payloads(batch="on", **kwargs)
        # Second run replays from cache (batch finds nothing missing).
        second = self.sweep_payloads(batch="on", **kwargs)
        assert first == second
        assert list(tmp_path.glob("**/*.json"))


class TestNumpyAbsent:
    """Without numpy the sweep degrades to the scalar engine."""

    def test_batch_available_tracks_numpy(self, monkeypatch):
        monkeypatch.setattr(batch, "_np", None)
        assert not batch_available()
        assert run_batch_suites(
            0.7, [0, 1], make_workload=workload,
            policy_names=VECTOR_POLICIES, processor=ideal_processor(),
            horizon=HORIZON) is None

    def test_auto_falls_back_silently(self, monkeypatch):
        scalar = sweep((0.5,), workload, VECTOR_POLICIES, n_tasksets=2,
                       horizon=HORIZON, batch="off")
        monkeypatch.setattr(batch, "_np", None)
        degraded = sweep((0.5,), workload, VECTOR_POLICIES, n_tasksets=2,
                         horizon=HORIZON, batch="auto")
        assert payloads(degraded) == payloads(scalar)

    def test_forced_on_raises_with_the_hint(self, monkeypatch):
        monkeypatch.setattr(batch, "_np", None)
        with pytest.raises(ExperimentError, match="requires numpy"):
            sweep((0.5,), workload, VECTOR_POLICIES, n_tasksets=2,
                  horizon=HORIZON, batch="on")
